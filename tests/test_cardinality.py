"""Tests for selectivity and cardinality estimation."""

import pytest

from repro.optimizer import CardinalityEstimator
from repro.plans import expressions as ex


@pytest.fixture
def estimator(star_catalog):
    return CardinalityEstimator(star_catalog)


def col(alias, name):
    return ex.ColumnRef(alias, name)


def lit(value):
    return ex.Literal(value)


def test_table_rows(estimator):
    assert estimator.table_rows("fact_sales") == 1_000_000


def test_no_predicate_selectivity_is_one(estimator):
    assert estimator.local_selectivity("fact_sales", None) == 1.0


def test_equality_selectivity_close_to_one_over_ndv(estimator):
    pred = ex.Comparison("=", col("p", "category_id"), lit(7))
    sel = estimator.local_selectivity("products", pred)
    assert sel == pytest.approx(1 / 50, rel=0.3)


def test_reversed_comparison_sides(estimator):
    a = estimator.local_selectivity(
        "products", ex.Comparison("=", col("p", "category_id"), lit(7)))
    b = estimator.local_selectivity(
        "products", ex.Comparison("=", lit(7), col("p", "category_id")))
    assert a == b


def test_range_selectivity(estimator):
    pred = ex.Between(col("f", "date_id"), lit(0), lit(499))
    sel = estimator.local_selectivity("fact_sales", pred)
    assert sel == pytest.approx(0.5, rel=0.1)


def test_open_range_selectivity(estimator):
    pred = ex.Comparison("<", col("f", "date_id"), lit(250))
    sel = estimator.local_selectivity("fact_sales", pred)
    assert sel == pytest.approx(0.25, rel=0.15)


def test_conjunction_independence(estimator):
    p1 = ex.Comparison("=", col("f", "product_id"), lit(1))
    p2 = ex.Comparison("=", col("f", "store_id"), lit(2))
    combined = ex.And((p1, p2))
    sel = estimator.local_selectivity("fact_sales", combined)
    s1 = estimator.local_selectivity("fact_sales", p1)
    s2 = estimator.local_selectivity("fact_sales", p2)
    assert sel == pytest.approx(s1 * s2, rel=1e-6)


def test_or_selectivity_bounded(estimator):
    p1 = ex.Comparison("=", col("f", "store_id"), lit(1))
    p2 = ex.Comparison("=", col("f", "store_id"), lit(2))
    sel = estimator.local_selectivity("fact_sales", ex.Or((p1, p2)))
    single = estimator.local_selectivity("fact_sales", p1)
    assert single < sel < 2.5 * single


def test_neq_is_complement(estimator):
    eq = estimator.local_selectivity(
        "fact_sales", ex.Comparison("=", col("f", "store_id"), lit(5)))
    neq = estimator.local_selectivity(
        "fact_sales", ex.Comparison("<>", col("f", "store_id"), lit(5)))
    assert neq == pytest.approx(1.0 - eq, abs=1e-9)


def test_join_selectivity_pk_fk(estimator):
    cond = ex.Comparison("=", col("f", "product_id"), col("p", "product_id"))
    sel = estimator.join_selectivity(
        cond, {"f": "fact_sales", "p": "products"})
    assert sel == pytest.approx(1 / 5000)


def test_join_selectivity_none_is_cross_product(estimator):
    assert estimator.join_selectivity(None, {}) == 1.0


def test_group_count_capped_by_input(estimator):
    keys = (col("p", "category_id"), col("s", "region_id"))
    tables = {"p": "products", "s": "stores"}
    assert estimator.group_count(keys, tables, input_rows=1e9) == 500
    assert estimator.group_count(keys, tables, input_rows=100) == 100
    assert estimator.group_count((), tables, input_rows=100) == 1.0


def test_clustered_scan_window_from_between(estimator):
    pred = ex.Between(col("f", "date_id"), lit(500), lit(599))
    offset, length = estimator.clustered_scan_window("fact_sales", pred)
    assert offset == pytest.approx(0.5, abs=0.01)
    assert length == pytest.approx(0.1, abs=0.01)


def test_scan_window_full_without_clustering_predicate(estimator):
    pred = ex.Comparison("=", col("f", "store_id"), lit(5))
    assert estimator.clustered_scan_window("fact_sales", pred) == (0.0, 1.0)


def test_scan_window_full_without_clustered_index(estimator):
    pred = ex.Comparison("=", col("c", "category_id"), lit(5))
    assert estimator.clustered_scan_window("categories", pred) == (0.0, 1.0)


def test_scan_window_empty_for_contradiction(estimator):
    pred = ex.Between(col("f", "date_id"), lit(900), lit(100))
    offset, length = estimator.clustered_scan_window("fact_sales", pred)
    assert length == 0.0
