"""Tests for the workload generators."""

import random

import pytest

from repro.sql import Binder, parse
from repro.units import GiB
from repro.workload import (
    OltpWorkload,
    SalesWorkload,
    TpchWorkload,
)
from repro.workload.base import adhoc_tag


@pytest.fixture(scope="module")
def sales():
    return SalesWorkload()


@pytest.fixture(scope="module")
def sales_catalog(sales):
    return sales.build_catalog()


def test_sales_catalog_shape(sales_catalog):
    tables = {t.name for t in sales_catalog.tables()}
    assert "sales" in tables and "customers" in tables
    assert len(tables) >= 20
    # the paper's data mart is 524 GB; ours is the same order
    assert 300 * GiB < sales_catalog.total_bytes < 700 * GiB
    assert sales_catalog.table("sales").row_count == 400_000_000


def test_sales_queries_parse_and_bind(sales, sales_catalog):
    binder = Binder(sales_catalog)
    rng = random.Random(1)
    seen_templates = set()
    for _ in range(40):
        query = sales.generate(rng)
        seen_templates.add(query.template)
        bound = binder.bind(parse(query.text))
        # heavy multi-join DSS queries (the paper's average is 15-20;
        # the lightest template joins 7 tables around the fact)
        assert 6 <= bound.join_count <= 20, query.template
    assert len(seen_templates) >= 8


def test_sales_join_counts_match_paper(sales, sales_catalog):
    """The average query joins 15-20 tables (paper §5.1)."""
    binder = Binder(sales_catalog)
    rng = random.Random(2)
    joins = []
    for _ in range(50):
        query = sales.generate(rng)
        joins.append(binder.bind(parse(query.text)).join_count)
    mean = sum(joins) / len(joins)
    assert 10 <= mean <= 20
    assert max(joins) >= 15


def test_sales_uniquification_defeats_plan_cache(sales):
    """Identical seeds aside, every generated text must be unique."""
    rng = random.Random(3)
    texts = {sales.generate(rng).text for _ in range(200)}
    assert len(texts) == 200


def test_sales_determinism(sales):
    a = [sales.generate(random.Random(7)).text for _ in range(10)]
    b = [sales.generate(random.Random(7)).text for _ in range(10)]
    assert a == b


def test_sales_scaled_catalog_shrinks():
    small = SalesWorkload(scale=0.001)
    catalog = small.build_catalog()
    assert catalog.table("sales").row_count == 400_000
    rng = random.Random(1)
    binder = Binder(catalog)
    binder.bind(parse(small.generate(rng).text))  # still binds


def test_tpch_queries_parse_and_bind():
    workload = TpchWorkload()
    catalog = workload.build_catalog()
    binder = Binder(catalog)
    rng = random.Random(1)
    join_counts = []
    for _ in range(30):
        query = workload.generate(rng)
        bound = binder.bind(parse(query.text))
        join_counts.append(bound.join_count)
    # the paper: TPC-H queries contain between 0 and 8 joins
    assert min(join_counts) == 0
    assert max(join_counts) <= 8


def test_tpch_repeats_shapes_for_plan_cache():
    workload = TpchWorkload(adhoc=False)
    rng = random.Random(1)
    texts = [workload.generate(rng).text for _ in range(100)]
    assert len(set(texts)) < 100  # literal collisions do happen


def test_tpch_adhoc_mode_is_unique():
    workload = TpchWorkload(adhoc=True)
    rng = random.Random(1)
    texts = [workload.generate(rng).text for _ in range(100)]
    assert len(set(texts)) == 100


def test_oltp_queries_are_small():
    workload = OltpWorkload()
    catalog = workload.build_catalog()
    binder = Binder(catalog)
    rng = random.Random(1)
    for _ in range(20):
        query = workload.generate(rng)
        bound = binder.bind(parse(query.text))
        assert bound.join_count <= 1


def test_adhoc_tag_unique_and_comment_shaped():
    rng = random.Random(1)
    tags = {adhoc_tag(rng) for _ in range(100)}
    assert len(tags) == 100
    assert all(t.startswith("/*") and t.endswith("*/") for t in tags)


def test_workload_scale_validation():
    with pytest.raises(ValueError):
        SalesWorkload(scale=0)
