"""Tests for the open-loop traffic subsystem.

Fast tests cover the arrival generators (seeded determinism, rate
shapes, parameter validation), the streaming trace readers (strict
line-numbered errors, torn-tail tolerance, transforms), the
``TrafficSpec`` axis (validation, JSON round trips, minimal version
stamping) and the ``repro traces`` CLI.  The sim tests drive a real
server open-loop: drop accounting, flash-crowd gateway engage/release,
and — the acceptance pin — canonically byte-identical artifacts for an
open-loop scenario through inline and stream executors.
"""

import json
import random
import threading

import pytest

from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments.runner import make_workload
from repro.scenarios import (
    Expectation,
    ScenarioSpec,
    TrafficSpec,
    VariantSpec,
    run_scenario,
    write_scenario_artifact,
)
from repro.server import DatabaseServer
from repro.traffic import (
    ARRIVAL_FACTORIES,
    Arrival,
    DiurnalArrivals,
    FlashCrowdArrivals,
    OpenLoopGenerator,
    ParetoArrivals,
    PoissonArrivals,
    TenantMixArrivals,
    TraceEvent,
    make_arrival_process,
    rate_rescale,
    read_trace,
    summarize_trace,
    synthesize_trace,
    template_remap,
    tenant_filter,
    time_window,
    trace_arrivals,
)

from helpers import canonical_text


def schedule(process, seed="s", duration=10_000.0):
    return [a.at for a in process.arrivals(random.Random(seed), duration)]


# ----------------------------------------------------- arrival processes
def test_arrivals_are_seed_deterministic_and_sorted():
    for name, factory in sorted(ARRIVAL_FACTORIES.items()):
        process = (factory(tenants={"a": {"process": "poisson"}})
                   if name == "tenant_mix" else factory())
        first = schedule(process)
        again = schedule(process)
        other = schedule(process, seed="other")
        assert first == again, name
        assert first != other, name
        assert first == sorted(first), name
        assert all(0 <= at < 10_000.0 for at in first), name


def test_poisson_rate_controls_density():
    slow = len(schedule(PoissonArrivals(rate=0.005)))
    fast = len(schedule(PoissonArrivals(rate=0.05)))
    assert 25 <= slow <= 90            # ~50 expected
    assert 350 <= fast <= 650          # ~500 expected
    with pytest.raises(ConfigurationError, match="poisson rate"):
        PoissonArrivals(rate=0)


def test_pareto_matches_poisson_mean_rate_but_burstier():
    arrivals = schedule(ParetoArrivals(rate=0.05, alpha=1.5),
                        duration=200_000.0)
    mean_gap = arrivals[-1] / len(arrivals)
    assert 10.0 <= mean_gap <= 40.0    # 1/rate = 20, heavy-tail noise
    with pytest.raises(ConfigurationError, match="alpha must be > 1"):
        ParetoArrivals(alpha=1.0)


def test_diurnal_rate_curve_and_validation():
    process = DiurnalArrivals(base_rate=0.002, peak_rate=0.02,
                              period=3600.0)
    assert process.rate_at(0.0) == pytest.approx(0.002)
    assert process.rate_at(1800.0) == pytest.approx(0.02)
    assert process.rate_at(3600.0) == pytest.approx(0.002)
    with pytest.raises(ConfigurationError, match="peak_rate"):
        DiurnalArrivals(base_rate=0.02, peak_rate=0.002)


def test_flash_crowd_concentrates_arrivals_in_spike():
    process = FlashCrowdArrivals(base_rate=0.001, spike_rate=0.2,
                                 spike_at=2000.0, spike_duration=500.0)
    assert process.rate_at(1999.9) == 0.001
    assert process.rate_at(2000.0) == 0.2
    assert process.rate_at(2500.0) == 0.001
    arrivals = schedule(process)
    in_spike = [at for at in arrivals if 2000.0 <= at < 2500.0]
    assert len(in_spike) > len(arrivals) / 2
    # base_rate=0 is a legal "only the spike" shape
    quiet = FlashCrowdArrivals(base_rate=0, spike_rate=0.1,
                               spike_at=100.0, spike_duration=100.0)
    assert all(100.0 <= at < 200.0 for at in schedule(quiet))


def test_tenant_mix_labels_and_tenant_isolation():
    noisy = {"steady": {"process": "poisson", "rate": 0.01},
             "noisy": {"process": "flash_crowd", "spike_at": 100.0}}
    mix = TenantMixArrivals(tenants=noisy)
    arrivals = list(mix.arrivals(random.Random("s"), 5000.0))
    tenants = {a.tenant for a in arrivals}
    assert tenants == {"steady", "noisy"}
    assert [a.at for a in arrivals] == sorted(a.at for a in arrivals)
    # dropping one tenant must not perturb the other's schedule
    solo = TenantMixArrivals(
        tenants={"steady": {"process": "poisson", "rate": 0.01}})
    solo_times = [a.at for a in solo.arrivals(random.Random("s"), 5000.0)]
    mixed_times = [a.at for a in arrivals if a.tenant == "steady"]
    assert solo_times == mixed_times


def test_tenant_mix_rejects_bad_documents():
    with pytest.raises(ConfigurationError, match="non-empty 'tenants'"):
        TenantMixArrivals(tenants={})
    with pytest.raises(ConfigurationError, match="'process' key"):
        TenantMixArrivals(tenants={"a": {"rate": 0.1}})
    with pytest.raises(ConfigurationError, match="cannot nest"):
        TenantMixArrivals(tenants={"a": {
            "process": "tenant_mix",
            "tenants": {"b": {"process": "poisson"}}}})


def test_make_arrival_process_errors_name_the_choices():
    with pytest.raises(ConfigurationError, match="valid processes"):
        make_arrival_process("bogus")
    with pytest.raises(ConfigurationError, match="bad parameters"):
        make_arrival_process("poisson", rat=0.1)


# ------------------------------------------------------------- traces
def write_lines(path, *lines):
    path.write_text("".join(line + "\n" for line in lines),
                    encoding="utf-8")
    return str(path)


def test_jsonl_trace_parses_fields_and_line_numbers(tmp_path):
    path = write_lines(
        tmp_path / "t.jsonl",
        '{"t": 1.5, "template": "q1", "tenant": "a"}',
        "",
        '{"t": 2.0}')
    events = list(read_trace(path))
    assert events == [
        TraceEvent(at=1.5, template="q1", tenant="a", line=1),
        TraceEvent(at=2.0, template=None, tenant="default", line=3),
    ]


@pytest.mark.parametrize("line,why", [
    ('{"t": 1, "color": "red"}', r"line 2: unknown field\(s\) color"),
    ('{"template": "q"}', "line 2: missing required field 't'"),
    ('{"t": "soon"}', "line 2: 't' must be a number"),
    ('{"t": -4}', "line 2: 't' must be >= 0"),
    ('{"t": 0.5}', "line 2: out-of-order timestamp"),
    ('[1, 2]', "line 2: event must be a JSON object"),
    ('{"t": 2, "tenant": ""}', "line 2: 'tenant' must be a non-empty"),
])
def test_jsonl_trace_errors_name_the_line(tmp_path, line, why):
    path = write_lines(tmp_path / "t.jsonl", '{"t": 1.0}', line)
    with pytest.raises(ConfigurationError, match=why):
        list(read_trace(path))


def test_torn_tail_is_opt_in_and_final_only(tmp_path):
    torn = write_lines(tmp_path / "torn.jsonl",
                       '{"t": 1.0}', '{"t": 2.0, "tem')
    with pytest.raises(ConfigurationError,
                       match="line 2: .*tolerate_tail"):
        list(read_trace(torn))
    events = list(read_trace(torn, tolerate_tail=True))
    assert [e.at for e in events] == [1.0]
    # a malformed line followed by more data is never a torn tail
    middle = write_lines(tmp_path / "mid.jsonl",
                         '{"t": 1.0}', '{"t": 2.0, "tem', '{"t": 3.0}')
    with pytest.raises(ConfigurationError, match="line 2"):
        list(read_trace(middle, tolerate_tail=True))


def test_csv_trace_parses_and_validates(tmp_path):
    path = write_lines(tmp_path / "t.csv",
                       "t,template,tenant",
                       "1.5,q1,a",
                       "2.5,,")
    events = list(read_trace(path))
    assert events == [
        TraceEvent(at=1.5, template="q1", tenant="a", line=2),
        TraceEvent(at=2.5, template=None, tenant="default", line=3),
    ]
    bad_header = write_lines(tmp_path / "h.csv", "t,color", "1,red")
    with pytest.raises(ConfigurationError,
                       match=r"line 1: unknown column\(s\) color"):
        list(read_trace(bad_header))
    with pytest.raises(ConfigurationError, match="empty trace"):
        list(read_trace(write_lines(tmp_path / "e.csv")))


def test_csv_torn_tail(tmp_path):
    path = write_lines(tmp_path / "t.csv",
                       "t,template,tenant", "1.5,q1,a", "2.5,q2")
    with pytest.raises(ConfigurationError,
                       match="line 3: .*tolerate_tail"):
        list(read_trace(path))
    assert [e.at for e in read_trace(path, tolerate_tail=True)] == [1.5]


def test_read_trace_extension_and_missing_file(tmp_path):
    with pytest.raises(ConfigurationError, match="unsupported extension"):
        list(read_trace(str(tmp_path / "t.parquet")))
    with pytest.raises(ConfigurationError, match="cannot read trace"):
        list(read_trace(str(tmp_path / "absent.jsonl")))


def test_transforms_compose():
    events = [TraceEvent(at=at, template=f"q{i}", tenant=t, line=i + 1)
              for i, (at, t) in enumerate(
                  [(0.0, "a"), (10.0, "b"), (20.0, "a"), (30.0, "b")])]
    windowed = list(time_window(events, 10.0, 30.0))
    assert [e.at for e in windowed] == [0.0, 10.0]  # rebased
    assert [e.tenant for e in tenant_filter(events, ["a"])] == ["a", "a"]
    assert [e.at for e in rate_rescale(events, 2.0)] \
        == [0.0, 5.0, 10.0, 15.0]
    remapped = list(template_remap(events, {"q1": "qx"}))
    assert [e.template for e in remapped] == ["q0", "qx", "q2", "q3"]
    with pytest.raises(ConfigurationError, match="factor"):
        list(rate_rescale(events, 0))


def test_trace_arrivals_applies_spec_transforms(tmp_path):
    write_lines(tmp_path / "t.jsonl",
                '{"t": 100, "template": "old", "tenant": "a"}',
                '{"t": 200, "tenant": "b"}',
                '{"t": 300, "template": "old", "tenant": "a"}')
    spec = TrafficSpec(trace="t.jsonl", window=(100.0, 301.0),
                       tenants=("a",), remap={"old": "new"},
                       rate_scale=2.0)
    arrivals = list(trace_arrivals(spec, base=str(tmp_path)))
    assert arrivals == [Arrival(at=0.0, tenant="a", template="new"),
                        Arrival(at=100.0, tenant="a", template="new")]


def test_synthesize_then_replay_roundtrips_schedule(tmp_path):
    path = str(tmp_path / "synth.jsonl")
    process = PoissonArrivals(rate=0.01)
    workload = make_workload("sales")
    count = synthesize_trace(path, process, duration=5000.0, seed=7,
                             workload=workload, tenant="acme")
    events = list(read_trace(path))
    assert len(events) == count > 0
    expected = [round(a.at, 6) for a in process.arrivals(
        random.Random("7/synth/arrivals"), 5000.0)]
    assert [e.at for e in events] == expected
    assert {e.tenant for e in events} == {"acme"}
    assert {e.template for e in events} <= set(workload.template_names())
    summary = summarize_trace(path)
    assert summary["events"] == count
    assert summary["tenants"] == {"acme": count}
    with pytest.raises(ConfigurationError, match="JSONL"):
        synthesize_trace(str(tmp_path / "t.csv"), process, 100.0)


def test_example_trace_validates_and_is_multi_tenant():
    summary = summarize_trace("examples/sample_trace.jsonl")
    assert summary["events"] >= 20
    assert set(summary["tenants"]) == {"alpha", "beta"}
    assert summary["templates"]


# --------------------------------------------------------- TrafficSpec
def test_traffic_spec_needs_exactly_one_source():
    with pytest.raises(ConfigurationError, match="exactly one source"):
        TrafficSpec()
    with pytest.raises(ConfigurationError, match="exactly one source"):
        TrafficSpec(arrivals="poisson", trace="t.jsonl")


def test_traffic_spec_validates_at_definition_time():
    with pytest.raises(ConfigurationError, match="valid processes"):
        TrafficSpec(arrivals="bogus")
    with pytest.raises(ConfigurationError, match="alpha must be > 1"):
        TrafficSpec(arrivals="pareto", params={"alpha": 0.5})
    with pytest.raises(ConfigurationError, match="transforms a trace"):
        TrafficSpec(arrivals="poisson", window=(0.0, 10.0))
    with pytest.raises(ConfigurationError, match="rate_scale"):
        TrafficSpec(arrivals="poisson", rate_scale=0)
    with pytest.raises(ConfigurationError, match="max_sessions"):
        TrafficSpec(arrivals="poisson", max_sessions=0)
    with pytest.raises(ConfigurationError, match="queue_limit"):
        TrafficSpec(arrivals="poisson", queue_limit=-1)
    with pytest.raises(ConfigurationError, match="queue_timeout"):
        TrafficSpec(arrivals="poisson", queue_timeout=0)
    with pytest.raises(ConfigurationError, match="window start"):
        TrafficSpec(trace="t.jsonl", window=(10.0, 10.0))


def test_traffic_spec_roundtrips_and_is_hashable():
    spec = TrafficSpec(arrivals="tenant_mix", params={
        "tenants": {"a": {"process": "poisson", "rate": 0.01},
                    "b": {"process": "flash_crowd"}}},
        max_sessions=4, queue_limit=2)
    rebuilt = TrafficSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert hash(rebuilt) == hash(spec)
    trace = TrafficSpec(trace="t.jsonl", window=(0.0, 10.0),
                        tenants=("a",), remap={"x": "y"}, rate_scale=2.0,
                        tolerate_tail=True)
    assert TrafficSpec.from_dict(
        json.loads(json.dumps(trace.to_dict()))) == trace
    with pytest.raises(ConfigurationError, match="unknown traffic"):
        TrafficSpec.from_dict({"arrivals": "poisson", "burst": True})
    assert spec.build_arrivals().name == "tenant_mix"


def burst_spec(scenario_id, traffic, **overrides):
    defaults = dict(
        scenario_id=scenario_id, title="Open-loop test", family="test",
        workload="oltp", clients=2, preset="smoke", seed=1,
        traffic=traffic,
        variants=(VariantSpec("run"),),
        expect=(Expectation("openloop.offered", ">", 0, variant="run"),))
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def test_scenario_version_stamping_is_minimal():
    closed = ScenarioSpec(scenario_id="closed", title="t", family="test")
    doc = closed.to_dict()
    assert doc["version"] == 2
    assert "traffic" not in doc
    open_loop = burst_spec("open", TrafficSpec(arrivals="poisson"))
    doc = open_loop.to_dict()
    assert doc["version"] == 3
    assert doc["traffic"] == {"arrivals": "poisson"}
    rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(doc)))
    assert rebuilt.traffic == open_loop.traffic
    assert rebuilt == open_loop


def test_traffic_axis_requires_experiment_kind():
    with pytest.raises(ConfigurationError, match="traffic"):
        ScenarioSpec(scenario_id="m", title="t", family="test",
                     kind="monitors", render="monitors",
                     traffic=TrafficSpec(arrivals="poisson"))


# ------------------------------------------------------- open-loop sim
def open_loop_run(traffic, workload="oltp", duration=2400.0, seed=5,
                  clients=4, throttling=True, trace_base=None):
    wl = make_workload(workload)
    server = DatabaseServer(paper_server_config(throttling=throttling),
                            wl.build_catalog())
    generator = OpenLoopGenerator(server, wl, traffic=traffic,
                                  duration=duration, seed=seed,
                                  clients=clients, trace_base=trace_base)
    generator.run()
    return server, generator


def test_open_loop_facts_are_deterministic():
    traffic = TrafficSpec(arrivals="poisson", params={"rate": 0.01})
    _, first = open_loop_run(traffic)
    _, again = open_loop_run(traffic)
    assert first.stats.offered > 0
    assert first.stats.admitted <= first.stats.offered
    assert first.facts() == again.facts()
    totals = first.totals()
    assert totals.submitted == first.stats.admitted
    assert totals.retries == 0
    facts = first.facts(scale=1.0)
    assert {"offered", "admitted", "dropped", "dropped_queue",
            "dropped_timeout", "max_sessions", "queue_wait_p50",
            "queue_wait_p90", "queue_wait_max"} <= set(facts)
    # single-tenant runs carry no per-tenant breakdown
    assert not any(key.startswith("tenant.") for key in facts)


def test_open_loop_drops_when_admission_saturates():
    traffic = TrafficSpec(
        arrivals="flash_crowd",
        params={"base_rate": 0, "spike_rate": 0.5, "spike_at": 10.0,
                "spike_duration": 60.0},
        max_sessions=1, queue_limit=0, queue_timeout=30.0)
    _, generator = open_loop_run(traffic)
    stats = generator.stats
    assert stats.offered > 5
    assert stats.dropped_queue > 0
    assert stats.admitted + stats.dropped <= stats.offered
    assert generator.facts()["max_sessions"] == 1.0


def test_trace_replay_runs_named_templates(tmp_path):
    workload = make_workload("oltp")
    names = workload.template_names()
    path = write_lines(
        tmp_path / "replay.jsonl",
        json.dumps({"t": 5.0, "template": names[0], "tenant": "a"}),
        json.dumps({"t": 15.0, "template": names[-1], "tenant": "b"}),
        json.dumps({"t": 25.0, "template": "unknown-template"}))
    traffic = TrafficSpec(trace="replay.jsonl")
    server, generator = open_loop_run(traffic, duration=1200.0,
                                      trace_base=str(tmp_path))
    assert generator.stats.offered == 3
    assert generator.stats.admitted == 3
    templates = [r.template for r in server.metrics.records]
    assert templates[:2] == [names[0], names[-1]]
    # an unknown template falls back to a generated query, not a crash
    assert len(templates) == 3
    facts = generator.facts()
    assert facts["tenant.a.offered"] == 1.0
    assert facts["tenant.b.offered"] == 1.0


@pytest.mark.slow
def test_flash_crowd_engages_and_releases_gateways():
    """Satellite pin: a flash-crowd spike pushes compilations through
    the gateway ladder (acquires observed) and the system drains —
    every gateway idle, the broker still sweeping — once it passes."""
    traffic = TrafficSpec(
        arrivals="flash_crowd",
        params={"base_rate": 0, "spike_rate": 0.1, "spike_at": 30.0,
                "spike_duration": 120.0},
        max_sessions=4, queue_limit=16, queue_timeout=600.0)
    server, generator = open_loop_run(traffic, workload="sales",
                                      duration=2400.0)
    assert generator.stats.offered > 3
    assert generator.stats.succeeded > 0
    acquires = sum(g.stats.acquires for g in server.governor.gateways)
    assert acquires > 0, "spike never engaged the gateway ladder"
    for gateway in server.governor.gateways:
        assert gateway.active == 0, f"{gateway.name} never released"
        assert gateway.waiting == 0
    assert server.broker.sweeps > 0


@pytest.mark.slow
def test_open_loop_scenario_byte_identical_across_executors(tmp_path):
    """Acceptance pin: the same open-loop scenario through the inline
    and stream executors writes canonically byte-identical artifacts —
    the arrival schedule is seed-deterministic, never wall-clock or
    worker driven."""
    from repro.experiments.executors import InlineExecutor, StreamExecutor
    from repro.experiments.wire import run_worker

    spec = burst_spec(
        "traffic-equiv",
        TrafficSpec(arrivals="flash_crowd",
                    params={"base_rate": 0, "spike_rate": 0.02,
                            "spike_at": 600.0, "spike_duration": 400.0},
                    queue_limit=4, queue_timeout=120.0))

    inline_dir = tmp_path / "inline"
    write_scenario_artifact(
        str(inline_dir), run_scenario(spec, executor=InlineExecutor()))

    stream_dir = tmp_path / "stream"
    stream = StreamExecutor(timeout=300)
    address = stream.start()
    threads = [threading.Thread(target=run_worker, args=address,
                                daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        result = run_scenario(spec, executor=stream)
        write_scenario_artifact(str(stream_dir), result)
    finally:
        stream.close()
    for thread in threads:
        thread.join(timeout=10)

    assert result.ok, result.render()
    name = "BENCH_scenario_traffic-equiv.json"
    assert canonical_text(inline_dir / name) \
        == canonical_text(stream_dir / name)
    doc = json.loads((inline_dir / name).read_text(encoding="utf-8"))
    summary = doc["results"]["run"]
    assert summary["open_loop"]["offered"] > 0
    assert doc["spec"]["version"] == 3
    assert doc["spec"]["traffic"]["arrivals"] == "flash_crowd"


@pytest.mark.slow
def test_closed_loop_artifacts_carry_no_traffic_keys(tmp_path):
    """The no-regression pin: without a traffic axis neither the
    config document nor the summary grows new keys."""
    spec = ScenarioSpec(scenario_id="closed-pin", title="t",
                        family="test", workload="oltp", clients=2,
                        preset="smoke", seed=1,
                        variants=(VariantSpec("run"),))
    path = write_scenario_artifact(str(tmp_path), run_scenario(spec))
    doc = json.loads(open(path, encoding="utf-8").read())
    summary = doc["results"]["run"]
    assert "open_loop" not in summary
    assert "traffic" not in summary["config"]
    assert doc["spec"]["version"] == 2


# ----------------------------------------------------------------- CLI
def test_cli_traces_synth_validate_summarize(tmp_path, capsys):
    from repro import cli

    out = str(tmp_path / "cli.jsonl")
    assert cli.main(["traces", "synth", "--out", out,
                     "--arrivals", "flash_crowd",
                     "--param", "spike_at=100", "--param", "base_rate=0",
                     "--duration", "600", "--workload", "sales",
                     "--tenant", "acme"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert cli.main(["traces", "validate", out]) == 0
    assert "valid" in capsys.readouterr().out
    assert cli.main(["traces", "summarize", out]) == 0
    output = capsys.readouterr().out
    assert "acme" in output and "mean rate" in output


def test_cli_traces_errors_exit_2(tmp_path, capsys):
    from repro import cli

    torn = write_lines(tmp_path / "torn.jsonl",
                       '{"t": 1.0}', '{"t": 2.0, "tem')
    assert cli.main(["traces", "validate", torn]) == 2
    assert "line 2" in capsys.readouterr().err
    assert cli.main(["traces", "validate", torn, "--tolerate-tail"]) == 0
    capsys.readouterr()
    assert cli.main(["traces", "synth", "--out", str(tmp_path / "x.jsonl"),
                     "--arrivals", "poisson", "--param", "rate=nope"]) == 2
    assert "poisson rate" in capsys.readouterr().err


def test_cli_scenarios_run_example_burst_file(capsys):
    """The shipped example spec parses and resolves its relative trace
    against the spec file's directory (describe validates without
    running the experiment)."""
    from repro import cli

    assert cli.main(["scenarios", "describe", "--scenario",
                     "examples/burst_scenario.json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 3
    assert doc["traffic"]["trace"].endswith("sample_trace.jsonl")
    assert doc["scenario_id"] == "burst-replay"


def test_burst_family_is_registered():
    from repro.scenarios import get_scenario

    flash = get_scenario("burst-flash")
    assert flash.family == "burst"
    assert flash.traffic is not None
    assert flash.traffic.arrivals == "flash_crowd"
    noisy = get_scenario("burst-noisy")
    assert noisy.traffic.arrivals == "tenant_mix"
    assert any(e.metric.startswith("openloop.tenant.")
               for e in noisy.expect)
