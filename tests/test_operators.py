"""Tests for execution-profile derivation and the spill model."""

import pytest

from repro.execution import ExecutionProfile, build_profile
from repro.execution.operators import MAX_SPILL_FACTOR
from repro.optimizer import Optimizer
from repro.sql import Binder, parse
from repro.units import MiB


def profile_for(catalog, sql):
    opt = Optimizer(catalog)
    bound = Binder(catalog).bind(parse(sql))
    result = opt.optimize(bound)
    return build_profile(result.plan, catalog, opt.cost_model)


def test_profile_collects_scans(star_catalog, star_query):
    profile = profile_for(star_catalog, star_query)
    tables = {scan.table for scan in profile.scans}
    assert tables == {"fact_sales", "products", "stores"}
    fact = next(s for s in profile.scans if s.table == "fact_sales")
    assert fact.length_fraction == pytest.approx(0.1, abs=0.02)
    assert 0.45 <= fact.offset_fraction <= 0.55


def test_profile_cpu_positive_and_memory_from_plan(star_catalog, star_query):
    profile = profile_for(star_catalog, star_query)
    assert profile.cpu_seconds > 0
    assert profile.desired_memory > 0
    assert profile.output_rows > 0


def test_no_spill_when_grant_sufficient():
    profile = ExecutionProfile(cpu_seconds=10, desired_memory=100 * MiB)
    assert profile.spill_bytes(100 * MiB) == 0
    assert profile.spill_bytes(200 * MiB) == 0
    assert profile.spill_cpu(100 * MiB) == 0.0


def test_spill_grows_with_shortfall():
    profile = ExecutionProfile(cpu_seconds=10, desired_memory=100 * MiB)
    mild = profile.spill_bytes(80 * MiB)
    severe = profile.spill_bytes(20 * MiB)
    assert 0 < mild < severe
    # one-pass regime: write + read the overflow
    assert mild == pytest.approx(2 * 20 * MiB, rel=0.01)


def test_spill_passes_capped():
    profile = ExecutionProfile(cpu_seconds=10, desired_memory=1000 * MiB)
    worst = profile.spill_bytes(1)
    assert worst <= 2 * 1000 * MiB * MAX_SPILL_FACTOR


def test_spill_cpu_proportional_to_shortfall():
    profile = ExecutionProfile(cpu_seconds=10, desired_memory=100 * MiB)
    assert profile.spill_cpu(50 * MiB) == pytest.approx(10 * 0.3 * 0.5)


def test_zero_desired_memory_never_spills():
    profile = ExecutionProfile(cpu_seconds=1, desired_memory=0)
    assert profile.spill_bytes(0) == 0
