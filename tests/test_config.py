"""Tests for configuration validation and derived settings."""

import pytest

from repro.config import (
    BrokerConfig,
    GatewayConfig,
    HardwareConfig,
    ServerConfig,
    ThrottleConfig,
    paper_server_config,
)
from repro.errors import ConfigurationError
from repro.units import GiB, MiB


def test_paper_defaults_match_testbed():
    config = paper_server_config()
    assert config.hardware.cpus == 8
    assert config.hardware.physical_memory == 4 * GiB
    assert config.hardware.disks == 8
    assert config.throttle.enabled
    assert len(config.throttle.gateways) == 3


def test_with_throttling_toggle():
    config = paper_server_config(throttling=False)
    assert not config.throttle.enabled
    again = config.with_throttling(True)
    assert again.throttle.enabled
    assert not config.throttle.enabled  # original untouched


def test_scaled_compounds():
    config = ServerConfig().scaled(2.0).scaled(3.0)
    assert config.time_scale == 6.0
    with pytest.raises(ConfigurationError):
        ServerConfig().scaled(0)


def test_fast_trades_effort_for_bytes():
    config = ServerConfig().fast(4.0)
    assert config.optimizer_effort == pytest.approx(0.25)
    assert config.optimizer_memory_multiplier == pytest.approx(4.0)
    with pytest.raises(ConfigurationError):
        ServerConfig().fast(0)


def test_hardware_validation():
    with pytest.raises(ConfigurationError):
        HardwareConfig(cpus=0)
    with pytest.raises(ConfigurationError):
        HardwareConfig(physical_memory=0)
    with pytest.raises(ConfigurationError):
        HardwareConfig(disks=0)
    with pytest.raises(ConfigurationError):
        HardwareConfig(cpu_speed=0)


def test_total_disk_bandwidth():
    hw = HardwareConfig(disks=4, disk_bandwidth=50 * MiB)
    assert hw.total_disk_bandwidth == 200 * MiB


def test_gateway_capacity_rules():
    per_cpu = GatewayConfig(per_cpu=4, absolute=None)
    assert per_cpu.capacity(8) == 32
    absolute = GatewayConfig(per_cpu=None, absolute=1)
    assert absolute.capacity(8) == 1
    neither = GatewayConfig(per_cpu=None, absolute=None)
    with pytest.raises(ConfigurationError):
        neither.capacity(8)


def test_throttle_fraction_validation():
    with pytest.raises(ConfigurationError):
        ThrottleConfig(small_fraction=0.0)
    with pytest.raises(ConfigurationError):
        ThrottleConfig(medium_fraction=1.5)


def test_configs_are_immutable():
    config = paper_server_config()
    with pytest.raises(Exception):
        config.seed = 1
