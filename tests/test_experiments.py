"""Tests for the experiment harness (runner, figures, ablations).

These run miniature configurations — the full reproductions live in
``benchmarks/``.
"""

import json
import os

import pytest

from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    PRESETS,
    figure1_monitors,
    run_experiment,
)
from repro.experiments.ablations import (
    ablation_suite_jobs,
    config_with_gateways,
    gateway_ladder,
)
from repro.experiments.engine import (
    ExperimentEngine,
    ExperimentJob,
    figure_suite_jobs,
    run_jobs,
    write_artifact,
)
from repro.experiments.runner import make_workload


def tiny_config(**overrides) -> ExperimentConfig:
    """The cheapest meaningful run for engine tests."""
    defaults = dict(workload="oltp", clients=2, throttling=True,
                    preset="smoke", seed=1, think_time=5.0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_presets_sane():
    for preset in PRESETS.values():
        assert preset.warmup > 0
        assert preset.measure > 0
        assert preset.bucket > 0


def test_make_workload_by_name():
    assert make_workload("sales").name == "sales"
    assert make_workload("tpch").name == "tpch"
    assert make_workload("oltp").name == "oltp"
    assert make_workload("mixed", tpch_fraction=0.5).name == "mixed"
    with pytest.raises(ConfigurationError) as excinfo:
        make_workload("nope")
    # the error teaches the valid names instead of a bare KeyError
    assert "sales" in str(excinfo.value)
    with pytest.raises(ConfigurationError) as excinfo:
        make_workload("tpch", bogus_param=1)
    assert "tpch" in str(excinfo.value)


def test_unknown_preset_is_a_configuration_error():
    from repro.experiments.runner import get_preset

    with pytest.raises(ConfigurationError) as excinfo:
        get_preset("warp-speed")
    assert "smoke" in str(excinfo.value)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(preset="warp-speed").build_server_config()


def test_build_server_config_applies_preset_and_throttle():
    config = ExperimentConfig(preset="smoke", throttling=False)
    server_config = config.build_server_config()
    assert not server_config.throttle.enabled
    assert server_config.optimizer_effort < 1.0
    assert server_config.optimizer_memory_multiplier > 1.0


def test_figure1_renders_both_modes():
    text = figure1_monitors(True)
    assert "small" in text and "big" in text


def test_gateway_ladder_slicing():
    assert len(gateway_ladder(0)) == 0
    assert len(gateway_ladder(2)) == 2
    with pytest.raises(ValueError):
        gateway_ladder(4)
    assert not config_with_gateways(0).throttle.enabled
    assert config_with_gateways(2).throttle.enabled


def test_engine_duplicate_job_names_rejected():
    jobs = [ExperimentJob("a", tiny_config()),
            ExperimentJob("a", tiny_config(seed=2))]
    with pytest.raises(ValueError):
        ExperimentEngine().run(jobs)


def test_suite_builders_produce_unique_jobs():
    for jobs in (figure_suite_jobs(), ablation_suite_jobs()):
        names = [j.name for j in jobs]
        assert len(set(names)) == len(names)
        assert all(j.config.preset == "smoke" for j in jobs)
    assert len(figure_suite_jobs()) == 6


@pytest.mark.slow
def test_engine_serial_batch_and_error_accounting():
    """A failing job is accounted, the rest of the batch completes, and
    aggregation order matches submission order."""
    jobs = [
        ExperimentJob("ok_1", tiny_config(seed=1)),
        ExperimentJob("broken", tiny_config(workload="nope")),
        ExperimentJob("ok_2", tiny_config(seed=2)),
    ]
    batch = run_jobs(jobs, workers=1)
    assert not batch.ok
    assert set(batch.results) == {"ok_1", "ok_2"}
    assert "ConfigurationError" in batch.errors["broken"]
    # ordered keeps one slot per job, with a hole for the failure
    assert len(batch.ordered) == 3
    assert batch.ordered[0] is batch.results["ok_1"]
    assert batch.ordered[1] is None
    assert batch.ordered[2] is batch.results["ok_2"]
    assert batch.results["ok_1"].completed > 0


@pytest.mark.slow
def test_engine_parallel_matches_serial(tmp_path):
    """Workers must not change results: same configs, same numbers —
    and the artifact round-trips through JSON."""
    jobs = [ExperimentJob("a", tiny_config(seed=5)),
            ExperimentJob("b", tiny_config(seed=6))]
    serial = run_jobs(jobs, workers=1)
    parallel = run_jobs(jobs, workers=2)
    assert parallel.ok and serial.ok
    for name in ("a", "b"):
        assert (parallel.results[name].completed
                == serial.results[name].completed)
        assert (parallel.results[name].error_counts
                == serial.results[name].error_counts)

    path = write_artifact(str(tmp_path), "unit", parallel)
    assert os.path.basename(path) == "BENCH_unit.json"
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    from repro.experiments.engine import ARTIFACT_SCHEMA

    assert doc["schema"] == ARTIFACT_SCHEMA
    assert set(doc["results"]) == {"a", "b"}
    assert doc["results"]["a"]["completed"] == serial.results["a"].completed
    assert doc["errors"] == {}


@pytest.mark.slow
def test_shared_searches_replay_without_changing_results():
    """Seeding a run from another run's recorded searches replays them
    (wall-clock win) but leaves every simulated number untouched."""
    import pickle

    config = tiny_config(workload="sales", clients=2, seed=9)
    baseline = run_experiment(config)
    pool = {}
    first = run_experiment(config, shared_searches=pool)
    second = run_experiment(config, shared_searches=pool)
    for seeded in (first, second):
        assert seeded.completed == baseline.completed
        assert seeded.failed == baseline.failed
        assert seeded.error_counts == baseline.error_counts
        assert seeded.degraded == baseline.degraded
        assert seeded.throughput == baseline.throughput
    assert second.search_replays > first.search_replays
    # recordings must survive the process boundary (engine pool path)
    assert pickle.loads(pickle.dumps(pool))


@pytest.mark.slow
def test_engine_shares_searches_across_jobs():
    """A job repeating another job's config replays its searches."""
    jobs = [ExperimentJob("first", tiny_config(seed=4)),
            ExperimentJob("again", tiny_config(seed=4))]
    batch = run_jobs(jobs, workers=1)
    assert batch.ok
    assert (batch.results["again"].completed
            == batch.results["first"].completed)
    assert (batch.results["again"].search_replays
            > batch.results["first"].search_replays)


@pytest.mark.slow
def test_run_experiment_oltp_smoke():
    """A tiny end-to-end run through the harness."""
    workload = make_workload("oltp")
    result = run_experiment(ExperimentConfig(
        workload="oltp", clients=3, throttling=True, preset="smoke",
        seed=1, think_time=5.0), workload=workload)
    assert result.completed > 0
    assert result.throughput, "empty throughput series"
    assert result.wall_seconds > 0
    assert "compilation" in result.memory_by_clerk
    assert result.config.clients == 3


@pytest.mark.slow
def test_run_experiment_reports_paper_time_axis():
    """Series timestamps are reported in paper seconds starting at the
    warm-up boundary."""
    workload = make_workload("oltp")
    preset = PRESETS["smoke"]
    result = run_experiment(ExperimentConfig(
        workload="oltp", clients=2, preset="smoke", seed=2),
        workload=workload)
    times = [t for t, _ in result.throughput]
    assert times[0] == pytest.approx(preset.warmup)
    assert times[-1] < preset.warmup + preset.measure
