"""Tests for the experiment harness (runner, figures, ablations).

These run miniature configurations — the full reproductions live in
``benchmarks/``.
"""

import pytest

from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    PRESETS,
    figure1_monitors,
    run_experiment,
)
from repro.experiments.ablations import (
    config_with_gateways,
    gateway_ladder,
)
from repro.experiments.runner import make_workload


def test_presets_sane():
    for preset in PRESETS.values():
        assert preset.warmup > 0
        assert preset.measure > 0
        assert preset.bucket > 0


def test_make_workload_by_name():
    assert make_workload("sales").name == "sales"
    assert make_workload("tpch").name == "tpch"
    assert make_workload("oltp").name == "oltp"
    with pytest.raises(ConfigurationError):
        make_workload("nope")


def test_build_server_config_applies_preset_and_throttle():
    config = ExperimentConfig(preset="smoke", throttling=False)
    server_config = config.build_server_config()
    assert not server_config.throttle.enabled
    assert server_config.optimizer_effort < 1.0
    assert server_config.optimizer_memory_multiplier > 1.0


def test_figure1_renders_both_modes():
    text = figure1_monitors(True)
    assert "small" in text and "big" in text


def test_gateway_ladder_slicing():
    assert len(gateway_ladder(0)) == 0
    assert len(gateway_ladder(2)) == 2
    with pytest.raises(ValueError):
        gateway_ladder(4)
    assert not config_with_gateways(0).throttle.enabled
    assert config_with_gateways(2).throttle.enabled


@pytest.mark.slow
def test_run_experiment_oltp_smoke():
    """A tiny end-to-end run through the harness."""
    workload = make_workload("oltp")
    result = run_experiment(ExperimentConfig(
        workload="oltp", clients=3, throttling=True, preset="smoke",
        seed=1, think_time=5.0), workload=workload)
    assert result.completed > 0
    assert result.throughput, "empty throughput series"
    assert result.wall_seconds > 0
    assert "compilation" in result.memory_by_clerk
    assert result.config.clients == 3


@pytest.mark.slow
def test_run_experiment_reports_paper_time_axis():
    """Series timestamps are reported in paper seconds starting at the
    warm-up boundary."""
    workload = make_workload("oltp")
    preset = PRESETS["smoke"]
    result = run_experiment(ExperimentConfig(
        workload="oltp", clients=2, preset="smoke", seed=2),
        workload=workload)
    times = [t for t, _ in result.throughput]
    assert times[0] == pytest.approx(preset.warmup)
    assert times[-1] < preset.warmup + preset.measure
