"""Unit tests for the event layer of the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


def test_event_starts_pending(env):
    event = env.event()
    assert not event.triggered
    assert not event.processed


def test_event_value_unavailable_before_trigger(env):
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_succeed_sets_value(env):
    event = env.event()
    event.succeed(42)
    assert event.triggered
    assert event.ok
    assert event.value == 42


def test_double_trigger_rejected(env):
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(ValueError("x"))


def test_fail_requires_exception(env):
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_negative_timeout_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_fires_at_right_time(env):
    fired = []
    timeout = env.timeout(5, value="done")
    timeout.add_callback(lambda e: fired.append((env.now, e.value)))
    env.run()
    assert fired == [(5.0, "done")]


def test_timeouts_ordered_fifo_at_same_time(env):
    order = []
    for name in ("a", "b", "c"):
        t = env.timeout(1, value=name)
        t.add_callback(lambda e: order.append(e.value))
    env.run()
    assert order == ["a", "b", "c"]


def test_any_of_fires_on_first(env):
    fast = env.timeout(1, value="fast")
    slow = env.timeout(10, value="slow")
    any_of = env.any_of([fast, slow])
    results = []
    any_of.add_callback(lambda e: results.append((env.now, dict(e.value))))
    env.run()
    when, values = results[0]
    assert when == 1.0
    assert fast in values and slow not in values


def test_all_of_waits_for_all(env):
    events = [env.timeout(t) for t in (1, 5, 3)]
    all_of = env.all_of(events)
    results = []
    all_of.add_callback(lambda e: results.append(env.now))
    env.run()
    assert results == [5.0]


def test_all_of_empty_fires_immediately(env):
    all_of = env.all_of([])
    assert all_of.triggered


def test_condition_mixed_environments_rejected():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(SimulationError):
        AnyOf(env_a, [env_a.event(), env_b.event()])


def test_unhandled_failure_surfaces(env):
    event = env.event()
    event.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError):
        env.run()


def test_run_until_advances_clock_exactly(env):
    env.timeout(3)
    env.run(until=7.5)
    assert env.now == 7.5


def test_run_until_past_rejected(env):
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_peek_reports_next_event_time(env):
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4.0
