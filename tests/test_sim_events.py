"""Unit tests for the event layer of the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


def test_event_starts_pending(env):
    event = env.event()
    assert not event.triggered
    assert not event.processed


def test_event_value_unavailable_before_trigger(env):
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_succeed_sets_value(env):
    event = env.event()
    event.succeed(42)
    assert event.triggered
    assert event.ok
    assert event.value == 42


def test_double_trigger_rejected(env):
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(ValueError("x"))


def test_fail_requires_exception(env):
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_negative_timeout_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_fires_at_right_time(env):
    fired = []
    timeout = env.timeout(5, value="done")
    timeout.add_callback(lambda e: fired.append((env.now, e.value)))
    env.run()
    assert fired == [(5.0, "done")]


def test_timeouts_ordered_fifo_at_same_time(env):
    order = []
    for name in ("a", "b", "c"):
        t = env.timeout(1, value=name)
        t.add_callback(lambda e: order.append(e.value))
    env.run()
    assert order == ["a", "b", "c"]


def test_any_of_fires_on_first(env):
    fast = env.timeout(1, value="fast")
    slow = env.timeout(10, value="slow")
    any_of = env.any_of([fast, slow])
    results = []
    any_of.add_callback(lambda e: results.append((env.now, dict(e.value))))
    env.run()
    when, values = results[0]
    assert when == 1.0
    assert fast in values and slow not in values


def test_all_of_waits_for_all(env):
    events = [env.timeout(t) for t in (1, 5, 3)]
    all_of = env.all_of(events)
    results = []
    all_of.add_callback(lambda e: results.append(env.now))
    env.run()
    assert results == [5.0]


def test_all_of_empty_fires_immediately(env):
    all_of = env.all_of([])
    assert all_of.triggered


def test_condition_mixed_environments_rejected():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(SimulationError):
        AnyOf(env_a, [env_a.event(), env_b.event()])


def test_unhandled_failure_surfaces(env):
    event = env.event()
    event.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError):
        env.run()


def test_run_until_advances_clock_exactly(env):
    env.timeout(3)
    env.run(until=7.5)
    assert env.now == 7.5


def test_run_until_past_rejected(env):
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_peek_reports_next_event_time(env):
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4.0


# -------------------------- sibling cancellation mid-trigger ----------
def test_anyof_callback_failing_pending_sibling_is_absorbed(env):
    """The winner's callback "cancels" the loser by failing it; the
    condition is already triggered, so the failure must be defused
    instead of escaping env.run() as an unhandled error."""
    fast = env.timeout(1, value="fast")
    slow = env.event()
    cond = env.any_of([fast, slow])
    cond.add_callback(lambda e: slow.fail(ValueError("lost the race")))
    env.run()
    assert cond.ok and fast in cond.value
    assert slow.triggered and not slow._ok and slow._defused


def test_anyof_both_siblings_fail_same_instant(env):
    """Two children failing in one timestep: the first failure decides
    the condition, the second is absorbed (defused), and the waiter
    sees exactly the first exception."""
    first, second = ValueError("first"), ValueError("second")
    e1, e2 = env.event(), env.event()
    cond = env.any_of([e1, e2])
    e1.fail(first)
    e2.fail(second)
    caught = []

    def waiter(env):
        try:
            yield cond
        except ValueError as exc:
            caught.append(exc)

    env.process(waiter(env))
    env.run()
    assert caught == [first]
    assert e1._defused and e2._defused


def test_allof_sibling_failed_by_callback_mid_trigger(env):
    """A callback on one child fails its sibling while the child's own
    trigger cascade is still running; the AllOf must fail with that
    exception and defuse the sibling."""
    e1 = env.timeout(1)
    e2 = env.event()
    boom = ValueError("sibling cancelled")
    e1.add_callback(lambda e: e2.fail(boom))
    cond = env.all_of([e1, e2])
    caught = []

    def waiter(env):
        try:
            yield cond
        except ValueError as exc:
            caught.append(exc)

    env.process(waiter(env))
    env.run()
    assert caught == [boom]
    assert e2._defused
    assert not cond.ok


def test_anyof_late_sibling_success_is_ignored(env):
    """A sibling that fires after the condition resolved neither
    re-triggers the condition nor corrupts its collected values."""
    fast = env.timeout(1, value="fast")
    slow = env.timeout(5, value="slow")
    cond = env.any_of([fast, slow])
    collected = []
    cond.add_callback(lambda e: collected.append(dict(e.value)))
    env.run()
    assert collected == [{fast: "fast"}]
    assert slow.processed and slow.ok  # fired, harmlessly


def test_resource_request_cancelled_from_anyof_timeout(env):
    """The gateway pattern at the event layer: a waiter races a
    request against a timeout and cancels the losing request from its
    resumption — the cancelled request must never be granted, and the
    slot must flow to the next queued waiter."""
    from repro.sim import Resource

    resource = Resource(env, capacity=1)
    holder = resource.request()  # takes the only slot at t=0
    granted = []

    def impatient(env):
        req = resource.request()
        timeout = env.timeout(2)
        yield env.any_of([req, timeout])
        if not req.granted:
            resource.cancel(req)
            return
        granted.append("impatient")  # pragma: no cover - must not run

    def patient(env):
        req = resource.request()
        yield req
        granted.append("patient")

    def releaser(env):
        yield env.timeout(5)
        resource.release(holder)

    env.process(impatient(env))
    env.process(patient(env))
    env.process(releaser(env))
    env.run()
    assert granted == ["patient"]
    assert resource.queued == 0


def test_trigger_from_pending_event_rejected(env):
    """Copying the outcome of a still-pending event is a kernel bug;
    it must raise cleanly and must NOT mark the pending event defused
    (that would swallow its eventual real failure)."""
    src, dst = env.event(), env.event()
    with pytest.raises(SimulationError, match="pending"):
        dst.trigger(src)
    assert not src._defused
    # the source's later genuine failure still surfaces
    src.fail(ValueError("the real error"))
    with pytest.raises(ValueError, match="the real error"):
        env.run()


def test_trigger_copies_failure_and_defuses(env):
    src, dst = env.event(), env.event()
    src.fail(ValueError("copied"))
    caught = []

    def waiter(env):
        try:
            yield dst
        except ValueError as exc:
            caught.append(exc)

    env.process(waiter(env))
    src.add_callback(dst.trigger)
    env.run()
    assert src._defused
    assert len(caught) == 1 and str(caught[0]) == "copied"
