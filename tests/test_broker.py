"""Tests for the Memory Broker (paper §3)."""

import pytest

from repro.broker import BrokerSignal, MemoryBroker
from repro.config import BrokerConfig
from repro.memory import MemoryManager
from repro.sim import Environment
from repro.units import GiB, MiB


def make_broker(env, physical=1000 * MiB, **overrides):
    manager = MemoryManager(physical)
    config = BrokerConfig(**overrides)
    broker = MemoryBroker(env, manager, config)
    return manager, broker


def test_no_action_when_memory_plentiful(env):
    manager, broker = make_broker(env)
    clerk = manager.clerk("buffer_pool")
    clerk.allocate(100 * MiB)
    notes = []
    broker.subscribe("buffer_pool", notes.append)
    broker.sweep()
    assert not broker.under_pressure
    # first sweep sends one GROW (component state unknown before)
    assert all(n.signal is BrokerSignal.GROW for n in notes)
    broker.sweep()
    assert len(notes) == 1  # no repeated GROW chatter


def test_pressure_detected_from_trend(env):
    """Usage growing toward the limit triggers pressure *before* the
    machine is actually full (the broker predicts)."""
    manager, broker = make_broker(env, horizon=5.0, interval=1.0)
    clerk = manager.clerk("compilation")
    for step in range(6):
        clerk.allocate(120 * MiB)     # 120 MiB/s growth
        env.run(until=env.now + 1.0)
        broker.sweep()
        if broker.under_pressure:
            break
    assert broker.under_pressure
    assert manager.used < manager.physical_memory


def test_shrink_notification_for_cache_over_target(env):
    manager, broker = make_broker(env)
    pool = manager.clerk("buffer_pool")
    compile_clerk = manager.clerk("compilation")
    workspace = manager.clerk("workspace")
    pool.allocate(600 * MiB)
    compile_clerk.allocate(230 * MiB)
    workspace.allocate(150 * MiB)  # unshrinkable consumer
    notes = []
    broker.subscribe("buffer_pool", notes.append)
    broker.sweep()
    assert broker.under_pressure
    assert notes
    last = notes[-1]
    assert last.signal is BrokerSignal.SHRINK
    assert last.target < pool.used


def test_compilation_capped_at_its_fraction(env):
    manager, broker = make_broker(env, compile_target_fraction=0.25)
    compile_clerk = manager.clerk("compilation")
    pool = manager.clerk("buffer_pool")
    compile_clerk.allocate(620 * MiB)
    pool.allocate(370 * MiB)
    notes = []
    broker.subscribe("compilation", notes.append)
    broker.sweep()
    assert notes
    assert notes[-1].signal is BrokerSignal.SHRINK
    assert notes[-1].target <= broker.compile_target()


def test_buffer_pool_floor_respected(env):
    manager, broker = make_broker(env, buffer_pool_floor_fraction=0.2)
    pool = manager.clerk("buffer_pool")
    hog = manager.clerk("workspace")
    pool.allocate(300 * MiB)
    hog.allocate(680 * MiB)
    notes = []
    broker.subscribe("buffer_pool", notes.append)
    broker.sweep()
    assert notes
    floor = int(manager.physical_memory * 0.2)
    assert notes[-1].target >= floor


def test_grow_restored_after_pressure_clears(env):
    manager, broker = make_broker(env)
    pool = manager.clerk("buffer_pool")
    compile_clerk = manager.clerk("compilation")
    workspace = manager.clerk("workspace")
    pool.allocate(600 * MiB)
    compile_clerk.allocate(230 * MiB)
    workspace.allocate(150 * MiB)
    notes = []
    broker.subscribe("buffer_pool", notes.append)
    broker.sweep()
    assert notes[-1].signal is BrokerSignal.SHRINK
    compile_clerk.free(230 * MiB)
    workspace.free(150 * MiB)
    pool.free(400 * MiB)
    for _ in range(12):  # wash the trend window clean
        env.run(until=env.now + 1.0)
        broker.sweep()
    assert notes[-1].signal is BrokerSignal.GROW


def test_periodic_process_sweeps(env):
    manager, broker = make_broker(env, interval=2.0)
    broker.start()
    env.run(until=11.0)
    assert broker.sweeps == 5


def test_disabled_broker_never_starts(env):
    manager, broker = make_broker(env, enabled=False)
    broker.start()
    env.run(until=10.0)
    assert broker.sweeps == 0


def test_pressure_limit_includes_headroom(env):
    manager, broker = make_broker(env, headroom_fraction=0.1)
    assert broker.pressure_limit == int(manager.physical_memory * 0.9)


def test_advise_compile_grant_passes_without_pressure(env):
    manager, broker = make_broker(env)
    clerk = manager.clerk("compilation")
    assert broker.advise_compile_grant(clerk, 500 * MiB)


def test_advise_compile_grant_denies_imminent_oom(env):
    """Under pressure, a grant that would not fit even after full cache
    reclamation is declined before any physical allocation happens."""
    manager, broker = make_broker(env, buffer_pool_floor_fraction=0.2)
    pool = manager.clerk("buffer_pool")
    pool.allocate(500 * MiB)
    grants = manager.clerk("workspace")
    grants.allocate(400 * MiB)
    clerk = manager.clerk("compilation")
    broker.under_pressure = True
    # available = 100 MiB; pool reclaimable = 500 - 200 (floor) = 300
    # MiB, rounded down to whole 32 MiB eviction chunks -> 288 MiB
    assert broker.reclaimable_bytes() == 288 * MiB
    assert broker.advise_compile_grant(clerk, 350 * MiB)
    assert not broker.advise_compile_grant(clerk, 389 * MiB)


def test_advise_compile_grant_disabled_broker_always_grants(env):
    manager, broker = make_broker(env, enabled=False)
    clerk = manager.clerk("compilation")
    broker.under_pressure = True
    assert broker.advise_compile_grant(clerk, manager.physical_memory * 2)
