"""Unit and property tests for the memory manager, clerks, accounts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AccountClosedError,
    ConfigurationError,
    OutOfMemoryError,
)
from repro.memory import MemoryAccount, MemoryManager
from repro.memory.clerk import GrantOutcome
from repro.units import MiB


def make_shrinker(clerk):
    def shrink(goal):
        released = min(goal, clerk.used)
        if released:
            clerk.free(released)
        return released
    return shrink


def test_allocate_and_free_tracks_usage():
    manager = MemoryManager(1000)
    clerk = manager.clerk("a")
    clerk.allocate(400)
    assert manager.used == 400
    assert manager.available == 600
    clerk.free(150)
    assert clerk.used == 250
    assert manager.used == 250


def test_clerk_is_singleton_per_name():
    manager = MemoryManager(1000)
    assert manager.clerk("x") is manager.clerk("x")


def test_oom_raised_with_details():
    manager = MemoryManager(100)
    clerk = manager.clerk("a")
    clerk.allocate(80)
    with pytest.raises(OutOfMemoryError) as excinfo:
        clerk.allocate(50)
    assert excinfo.value.requested == 50
    assert excinfo.value.available == 20
    assert manager.oom_count == 1


def test_reclaim_from_shrinkable_cache():
    manager = MemoryManager(1000)
    cache = manager.clerk("cache")
    cache.allocate(900)
    manager.register_shrinker("cache", make_shrinker(cache))
    hungry = manager.clerk("hungry")
    hungry.allocate(400)  # forces the cache to give back 300
    assert hungry.used == 400
    assert cache.used == 600
    assert manager.reclaimed_bytes == 300


def test_reclaim_largest_cache_first():
    manager = MemoryManager(1000)
    big = manager.clerk("big")
    small = manager.clerk("small")
    big.allocate(500)
    small.allocate(300)
    manager.register_shrinker("big", make_shrinker(big))
    manager.register_shrinker("small", make_shrinker(small))
    other = manager.clerk("other")
    other.allocate(400)  # needs 200: big should donate before small
    assert big.used == 300
    assert small.used == 300


def test_try_allocate_never_reclaims():
    manager = MemoryManager(1000)
    cache = manager.clerk("cache")
    cache.allocate(900)
    manager.register_shrinker("cache", make_shrinker(cache))
    other = manager.clerk("other")
    assert not other.try_allocate(200)
    assert cache.used == 900  # untouched


def test_free_more_than_used_rejected():
    manager = MemoryManager(1000)
    clerk = manager.clerk("a")
    clerk.allocate(10)
    with pytest.raises(ConfigurationError):
        clerk.free(20)


def test_negative_amounts_rejected():
    manager = MemoryManager(1000)
    clerk = manager.clerk("a")
    with pytest.raises(ConfigurationError):
        clerk.allocate(-1)
    with pytest.raises(ConfigurationError):
        clerk.free(-1)


def test_peak_tracking():
    manager = MemoryManager(1000)
    clerk = manager.clerk("a")
    clerk.allocate(300)
    clerk.free(200)
    clerk.allocate(100)
    assert clerk.peak == 300
    assert clerk.total_allocated == 400


def test_request_grant_granted_charges_clerk():
    manager = MemoryManager(1000)
    clerk = manager.clerk("compilation")
    assert clerk.request_grant(300) is GrantOutcome.GRANTED
    assert clerk.used == 300
    assert manager.used == 300


def test_request_grant_soft_denial_consults_advisor():
    manager = MemoryManager(1000)
    clerk = manager.clerk("compilation")
    clerk.advisor = lambda c, n: n <= 100
    assert clerk.request_grant(200) is GrantOutcome.DENIED_SOFT
    assert clerk.used == 0  # nothing allocated, nothing raised
    assert clerk.soft_denials == 1
    # non-soft requests bypass the advisor entirely
    assert clerk.request_grant(200, soft=False) is GrantOutcome.GRANTED
    assert clerk.used == 200


def test_request_grant_hard_denial_on_physical_oom():
    manager = MemoryManager(100)
    clerk = manager.clerk("compilation")
    clerk.allocate(90)
    assert clerk.request_grant(50) is GrantOutcome.DENIED_HARD
    assert clerk.used == 90
    assert clerk.hard_denials == 1


def test_account_request_tracks_usage_on_grant_only():
    manager = MemoryManager(100)
    clerk = manager.clerk("compilation")
    account = MemoryAccount(clerk, label="q1")
    assert account.request(60) is GrantOutcome.GRANTED
    assert account.used == 60
    assert account.request(60) is GrantOutcome.DENIED_HARD
    assert account.used == 60  # denial leaves the account untouched
    account.close()
    with pytest.raises(AccountClosedError):
        account.request(1)


def test_account_charges_clerk():
    manager = MemoryManager(1000)
    clerk = manager.clerk("compilation")
    account = MemoryAccount(clerk, label="q1")
    account.allocate(100)
    account.allocate(50)
    assert account.used == 150
    assert account.peak == 150
    assert clerk.used == 150
    released = account.close()
    assert released == 150
    assert clerk.used == 0


def test_account_close_idempotent_and_final():
    manager = MemoryManager(1000)
    account = MemoryAccount(manager.clerk("c"), label="q")
    account.allocate(10)
    assert account.close() == 10
    assert account.close() == 0
    with pytest.raises(AccountClosedError):
        account.allocate(1)


def test_account_hooks_fire_after_allocation():
    manager = MemoryManager(1000)
    account = MemoryAccount(manager.clerk("c"))
    seen = []
    account.add_hook(lambda acct, n: seen.append((acct.used, n)))
    account.allocate(10)
    account.allocate(20)
    assert seen == [(10, 10), (30, 20)]


def test_account_free_partial():
    manager = MemoryManager(1000)
    account = MemoryAccount(manager.clerk("c"))
    account.allocate(100)
    account.free(40)
    assert account.used == 60
    with pytest.raises(AccountClosedError):
        account.free(100)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=-200, max_value=400)),
                max_size=50))
def test_accounting_invariant(ops):
    """Property: manager.used always equals the sum of clerk usage and
    never exceeds physical memory."""
    manager = MemoryManager(2000)
    for name, amount in ops:
        clerk = manager.clerk(name)
        try:
            if amount >= 0:
                clerk.allocate(amount)
            else:
                clerk.free(min(-amount, clerk.used))
        except OutOfMemoryError:
            pass
        total = sum(c.used for c in manager.clerks())
        assert manager.used == total
        assert 0 <= manager.used <= manager.physical_memory
