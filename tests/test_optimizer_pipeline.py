"""Property tests for the staged optimizer pipeline.

Seeded randomized join graphs drive every registered enumerator: the
join trees must be *valid* (each relation scanned exactly once, every
join predicate applied somewhere in the plan), byte-deterministic for
a fixed seed, and the ``ues`` enumerator's pessimistic cost bound must
never undercut the memo search's actual optimum.

The spec-plumbing half pins the :class:`OptimizerSpec` wire format:
dict round-trips, unknown-name errors that list the valid strategies,
and the full spec surviving a ``CellTask`` document round-trip.
"""

import json

import pytest

from repro.catalog import Catalog, Column, ColumnType, Index, Table
from repro.errors import ConfigurationError
from repro.experiments.executors import CellTask
from repro.experiments.shards import ShardCell
from repro.optimizer import Optimizer
from repro.optimizer.pipeline import (
    ENUMERATORS,
    PARAMETERIZATIONS,
    PRECHECKS,
    SELECTIONS,
    OptimizerPipeline,
)
from repro.optimizer.spec import (
    ENUMERATOR_NAMES,
    PARAMETERIZATION_NAMES,
    PRECHECK_NAMES,
    SELECTION_NAMES,
    STAGE_CHOICES,
    OptimizerSpec,
)
from repro.plans import expressions as ex
from repro.plans import physical as ph
from repro.scenarios import ScenarioSpec, VariantSpec
from repro.sql import Binder, parse

INT = ColumnType.INTEGER


# ------------------------------------------------- random join graphs
class _Rng:
    """A tiny deterministic LCG so graph shapes never depend on the
    stdlib's (stable but opaque) Mersenne Twister stream."""

    def __init__(self, seed):
        self.state = (seed * 2654435761 + 1) % (2 ** 31)

    def next(self, bound):
        self.state = (self.state * 1103515245 + 12345) % (2 ** 31)
        return self.state % bound


def random_join_graph(seed, max_tables=6):
    """A connected random join graph: catalog, SQL text and the
    expected (alias, alias, column-pair) join conjuncts."""
    rng = _Rng(seed)
    n = 2 + rng.next(max_tables - 1)
    catalog = Catalog()
    rows = []
    for i in range(n):
        row_count = 100 + rng.next(200_000)
        rows.append(row_count)
        catalog.create_table(Table(
            name=f"t{i}",
            columns=(
                Column("pk", INT, ndv=row_count, low=0,
                       high=row_count - 1),
                Column("fk", INT, ndv=max(1, row_count // 10), low=0,
                       high=max(0, row_count // 10 - 1)),
            ),
            row_count=row_count,
            indexes=(Index(f"pk_t{i}", ("pk",), clustered=True,
                           unique=True),),
        ))
    joins = []
    for i in range(1, n):
        parent = rng.next(i)   # attach to an earlier table: connected
        joins.append((f"a{i}", "fk", f"a{parent}", "pk"))
    where = [f"{la}.{lc} = {ra}.{rc}" for la, lc, ra, rc in joins]
    # one local range predicate on a random relation keeps the
    # selectivity machinery in the loop
    pick = rng.next(n)
    hi = max(1, rows[pick] // 4)
    where.append(f"a{pick}.pk BETWEEN 0 AND {hi}")
    tables = ", ".join(f"t{i} a{i}" for i in range(n))
    sql = f"SELECT a0.pk FROM {tables} WHERE {' AND '.join(where)}"
    return catalog, sql, joins, n


def result_for(catalog, sql, enumerator):
    opt = Optimizer(catalog,
                    spec=OptimizerSpec(enumerator=enumerator))
    bound = Binder(catalog).bind(parse(sql))
    return opt.optimize(bound)


def task_for(catalog, sql, enumerator):
    opt = Optimizer(catalog,
                    spec=OptimizerSpec(enumerator=enumerator))
    bound = Binder(catalog).bind(parse(sql))
    return opt.task(bound)


def equality_pairs(plan):
    """Every alias-column equality the plan applies, as frozensets.

    Hash joins contribute their key zips; nested-loops conditions,
    filters, scan predicates and hash-join residuals contribute their
    ``col = col`` conjuncts.
    """
    pairs = set()

    def from_predicate(predicate):
        for conjunct in ex.conjuncts(predicate):
            if isinstance(conjunct, ex.Comparison) \
                    and conjunct.op == "=" \
                    and isinstance(conjunct.left, ex.ColumnRef) \
                    and isinstance(conjunct.right, ex.ColumnRef):
                pairs.add(frozenset({
                    (conjunct.left.alias, conjunct.left.column),
                    (conjunct.right.alias, conjunct.right.column)}))

    for node in plan.walk():
        if isinstance(node, ph.HashJoin):
            for bk, pk in zip(node.build_keys, node.probe_keys):
                pairs.add(frozenset({(bk.alias, bk.column),
                                     (pk.alias, pk.column)}))
            from_predicate(node.residual)
        elif isinstance(node, ph.NestedLoopsJoin):
            from_predicate(node.condition)
        elif isinstance(node, ph.Filter):
            from_predicate(node.predicate)
        elif isinstance(node, ph.TableScan):
            from_predicate(node.predicate)
    return pairs


SEEDS = range(8)


@pytest.mark.parametrize("enumerator", ENUMERATOR_NAMES)
def test_enumerators_emit_valid_join_trees(enumerator):
    """Each relation exactly once; every join predicate applied."""
    for seed in SEEDS:
        catalog, sql, joins, n = random_join_graph(seed)
        result = result_for(catalog, sql, enumerator)
        scans = [node for node in result.plan.walk()
                 if isinstance(node, ph.TableScan)]
        assert sorted(scan.alias for scan in scans) \
            == [f"a{i}" for i in range(n)], \
            f"seed {seed} [{enumerator}]: relations scanned wrong"
        applied = equality_pairs(result.plan)
        for la, lc, ra, rc in joins:
            assert frozenset({(la, lc), (ra, rc)}) in applied, \
                f"seed {seed} [{enumerator}]: dropped {la}.{lc}={ra}.{rc}"


@pytest.mark.parametrize("enumerator", ENUMERATOR_NAMES)
def test_enumerators_are_deterministic(enumerator):
    """Fixed seed, fixed plan: costs, bytes and step streams match."""
    for seed in SEEDS:
        catalog, sql, _, _ = random_join_graph(seed)
        first = task_for(catalog, sql, enumerator)
        second = task_for(catalog, sql, enumerator)
        trace = [(s.phase, s.work_units, s.alloc_bytes, s.cpu_seconds)
                 for s in first.steps()]
        assert trace == [
            (s.phase, s.work_units, s.alloc_bytes, s.cpu_seconds)
            for s in second.steps()]
        assert first.result.cost == second.result.cost
        assert first.result.memo_bytes == second.result.memo_bytes
        assert first.result.plan.describe() \
            == second.result.plan.describe()


def test_ues_bound_never_undercuts_memo_optimum():
    """The UES pessimistic bound caps the memo search's actual cost."""
    for seed in SEEDS:
        catalog, sql, _, _ = random_join_graph(seed)
        memo = result_for(catalog, sql, "memo")
        task = task_for(catalog, sql, "ues")
        for _ in task.steps():
            pass
        assert task.cost_upper_bound is not None
        assert task.cost_upper_bound >= memo.cost, \
            f"seed {seed}: bound {task.cost_upper_bound} < " \
            f"memo optimum {memo.cost}"
        # the bound also caps the greedy plan's own estimated cost
        assert task.cost_upper_bound >= task.result.cost


def test_heuristic_selection_builds_on_smaller_side(star_catalog,
                                                    star_query):
    """The heuristic selector keeps the small-build invariant without
    ever pricing the mirrored join order."""
    opt = Optimizer(star_catalog,
                    spec=OptimizerSpec(selection="heuristic"))
    bound = Binder(star_catalog).bind(parse(star_query))
    result = opt.optimize(bound)
    for join in result.plan.walk():
        if isinstance(join, ph.HashJoin):
            assert (join.build.estimates.bytes
                    <= join.probe.estimates.bytes * 1.01)
    assert not any(isinstance(node, ph.StreamAggregate)
                   for node in result.plan.walk())


def test_padded_parameterization_inflates_memory(star_catalog,
                                                 star_query):
    bound = Binder(star_catalog).bind(parse(star_query))
    plain = Optimizer(star_catalog).optimize(bound)
    bound = Binder(star_catalog).bind(parse(star_query))
    padded = Optimizer(
        star_catalog,
        spec=OptimizerSpec(parameterization="padded")).optimize(bound)
    assert padded.plan.total_memory() \
        == pytest.approx(plain.plan.total_memory() * 1.25)


# ----------------------------------------------------- spec plumbing
def test_optimizer_spec_round_trips():
    for spec in (OptimizerSpec(),
                 OptimizerSpec(precheck="none", enumerator="ues",
                               selection="heuristic",
                               parameterization="padded")):
        doc = spec.to_dict()
        assert set(doc) == set(STAGE_CHOICES)
        assert OptimizerSpec.from_dict(doc) == spec
        assert OptimizerSpec.from_dict(
            json.loads(json.dumps(doc))) == spec


def test_unknown_strategy_names_list_the_valid_ones():
    cases = (
        ({"precheck": "strict"}, PRECHECK_NAMES),
        ({"enumerator": "dp"}, ENUMERATOR_NAMES),
        ({"selection": "random"}, SELECTION_NAMES),
        ({"parameterization": "exact"}, PARAMETERIZATION_NAMES),
    )
    for kwargs, valid in cases:
        with pytest.raises(ConfigurationError) as err:
            OptimizerSpec(**kwargs)
        for name in valid:
            assert name in str(err.value)


def test_from_dict_rejects_unknown_stages():
    with pytest.raises(ConfigurationError) as err:
        OptimizerSpec.from_dict({"rewrite": "none"})
    for stage in STAGE_CHOICES:
        assert stage in str(err.value)


def test_registries_cover_every_declared_strategy():
    """Every name the spec validates against resolves to a strategy
    whose ``name`` matches its registry key."""
    for names, registry in ((PRECHECK_NAMES, PRECHECKS),
                            (ENUMERATOR_NAMES, ENUMERATORS),
                            (SELECTION_NAMES, SELECTIONS),
                            (PARAMETERIZATION_NAMES, PARAMETERIZATIONS)):
        assert set(names) == set(registry)
        for name, strategy_cls in registry.items():
            strategy = strategy_cls()
            assert strategy.name == name
            assert not hasattr(strategy, "__dict__")  # __slots__ only
            assert strategy_cls.__doc__


def test_pipeline_resolves_spec_strategies():
    pipeline = OptimizerPipeline(OptimizerSpec(enumerator="ues",
                                               selection="heuristic"))
    assert pipeline.enumerator.name == "ues"
    assert pipeline.selection.name == "heuristic"
    assert pipeline.precheck.name == "basic"
    assert pipeline.parameterization.name == "estimates"
    assert OptimizerPipeline().spec == OptimizerSpec()


def test_cell_task_carries_the_optimizer_axis():
    """The stream executor's wire form round-trips both spec levels."""
    spec = ScenarioSpec(
        scenario_id="wire", title="Wire", family="test",
        workload="sales", clients=2,
        optimizer=OptimizerSpec(enumerator="ues"),
        variants=(
            VariantSpec("memo", optimizer=OptimizerSpec()),
            VariantSpec("default"),
        ))
    task = CellTask(cell=ShardCell("wire", "memo", 3), spec=spec)
    doc = json.loads(json.dumps(task.to_doc()))
    rebuilt = CellTask.from_doc(doc)
    assert rebuilt.spec == spec
    assert rebuilt.spec.optimizer == OptimizerSpec(enumerator="ues")
    assert rebuilt.spec.variants[0].optimizer == OptimizerSpec()
    assert rebuilt.spec.variants[1].optimizer is None
