"""Docs checks: commands parse, flags exist, links resolve.

The lightweight runner behind the `docs` CI job.  It extracts every
``repro …`` / ``python -m repro …`` line from fenced code blocks in
``docs/*.md`` and ``README.md`` and verifies it parses against the
real argument parser (`--help`-level verification: no scenario is
executed), it checks that every ``--flag`` the docs mention anywhere
(prose included) is a flag some ``repro`` subcommand actually accepts,
and it checks that every relative markdown link points at a file that
exists.  Documentation that drifts from the CLI fails CI.
"""

import argparse
import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

FENCE = re.compile(r"```.*?\n(.*?)```", re.DOTALL)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG = re.compile(r"--[a-zA-Z][a-zA-Z0-9-]*")

#: long options mentioned in docs that belong to other tools we
#: document invoking (add here deliberately, never to paper over a
#: renamed repro flag)
FOREIGN_FLAGS: frozenset = frozenset()


def fenced_blocks(text: str):
    return [match.group(1) for match in FENCE.finditer(text)]


def repro_commands(path: Path):
    """Every ``repro``/``python -m repro`` command line in code blocks,
    with shell continuations joined and ``$`` prompts stripped."""
    commands = []
    for block in fenced_blocks(path.read_text(encoding="utf-8")):
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line.startswith("$ "):
                line = line[2:]
            for prefix in ("python -m repro ", "repro "):
                if line.startswith(prefix):
                    commands.append(line[len(prefix):])
                    break
    return commands


def test_docs_exist():
    for name in ("architecture.md", "scenarios.md", "sharding.md",
                 "cli.md", "executors.md", "operations.md",
                 "results.md", "traffic.md", "kernel.md",
                 "admission.md", "optimizer.md"):
        assert (REPO / "docs" / name).is_file(), name
    assert DOC_FILES, "no documentation files found"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documented_commands_parse(path):
    """Every documented `repro` invocation must parse cleanly."""
    commands = repro_commands(path)
    if path.name in ("cli.md", "sharding.md", "executors.md",
                     "operations.md", "results.md", "traffic.md"):
        assert commands, f"{path.name} documents no repro commands"
    parser = build_parser()
    for command in commands:
        argv = shlex.split(command, comments=True)
        try:
            parser.parse_args(argv)
        except SystemExit as exc:  # argparse reports errors via exit(2)
            pytest.fail(f"{path.name}: `repro {command}` does not "
                        f"parse (exit {exc.code})")


def parser_flags(parser=None) -> set:
    """Every long option any (sub)command accepts, walked recursively."""
    parser = parser or build_parser()
    flags = set()
    stack = [parser]
    while stack:
        current = stack.pop()
        for action in current._actions:
            flags.update(option for option in action.option_strings
                         if option.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return flags


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documented_flags_exist(path):
    """Every `--flag` the docs mention — in prose or code — must be
    accepted by some repro subcommand.  A flag renamed or removed in
    the CLI fails here instead of lingering as stale documentation."""
    known = parser_flags() | FOREIGN_FLAGS
    text = path.read_text(encoding="utf-8")
    stale = sorted({flag for flag in FLAG.findall(text)
                    if flag not in known})
    assert not stale, (
        f"{path.name} references flag(s) no repro command accepts: "
        f"{', '.join(stale)}")


def test_cli_reference_covers_every_subcommand():
    """docs/cli.md must document every top-level subcommand, including
    each member of the `shards` family."""
    text = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
    for command in ("scenarios list", "scenarios describe",
                    "scenarios run", "shards plan", "shards run",
                    "shards merge", "workers serve", "workers join",
                    "figure", "sweep", "ablation",
                    "experiments", "query", "monitors",
                    "results load", "results query", "results diff",
                    "results trend", "results radar",
                    "traces validate", "traces summarize",
                    "traces synth", "traces capture"):
        assert f"repro {command}" in text, f"cli.md misses {command!r}"


def test_results_doc_version_claims_match_code():
    """Every version number docs/results.md claims must be the one the
    code exports, and the schema-history appendix must cover every
    artifact schema that ever existed.  A bumped constant without a
    matching doc edit fails here."""
    from repro.experiments.engine import ARTIFACT_SCHEMA
    from repro.results.radar import DEFAULT_REGRESSION_THRESHOLD
    from repro.results.warehouse import WAREHOUSE_SCHEMA
    from repro.scenarios.spec import SPEC_FORMAT_VERSION

    text = (REPO / "docs" / "results.md").read_text(encoding="utf-8")
    for name, current in (("artifact schema", ARTIFACT_SCHEMA),
                          ("spec format version", SPEC_FORMAT_VERSION),
                          ("warehouse schema", WAREHOUSE_SCHEMA)):
        claims = re.findall(
            rf"current {name} is \*\*(\d+)\*\*", text)
        assert claims, f"results.md never states the current {name}"
        assert all(int(claim) == current for claim in claims), (
            f"results.md claims the current {name} is "
            f"{claims}, code says {current}")
    threshold = int(round(DEFAULT_REGRESSION_THRESHOLD * 100))
    assert f"default regression threshold is **{threshold}%**" in text, (
        "results.md's threshold claim does not match "
        "DEFAULT_REGRESSION_THRESHOLD")
    for schema in range(1, ARTIFACT_SCHEMA + 1):
        assert f"### Schema {schema}" in text, (
            f"results.md appendix misses artifact schema {schema}")


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    """Relative markdown links must point at files that exist."""
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), \
            f"{path.name}: broken link -> {match.group(1)}"
