"""Tests for the admission-control subsystem.

Fast tests cover the declarative axes (``AdmissionSpec`` / ``SloSpec``
validation and JSON round trips, minimal version stamping), the SLO
evaluator, policy dispatch (including the pinned all-unit-weights
degeneration to FIFO), capture-trace plumbing (``CellTask`` wire form,
outcome vocabulary consistency) and the ``slo.*`` metric namespace.
The sim tests pin the acceptance contracts: a ``fifo`` policy is
byte-identical to an admission-free run, all-unit ``weighted_fair``
is byte-identical to ``fifo`` on both kernels and through a stream
executor, a captured trace replays to the originating run's canonical
artifact byte for byte, and the registered ``fairness-noisy`` scenario
demonstrates the victim tenant's p90 recovering under
``weighted_fair``.
"""

import json
import threading
from dataclasses import replace

import pytest

from repro.admission import (
    ADMITTED_OUTCOMES,
    AdmissionSpec,
    DROPPED_OUTCOMES,
    FifoPolicy,
    OUTCOME_NAMES,
    SloSpec,
    SloTarget,
    TenantQuotaPolicy,
    TokenBucketPolicy,
    WeightedFairPolicy,
    evaluate_slo,
    make_policy,
)
from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments.engine import summarize_result
from repro.experiments.executors import CellTask, tasks_for_specs
from repro.experiments.runner import (
    ExperimentConfig,
    make_workload,
    run_experiment,
)
from repro.experiments.shards import ShardCell, canonical_document
from repro.scenarios import (
    Expectation,
    ScenarioSpec,
    TrafficSpec,
    VariantSpec,
    get_scenario,
    metrics_from_summary,
    run_scenario,
    write_scenario_artifact,
)
from repro.server import DatabaseServer
from repro.sim import Environment
from repro.traffic import (
    TRACE_OUTCOMES,
    OpenLoopGenerator,
    read_trace,
    summarize_trace,
)

from helpers import canonical_text


# ------------------------------------------------------ admission spec
def test_admission_spec_canonicalizes_and_roundtrips():
    spec = AdmissionSpec(policy="weighted_fair",
                         weights={"b": 2.0, "a": 3.0})
    # mappings freeze to sorted pairs so specs hash and compare
    assert spec.weights == (("a", 3.0), ("b", 2.0))
    assert spec.weights_dict() == {"a": 3.0, "b": 2.0}
    rebuilt = AdmissionSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert hash(rebuilt) == hash(spec)
    # defaults are omitted from the document form
    assert AdmissionSpec().to_dict() == {"policy": "fifo"}
    bucket = AdmissionSpec(policy="token_bucket", rate=0.5, burst=3.0)
    assert bucket.to_dict() == {"policy": "token_bucket", "rate": 0.5,
                                "burst": 3.0}
    assert AdmissionSpec.from_dict(bucket.to_dict()) == bucket


def test_admission_spec_rejects_misapplied_fields():
    with pytest.raises(ConfigurationError, match="weights"):
        AdmissionSpec(policy="fifo", weights={"a": 2.0})
    with pytest.raises(ConfigurationError, match="queue_limits"):
        AdmissionSpec(policy="weighted_fair", queue_limits={"a": 1})
    with pytest.raises(ConfigurationError, match="rate"):
        AdmissionSpec(policy="fifo", rate=1.0)
    with pytest.raises(ConfigurationError, match="valid policies"):
        AdmissionSpec(policy="lifo")
    with pytest.raises(ConfigurationError, match="requires a positive"):
        AdmissionSpec(policy="token_bucket")
    with pytest.raises(ConfigurationError, match="burst"):
        AdmissionSpec(policy="token_bucket", rate=1.0, burst=0.5)
    with pytest.raises(ConfigurationError, match="positive"):
        AdmissionSpec(policy="weighted_fair", weights={"a": 0.0})
    with pytest.raises(ConfigurationError, match="max_in_flight"):
        AdmissionSpec(policy="tenant_quota", max_in_flight={"a": 0})
    with pytest.raises(ConfigurationError, match="unknown admission field"):
        AdmissionSpec.from_dict({"policy": "fifo", "shares": {}})
    with pytest.raises(ConfigurationError, match="JSON object"):
        AdmissionSpec.from_dict(["fifo"])


def test_slo_target_validation_and_keys():
    aggregate = SloTarget(metric="sojourn", percentile="p99", max_value=90.0)
    assert aggregate.key == "sojourn_p99"
    scoped = SloTarget(metric="queue_wait", percentile="p90",
                       max_value=30.0, tenant="steady")
    assert scoped.key == "tenant.steady.queue_wait_p90"
    assert SloTarget.from_dict(scoped.to_dict()) == scoped
    with pytest.raises(ConfigurationError, match="valid metrics"):
        SloTarget(metric="latency", percentile="p90", max_value=1.0)
    with pytest.raises(ConfigurationError, match="valid percentiles"):
        SloTarget(metric="sojourn", percentile="p95", max_value=1.0)
    with pytest.raises(ConfigurationError, match="max_value"):
        SloTarget(metric="sojourn", percentile="p90", max_value=0.0)
    # the fact block only breaks queue waits down per tenant
    with pytest.raises(ConfigurationError, match="per-tenant"):
        SloTarget(metric="sojourn", percentile="p90", max_value=1.0,
                  tenant="a")
    with pytest.raises(ConfigurationError, match="non-empty"):
        SloTarget(metric="queue_wait", percentile="p90", max_value=1.0,
                  tenant="")


def test_slo_spec_coerces_and_rejects_duplicates():
    spec = SloSpec(targets=(
        {"metric": "queue_wait", "percentile": "p90", "max_value": 30.0},
        SloTarget(metric="queue_wait", percentile="p90", max_value=10.0,
                  tenant="a"),
    ))
    assert all(isinstance(t, SloTarget) for t in spec.targets)
    assert SloSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
    with pytest.raises(ConfigurationError, match="at least one"):
        SloSpec()
    with pytest.raises(ConfigurationError, match="duplicate"):
        SloSpec(targets=(
            SloTarget(metric="sojourn", percentile="max", max_value=5.0),
            SloTarget(metric="sojourn", percentile="max", max_value=9.0),
        ))
    with pytest.raises(ConfigurationError, match="valid field"):
        SloSpec.from_dict({"objectives": []})


def test_evaluate_slo_reads_facts_and_counts_violations():
    spec = SloSpec(targets=(
        SloTarget(metric="queue_wait", percentile="p90", max_value=30.0),
        SloTarget(metric="sojourn", percentile="p99", max_value=60.0),
        SloTarget(metric="queue_wait", percentile="p50", max_value=5.0,
                  tenant="ghost"),
    ))
    facts = {"queue_wait_p90": 12.0, "sojourn_p99": 61.5}
    out = evaluate_slo(spec, facts)
    assert out["queue_wait_p90.observed"] == 12.0
    assert out["queue_wait_p90.target"] == 30.0
    assert out["queue_wait_p90.ok"] == 1.0
    assert out["sojourn_p99.ok"] == 0.0
    # a missing fact cannot certify the objective: no observed, not ok
    assert "tenant.ghost.queue_wait_p50.observed" not in out
    assert out["tenant.ghost.queue_wait_p50.ok"] == 0.0
    assert out["violations"] == 2.0
    assert out["ok"] == 0.0
    clean = evaluate_slo(SloSpec(targets=(spec.targets[0],)), facts)
    assert clean["ok"] == 1.0 and clean["violations"] == 0.0


# ------------------------------------------------------ policy dispatch
def test_make_policy_dispatch_and_unit_weight_degeneration():
    env = Environment()
    assert isinstance(make_policy(None, env, 2, 4), FifoPolicy)
    assert isinstance(
        make_policy(AdmissionSpec(), env, 2, 4), FifoPolicy)
    # all-unit weights carry no differentiation: pinned FIFO degeneration
    equal = AdmissionSpec(policy="weighted_fair",
                          weights={"a": 1.0, "b": 1.0})
    assert isinstance(make_policy(equal, env, 2, 4), FifoPolicy)
    assert isinstance(
        make_policy(AdmissionSpec(policy="weighted_fair"), env, 2, 4),
        FifoPolicy)
    skewed = make_policy(
        AdmissionSpec(policy="weighted_fair", weights={"a": 4.0}),
        env, 2, 4)
    assert isinstance(skewed, WeightedFairPolicy)
    quota = make_policy(
        AdmissionSpec(policy="tenant_quota", max_in_flight={"a": 1}),
        env, 2, 4)
    assert isinstance(quota, TenantQuotaPolicy)
    bucket = make_policy(
        AdmissionSpec(policy="token_bucket", rate=0.5), env, 2, 4)
    assert isinstance(bucket, TokenBucketPolicy)
    assert bucket.burst == 1.0


def test_weighted_fair_grants_by_start_tags():
    env = Environment()
    policy = WeightedFairPolicy(env, capacity=1, queue_limit=8,
                                weights={"heavy": 4.0, "light": 1.0})
    hog = policy.request("heavy")          # takes the single slot
    assert hog.granted
    queued = [policy.request("light"),     # tag 0.0
              policy.request("heavy"),     # tag 0.25
              policy.request("light"),     # tag 1.0
              policy.request("heavy")]     # tag 0.5
    # light's claims advance its finish tag by 1/1 per claim, heavy's
    # by only 1/4 — so heavy's later arrivals overtake light's second
    # claim, light's first keeps its tag-0 head start
    order = []
    policy.release(hog)
    while policy.users:
        claim = policy.users[0]
        order.append(queued.index(claim))
        policy.release(claim)
    assert order == [0, 1, 3, 2]


def test_tenant_quota_skips_capped_tenants():
    env = Environment()
    policy = TenantQuotaPolicy(env, capacity=2, queue_limit=8,
                               queue_limits={"a": 1},
                               max_in_flight={"a": 1})
    first = policy.request("a")
    assert first.granted
    # a is at its in-flight cap: its next claim queues, b's sails past
    second = policy.request("a")
    assert not second.granted
    third = policy.request("b")
    assert third.granted
    # one queued claim for a is its queue_limits cap; b is uncapped
    assert policy.would_drop("a")
    assert not policy.would_drop("b")
    policy.release(first)
    assert second.granted


def test_token_bucket_drops_without_tokens():
    env = Environment()
    policy = TokenBucketPolicy(env, capacity=4, queue_limit=4,
                               rate=0.0, burst=2.0)
    assert not policy.would_drop("a")
    policy.request("a")
    policy.request("a")
    # bucket drained and refill rate is zero: drop on arrival even
    # though slots remain free
    assert policy.tokens == 0.0
    assert policy.would_drop("a")


def test_trace_outcome_vocabulary_matches_capture():
    # trace.py validates outcomes against its own tuple so the reader
    # has no capture dependency; the two vocabularies must not drift
    assert set(TRACE_OUTCOMES) == set(OUTCOME_NAMES.values())
    assert ADMITTED_OUTCOMES | DROPPED_OUTCOMES | {"queued"} \
        == set(OUTCOME_NAMES.values())


# ------------------------------------------------- spec axis + plumbing
_DEFAULT_TRAFFIC = TrafficSpec(
    arrivals="tenant_mix",
    params={"tenants": {
        "a": {"process": "poisson", "rate": 0.02},
        "b": {"process": "poisson", "rate": 0.004},
    }},
    max_sessions=2, queue_limit=2, queue_timeout=60.0)


def open_spec(scenario_id, admission=None, slo=None, variants=None,
              traffic=_DEFAULT_TRAFFIC, **overrides):
    variants = variants or (VariantSpec("run"),)
    defaults = dict(
        scenario_id=scenario_id, title="Admission test", family="test",
        workload="oltp", clients=4, preset="smoke", seed=5,
        traffic=traffic, admission=admission, slo=slo,
        variants=variants,
        expect=(Expectation("openloop.offered", ">", 0,
                            variant=variants[0].name),))
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def test_admission_axis_stamps_version_minimally():
    assert open_spec("plain").to_dict()["version"] == 3
    doc = open_spec("fifo", admission=AdmissionSpec()).to_dict()
    assert doc["version"] == 5
    assert doc["admission"] == {"policy": "fifo"}
    slo = SloSpec(targets=(
        SloTarget(metric="queue_wait", percentile="p90", max_value=9.0),))
    assert open_spec("slo", slo=slo).to_dict()["version"] == 5
    varied = open_spec("var", variants=(
        VariantSpec("fifo"),
        VariantSpec("wf", admission=AdmissionSpec(
            policy="weighted_fair", weights={"a": 2.0}))))
    doc = varied.to_dict()
    assert doc["version"] == 5
    rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(doc)))
    assert rebuilt == varied


def test_admission_axis_requires_traffic():
    with pytest.raises(ConfigurationError, match="traffic"):
        open_spec("bare", admission=AdmissionSpec(), traffic=None,
                  expect=())
    with pytest.raises(ConfigurationError, match="traffic"):
        open_spec("bare-slo", traffic=None, expect=(), slo=SloSpec(
            targets=(SloTarget(metric="sojourn", percentile="p90",
                               max_value=9.0),)))


def test_cell_task_capture_wire_form():
    spec = open_spec("wire/cap")
    task = CellTask(cell=ShardCell("wire/cap", "run", 5), spec=spec,
                    capture="traces")
    assert task.trace_path().endswith("TRACE_wire_cap_run_5.jsonl")
    doc = json.loads(json.dumps(task.to_doc()))
    assert doc["capture"] == "traces"
    rebuilt = CellTask.from_doc(doc)
    assert rebuilt.capture == "traces"
    assert rebuilt.trace_path() == task.trace_path()
    bare = CellTask(cell=ShardCell("wire/cap", "run", 5), spec=spec)
    assert bare.trace_path() is None
    assert "capture" not in bare.to_doc()
    tasks = tasks_for_specs([spec], capture="out")
    assert all(t.capture == "out" for t in tasks)


def test_metrics_from_summary_surfaces_slo_namespace():
    summary = {
        "completed": 3, "failed": 0, "degraded": 0, "retries": 0,
        "mean_per_bucket": 1.0, "mean_compile_time": 0.1,
        "mean_execution_time": 0.2, "search_replays": 0,
        "soft_denials": 0, "wall_seconds": 0.0, "error_counts": {},
        "open_loop": {"offered": 4.0},
        "slo": {"queue_wait_p90.ok": 1.0, "ok": 1.0, "violations": 0.0},
    }
    metrics = metrics_from_summary(summary)
    assert metrics["slo.queue_wait_p90.ok"] == 1.0
    assert metrics["slo.ok"] == 1.0
    assert metrics["slo.violations"] == 0.0
    assert metrics["openloop.offered"] == 4.0


# ---------------------------------------------------------- sim pins
def generator_run(traffic, admission=None, capture=False, seed=5,
                  duration=2400.0):
    workload = make_workload("oltp")
    server = DatabaseServer(paper_server_config(), workload.build_catalog())
    generator = OpenLoopGenerator(server, workload, traffic=traffic,
                                  duration=duration, seed=seed,
                                  clients=4, admission=admission,
                                  capture=capture)
    generator.run()
    return generator


def test_zero_drop_tenants_pin_explicit_dropped_facts():
    """Satellite pins: zero-drop tenants still publish an explicit
    ``tenant.<name>.dropped = 0.0`` fact, and the fact block carries
    the p99 queue wait, sojourn percentiles and per-tenant queue-wait
    percentiles."""
    traffic = TrafficSpec(
        arrivals="tenant_mix",
        params={"tenants": {
            "a": {"process": "poisson", "rate": 0.01},
            "b": {"process": "poisson", "rate": 0.005},
        }},
        max_sessions=8)
    generator = generator_run(traffic)
    facts = generator.facts()
    assert facts["dropped"] == 0.0
    for tenant in ("a", "b"):
        assert facts[f"tenant.{tenant}.offered"] > 0
        assert facts[f"tenant.{tenant}.dropped"] == 0.0
    assert {"queue_wait_p99", "sojourn_p50", "sojourn_p90", "sojourn_p99",
            "sojourn_max"} <= set(facts)
    assert {"tenant.a.queue_wait_p50", "tenant.a.queue_wait_p90",
            "tenant.a.queue_wait_p99"} <= set(facts)


def canonical_json(summary) -> str:
    return json.dumps(canonical_document(summary), sort_keys=True)


def contended_traffic(**overrides):
    params = dict(
        arrivals="tenant_mix",
        params={"tenants": {
            "a": {"process": "poisson", "rate": 0.03},
            "b": {"process": "poisson", "rate": 0.006},
        }},
        max_sessions=1, queue_limit=1, queue_timeout=30.0)
    params.update(overrides)
    return TrafficSpec(**params)


@pytest.mark.slow
def test_fifo_policy_is_byte_identical_to_admission_free():
    """Acceptance pin: an explicit ``fifo`` policy reproduces the
    admission-free run byte for byte — the only delta is the config
    document naming the policy."""
    config = ExperimentConfig(workload="oltp", clients=4, preset="smoke",
                              seed=5, traffic=contended_traffic())
    bare = summarize_result(run_experiment(config))
    fifo = summarize_result(run_experiment(
        replace(config, admission=AdmissionSpec())))
    assert fifo["config"].pop("admission") == {"policy": "fifo"}
    assert canonical_json(fifo) == canonical_json(bare)
    assert bare["open_loop"]["dropped"] > 0  # the run was contended


@pytest.mark.slow
@pytest.mark.parametrize("kernel", ["legacy", "wheel"])
def test_equal_weights_byte_identical_to_fifo(kernel):
    """Satellite pin: all-unit ``weighted_fair`` weights degenerate to
    ``fifo`` byte-identically, on both scheduler kernels."""
    config = ExperimentConfig(
        workload="oltp", clients=4, preset="smoke", seed=5,
        kernel=kernel, traffic=contended_traffic(),
        admission=AdmissionSpec())
    fifo = summarize_result(run_experiment(config))
    equal = summarize_result(run_experiment(replace(
        config, admission=AdmissionSpec(
            policy="weighted_fair", weights={"a": 1.0, "b": 1.0}))))
    fifo["config"].pop("admission")
    equal["config"].pop("admission")
    assert canonical_json(equal) == canonical_json(fifo)


@pytest.mark.slow
def test_equal_weights_scenario_identical_across_executors(tmp_path):
    """The scenario-level half of the satellite pin: the equal-weights
    artifact through inline and stream executors is byte-identical to
    the ``fifo`` artifact once the policy stamp is stripped."""
    from repro.experiments.executors import InlineExecutor, StreamExecutor
    from repro.experiments.wire import run_worker

    equal = AdmissionSpec(policy="weighted_fair",
                          weights={"a": 1.0, "b": 1.0})
    spec = open_spec("adm-equiv", admission=equal)

    inline_dir = tmp_path / "inline"
    write_scenario_artifact(
        str(inline_dir), run_scenario(spec, executor=InlineExecutor()))

    stream_dir = tmp_path / "stream"
    stream = StreamExecutor(timeout=300)
    address = stream.start()
    thread = threading.Thread(target=run_worker, args=address, daemon=True)
    thread.start()
    try:
        result = run_scenario(spec, executor=stream)
        write_scenario_artifact(str(stream_dir), result)
    finally:
        stream.close()
    thread.join(timeout=10)

    assert result.ok, result.render()
    name = "BENCH_scenario_adm-equiv.json"
    assert canonical_text(inline_dir / name) \
        == canonical_text(stream_dir / name)

    fifo_dir = tmp_path / "fifo"
    write_scenario_artifact(str(fifo_dir), run_scenario(
        open_spec("adm-equiv", admission=AdmissionSpec())))

    def strip_policy(path):
        doc = json.loads(canonical_text(path))
        doc["spec"].pop("admission")
        for summary in doc["results"].values():
            summary["config"].pop("admission")
        return json.dumps(doc, sort_keys=True)

    assert strip_policy(inline_dir / name) == strip_policy(fifo_dir / name)


@pytest.mark.slow
def test_capture_replays_byte_identically(tmp_path):
    """Acceptance pin: a captured trace replayed through ``read_trace``
    reproduces the originating run's canonical artifact byte for byte —
    the config's traffic stanza is the only delta."""
    trace = str(tmp_path / "capture.jsonl")
    config = ExperimentConfig(workload="oltp", clients=4, preset="smoke",
                              seed=5, traffic=contended_traffic(),
                              capture_trace=trace)
    original = summarize_result(run_experiment(config))
    assert original["open_loop"]["dropped"] > 0

    events = list(read_trace(trace))
    assert len(events) == int(original["open_loop"]["offered"])
    # synthetic arrivals stay template-free so replay re-draws the
    # identical queries from the per-index RNG; outcomes are recorded
    assert all(e.template is None for e in events)
    assert all(e.outcome in TRACE_OUTCOMES for e in events)

    replayed = summarize_result(run_experiment(replace(
        config, capture_trace=None,
        traffic=TrafficSpec(trace=trace, max_sessions=1, queue_limit=1,
                            queue_timeout=30.0))))
    assert original["config"].pop("traffic") \
        != replayed["config"].pop("traffic")
    assert canonical_json(replayed) == canonical_json(original)

    # the capture summarizes into the per-tenant admission table
    summary = summarize_trace(trace)
    outcomes = summary["tenant_outcomes"]
    assert set(outcomes) == {"a", "b"}
    for tenant, row in outcomes.items():
        assert row["offered"] == summary["tenants"][tenant]
        assert row["admitted"] + row["dropped"] <= row["offered"]
    dropped = sum(row["dropped"] for row in outcomes.values())
    assert dropped == int(original["open_loop"]["dropped"])


@pytest.mark.slow
def test_fairness_scenario_recovers_victim_tenant():
    """The registered ``fairness-noisy`` scenario holds all its pins:
    identical offered load across variants, the steady tenant's p90
    queue wait recovering under ``weighted_fair``, and the SLO verdict
    flipping from violated (fifo) to met (weighted_fair)."""
    result = run_scenario(get_scenario("fairness-noisy"))
    assert result.ok, result.render()
    fifo = result.variant_metrics["fifo"]
    fair = result.variant_metrics["weighted_fair"]
    assert fifo["openloop.offered"] == fair["openloop.offered"]
    victim_key = "slo.tenant.steady.queue_wait_p90.observed"
    assert fair[victim_key] < fifo[victim_key]
    assert fifo["slo.violations"] > 0
    assert fair["slo.ok"] == 1.0


def test_closed_loop_capture_writes_submission_trace(tmp_path):
    """Closed-loop runs capture too: submission-order events with
    outcomes, validated by ``read_trace`` (a what-if replay source,
    not a byte-identity pin)."""
    trace = str(tmp_path / "closed.jsonl")
    config = ExperimentConfig(workload="oltp", clients=2, preset="smoke",
                              seed=1, think_time=5.0, capture_trace=trace)
    result = run_experiment(config)
    events = list(read_trace(trace))
    assert len(events) > 0
    assert all(e.template is not None for e in events)
    # queries still in flight when the sim clock runs out carry no
    # outcome; everything resolved is a success or a failure
    assert all(e.outcome in ("succeeded", "failed", None) for e in events)
    assert sum(e.outcome == "succeeded" for e in events) \
        >= result.completed
    assert [e.at for e in events] == sorted(e.at for e in events)
