"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import parse
from repro.sql import ast


def test_simple_select():
    stmt = parse("SELECT a FROM t")
    assert len(stmt.items) == 1
    assert stmt.from_tables == [ast.TableRef("t", None)]
    assert stmt.where is None


def test_select_with_aliases():
    stmt = parse("SELECT t.a AS x, t.b y FROM tab t")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"
    assert stmt.from_tables[0].effective_alias == "t"


def test_comma_join_and_where():
    stmt = parse("SELECT a.x FROM a, b WHERE a.id = b.id AND a.v > 5")
    assert len(stmt.from_tables) == 2
    assert isinstance(stmt.where, ast.BinaryOp)
    assert stmt.where.op == "and"


def test_explicit_joins():
    stmt = parse(
        "SELECT a.x FROM a JOIN b ON a.id = b.id "
        "INNER JOIN c ON b.id = c.id")
    assert len(stmt.joins) == 2
    assert stmt.joins[1].table.table == "c"


def test_cross_join():
    stmt = parse("SELECT a.x FROM a CROSS JOIN b")
    assert stmt.joins[0].condition is None


def test_between_and_group_order():
    stmt = parse(
        "SELECT a, SUM(b) AS s FROM t WHERE c BETWEEN 1 AND 10 "
        "GROUP BY a ORDER BY s DESC")
    assert isinstance(stmt.where, ast.BetweenOp)
    assert len(stmt.group_by) == 1
    assert stmt.order_by[0].descending


def test_aggregates_parse():
    stmt = parse("SELECT COUNT(*), SUM(a * b), AVG(c), MIN(d), MAX(e) FROM t")
    first = stmt.items[0].expr
    assert isinstance(first, ast.FuncCall) and first.name == "count"
    assert isinstance(first.args[0], ast.Star)
    second = stmt.items[1].expr
    assert isinstance(second.args[0], ast.BinaryOp)
    assert second.args[0].op == "*"


def test_count_distinct():
    stmt = parse("SELECT COUNT(DISTINCT a) FROM t")
    assert stmt.items[0].expr.distinct


def test_operator_precedence_or_lowest():
    stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
    assert stmt.where.op == "or"
    assert stmt.where.right.op == "and"


def test_arithmetic_precedence():
    stmt = parse("SELECT a + b * c FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parentheses_override():
    stmt = parse("SELECT (a + b) * c FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_limit_and_top():
    assert parse("SELECT a FROM t LIMIT 5").limit == 5
    assert parse("SELECT TOP 7 a FROM t").limit == 7


def test_trailing_semicolon_ok():
    parse("SELECT a FROM t;")


@pytest.mark.parametrize("bad", [
    "SELECT",
    "SELECT a",
    "SELECT a FROM",
    "SELECT a FROM t WHERE",
    "SELECT a FROM t GROUP a",
    "SELECT a FROM t extra garbage",
    "FROM t SELECT a",
    "SELECT a FROM t JOIN b",  # missing ON
])
def test_syntax_errors(bad):
    with pytest.raises(SqlSyntaxError):
        parse(bad)


def test_comments_are_transparent():
    a = parse("SELECT a FROM t WHERE x = 5")
    b = parse("/* adhoc ff001 */ SELECT a FROM t WHERE x = 5")
    assert a.items == b.items
    assert a.where == b.where
