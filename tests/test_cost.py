"""Tests for the cost model."""

import pytest

from repro.optimizer.cost import CostModel, CostParameters
from repro.units import GiB, MiB


@pytest.fixture
def cm():
    return CostModel()


def test_scan_cost_scales_with_fraction(cm):
    full = cm.scan_cost(10 * GiB, 1.0, 1000)
    half = cm.scan_cost(10 * GiB, 0.5, 1000)
    assert half < full
    assert half == pytest.approx(full / 2, rel=0.01)


def test_scan_cost_io_dominated_for_big_tables(cm):
    cost = cm.scan_cost(32 * GiB, 1.0, 1000)
    io_only = 32 * GiB / cm.params.scan_bandwidth
    assert cost == pytest.approx(io_only, rel=0.01)


def test_hash_join_cost_monotone_in_inputs(cm):
    small = cm.hash_join_cost(1000, 10_000, 5_000)
    bigger = cm.hash_join_cost(10_000, 10_000, 5_000)
    assert bigger > small


def test_hash_join_memory_overhead(cm):
    assert cm.hash_join_memory(100 * MiB) == pytest.approx(
        100 * MiB * cm.params.hash_memory_factor)


def test_nl_join_quadratic(cm):
    base = cm.nl_join_cost(100, 100, 10)
    scaled = cm.nl_join_cost(1000, 100, 10)
    assert scaled > 9 * base


def test_sort_cost_superlinear(cm):
    assert cm.sort_cost(2_000_000) > 2 * cm.sort_cost(1_000_000)
    assert cm.sort_cost(0) >= 0


def test_memory_pressure_cost_positive_and_linear(cm):
    one = cm.memory_pressure_cost(100 * MiB)
    two = cm.memory_pressure_cost(200 * MiB)
    assert one > 0
    assert two == pytest.approx(2 * one)


def test_hash_agg_and_stream_agg(cm):
    hash_cost = cm.hash_agg_cost(1_000_000, 100)
    stream_cost = cm.stream_agg_cost(1_000_000)
    assert hash_cost > stream_cost  # hashing costs more than streaming
    assert cm.hash_agg_memory(1000, 50.0) == pytest.approx(
        1000 * 50.0 * cm.params.hash_memory_factor)


def test_custom_parameters():
    cm = CostModel(CostParameters(cpu_per_row=1.0))
    assert cm.project_cost(100) == pytest.approx(25.0)
    assert cm.filter_cost(100) == pytest.approx(50.0)
