"""Tests for the declarative scenario API.

Covers spec round-tripping, validation, the registry, lowering to
engine jobs, expectation evaluation, the CLI subcommands and (slow) a
smoke run of every registered scenario plus legacy/scenario CLI
byte-identity.
"""

import json

import pytest

from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    config_with_best_plan,
    config_with_dynamic,
    config_with_gateways,
)
from repro.scenarios import (
    ConfigOverrides,
    Expectation,
    ScenarioSpec,
    VariantSpec,
    get_scenario,
    jobs_for_scenario,
    list_scenarios,
    load_scenario_file,
    register_scenario,
    run_scenario,
    scenario_families,
    scenario_ids,
    unregister_scenario,
)
from repro.admission import AdmissionSpec
from repro.optimizer.spec import OptimizerSpec
from repro.scenarios.facade import evaluate_expectations
from repro.traffic.spec import TrafficSpec
from repro import cli


def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        scenario_id="tiny",
        title="Tiny test scenario",
        family="test",
        workload="oltp",
        clients=2,
        preset="smoke",
        seed=1,
        think_time=5.0,
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
        expect=(Expectation("completed", ">", 0, variant="throttled"),),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ------------------------------------------------------------ the spec
def test_spec_roundtrips_through_dict():
    spec = tiny_spec(workload_params={"scale": 0.5})
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    # and through actual JSON text
    assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) \
        == spec


def test_spec_format_versioning():
    from repro.scenarios import SPEC_FORMAT_VERSION

    spec = tiny_spec()
    doc = spec.to_dict()
    # documents are stamped with the *minimal* version able to read
    # them (only the optimizer axis needs the current version 6; the
    # admission/slo axes need 5; a non-default kernel needs 4; the
    # traffic axis needs 3) ...
    assert doc["version"] == spec.document_version() == 2
    assert SPEC_FORMAT_VERSION == 6
    traffic = TrafficSpec(arrivals="poisson", params={"rate": 0.01})
    assert tiny_spec(traffic=traffic).document_version() == 3
    assert tiny_spec(kernel="wheel").document_version() == 4
    assert tiny_spec(
        traffic=traffic,
        admission=AdmissionSpec(policy="token_bucket", rate=1.0, burst=4.0),
    ).document_version() == 5
    assert tiny_spec(optimizer=OptimizerSpec()).document_version() == 6
    assert tiny_spec(variants=(
        VariantSpec("a"),
        VariantSpec("b", optimizer=OptimizerSpec(enumerator="ues")),
    ), expect=()).document_version() == 6
    # ... pre-versioning documents (no version key) still parse ...
    unversioned = dict(doc)
    del unversioned["version"]
    assert ScenarioSpec.from_dict(unversioned) == spec
    # ... and future or malformed versions are rejected loudly
    with pytest.raises(ConfigurationError, match="not supported"):
        ScenarioSpec.from_dict({**doc, "version": SPEC_FORMAT_VERSION + 1})
    with pytest.raises(ConfigurationError, match="integer"):
        ScenarioSpec.from_dict({**doc, "version": "one"})


def test_every_registered_scenario_roundtrips():
    for spec in list_scenarios():
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec, \
            spec.scenario_id


def test_spec_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError, match="valid presets"):
        tiny_spec(preset="warp-speed")
    with pytest.raises(ConfigurationError, match="valid workloads"):
        tiny_spec(workload="nope")
    with pytest.raises(ConfigurationError, match="duplicate variant"):
        tiny_spec(variants=(VariantSpec("a"), VariantSpec("a")))
    with pytest.raises(ConfigurationError, match="unknown variant"):
        tiny_spec(expect=(Expectation("completed", ">", 0,
                                      variant="missing"),))
    with pytest.raises(ConfigurationError, match="valid ops"):
        Expectation("completed", "~", 0)
    with pytest.raises(ConfigurationError, match="must be a number"):
        Expectation("completed", ">", "10")
    with pytest.raises(ConfigurationError, match="bad parameters"):
        tiny_spec(workload_params={"bogus_param": 1})
    with pytest.raises(ConfigurationError, match="bad parameters"):
        tiny_spec(workload="mixed",
                  workload_params={"tpch_fraction": 2.0})
    with pytest.raises(ConfigurationError, match="kind"):
        tiny_spec(kind="interpretive-dance")
    # variants only vary experiment configs; monitors/trace scenarios
    # are single units of work (one shard cell each)
    with pytest.raises(ConfigurationError, match="exactly one variant"):
        tiny_spec(kind="monitors", expect=())
    with pytest.raises(ConfigurationError, match="unknown scenario field"):
        ScenarioSpec.from_dict({"scenario_id": "x", "title": "x",
                                "family": "x", "bogus": 1})


def test_spec_customized_applies_overrides():
    spec = tiny_spec()
    custom = spec.customized(preset="scaled", seed=42, clients=7)
    assert (custom.preset, custom.seed, custom.clients) == ("scaled", 42, 7)
    # per-variant client counts yield to an explicit override
    sweep = tiny_spec(variants=(VariantSpec("a", clients=5),
                                VariantSpec("b", clients=9)),
                      expect=())
    clamped = sweep.customized(clients=2)
    for job in jobs_for_scenario(clamped):
        assert job.config.clients == 2
    # no overrides = the same spec
    assert spec.customized() == spec


def test_spec_customized_optimizer_override():
    """``--optimizer`` swaps the enumerator for every variant."""
    spec = tiny_spec(variants=(
        VariantSpec("memo", optimizer=OptimizerSpec()),
        VariantSpec("plain"),
    ), expect=())
    custom = spec.customized(optimizer="ues")
    assert custom.optimizer == OptimizerSpec(enumerator="ues")
    assert all(v.optimizer is None for v in custom.variants)
    for job in jobs_for_scenario(custom):
        assert job.config.optimizer.enumerator == "ues"
    # the override composes with a scenario-level spec, keeping its
    # other stages
    heur = tiny_spec(optimizer=OptimizerSpec(selection="heuristic"))
    assert heur.customized(optimizer="ues").optimizer \
        == OptimizerSpec(enumerator="ues", selection="heuristic")


def test_overrides_match_legacy_ablation_configs():
    """ConfigOverrides.apply must produce exactly the ServerConfigs the
    legacy ablation helpers built — that is what keeps scenario runs
    byte-identical to the legacy commands."""
    for count in (0, 1, 2, 3):
        assert ConfigOverrides(gateway_count=count).apply() \
            == config_with_gateways(count)
    for dynamic in (False, True):
        assert ConfigOverrides(dynamic_thresholds=dynamic).apply() \
            == config_with_dynamic(dynamic)
    for enabled in (False, True):
        assert ConfigOverrides(best_plan_so_far=enabled).apply() \
            == config_with_best_plan(enabled)


def test_overrides_hardware_and_broker():
    cfg = ConfigOverrides(physical_memory=1 << 30, cpus=4,
                          broker_enabled=False).apply()
    assert cfg.hardware.physical_memory == 1 << 30
    assert cfg.hardware.cpus == 4
    assert not cfg.broker.enabled
    assert ConfigOverrides().apply() == paper_server_config()


# ------------------------------------------------------------ registry
def test_registry_rejects_duplicate_ids():
    spec = tiny_spec(scenario_id="test-dup")
    register_scenario(spec)
    try:
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(tiny_spec(scenario_id="test-dup"))
    finally:
        unregister_scenario("test-dup")


def test_registry_catalogue_is_complete():
    ids = scenario_ids()
    # every paper artifact is a registered scenario ...
    for required in ("fig1", "fig2", "fig3", "fig4", "fig5",
                     "abl-gates", "abl-dyn", "abl-bpsf", "saturation"):
        assert required in ids
    # ... plus at least three scenario families the seed never had
    families = scenario_families()
    for new_family in ("mixed", "memory", "ladder"):
        assert new_family in families
    for spec in list_scenarios():
        assert spec.scenario_id == get_scenario(spec.scenario_id).scenario_id


def test_unknown_scenario_lists_registered_ids():
    with pytest.raises(ConfigurationError, match="fig3"):
        get_scenario("nope")


# ------------------------------------------------------------ lowering
def test_jobs_for_scenario_lowering():
    jobs = jobs_for_scenario(tiny_spec(), prefix="t_")
    assert [j.name for j in jobs] == ["t_throttled", "t_unthrottled"]
    assert jobs[0].config.throttling and not jobs[1].config.throttling
    # throttling-only variants need no ServerConfig override object
    assert jobs[0].config.server_overrides is None
    rich = jobs_for_scenario(tiny_spec(variants=(
        VariantSpec("small", ConfigOverrides(gateway_count=1)),),
        expect=()))
    assert rich[0].config.server_overrides is not None
    with pytest.raises(ConfigurationError, match="monitors"):
        jobs_for_scenario(get_scenario("fig1"))


# -------------------------------------------------------- expectations
def test_expectation_evaluation():
    spec = tiny_spec(expect=(
        Expectation("completed", ">", 10, variant="throttled"),
        Expectation("errors.compile_oom", "==", 0, variant="throttled"),
        Expectation("improvement", ">=", 0.5),
        Expectation("completed", ">", 0, variant="unthrottled"),
    ))
    variant_metrics = {"throttled": {"completed": 30.0}}
    scenario_metrics = {"improvement": 0.4}
    checks = evaluate_expectations(spec, variant_metrics, scenario_metrics)
    assert [c.passed for c in checks] == [True, True, False, False]
    # absent error kinds read as zero; absent variants fail the check
    assert checks[1].actual == 0.0
    assert checks[3].actual is None
    assert "FAIL" in checks[2].describe()
    assert "PASS" in checks[0].describe()


def test_cross_variant_expectations():
    """`than_variant` compares the same metric between two variants."""
    spec = tiny_spec(expect=(
        Expectation("failed", "<", variant="throttled",
                    than_variant="unthrottled"),
        Expectation("errors.compile_oom", "<=", variant="throttled",
                    than_variant="unthrottled"),
        Expectation("completed", ">", variant="unthrottled",
                    than_variant="throttled"),
    ))
    variant_metrics = {
        "throttled": {"completed": 30.0, "failed": 2.0},
        "unthrottled": {"completed": 25.0, "failed": 9.0},
    }
    checks = evaluate_expectations(spec, variant_metrics, {})
    assert [c.passed for c in checks] == [True, True, False]
    # absent error kinds read as zero on both sides
    assert checks[1].actual == 0.0 and checks[1].reference == 0.0
    assert checks[0].reference == 9.0
    assert "throttled.failed < unthrottled.failed" in checks[0].describe()
    assert "(actual 2 vs 9)" in checks[0].describe()
    # a missing reference variant fails the check instead of raising
    partial = evaluate_expectations(spec, {"throttled": {"failed": 1.0}},
                                    {})
    assert not partial[0].passed and partial[0].reference is None


def test_cross_variant_expectation_validation():
    ok = Expectation("failed", "<", variant="a", than_variant="b")
    assert ok.value is None
    assert Expectation.from_dict(ok.to_dict()) == ok
    assert ok.to_dict() == {"metric": "failed", "op": "<",
                            "variant": "a", "than_variant": "b"}
    with pytest.raises(ConfigurationError, match="not both"):
        Expectation("failed", "<", 3, variant="a", than_variant="b")
    with pytest.raises(ConfigurationError, match="needs a variant"):
        Expectation("failed", "<", than_variant="b")
    with pytest.raises(ConfigurationError, match="itself"):
        Expectation("failed", "<", variant="a", than_variant="a")
    with pytest.raises(ConfigurationError, match="unknown variant"):
        tiny_spec(expect=(Expectation("failed", "<", variant="throttled",
                                      than_variant="missing"),))
    # a plain expectation still requires a numeric value
    with pytest.raises(ConfigurationError, match="must be a number"):
        Expectation("failed", "<", None, variant="a")


def test_cross_variant_checks_survive_the_artifact_path(tmp_path):
    """The shard-merge rebuild evaluates cross-variant checks on the
    same numbers and records the reference in the artifact."""
    from repro.scenarios import rebuild_scenario_payload

    spec = tiny_spec(expect=(
        Expectation("completed", "==", variant="throttled",
                    than_variant="unthrottled"),))
    summary = {
        "completed": 10, "failed": 0, "error_counts": {}, "degraded": 0,
        "retries": 0, "search_replays": 0, "soft_denials": 0,
        "mean_per_bucket": 1.0, "mean_compile_time": 0.1,
        "mean_execution_time": 0.2, "memory_by_clerk": {},
        "gateway_stats": [], "throughput": [], "wall_seconds": 0.5,
    }
    payload = rebuild_scenario_payload(
        spec, wall_seconds=1.0, errors={},
        results={"throttled": dict(summary),
                 "unthrottled": dict(summary)})
    assert payload["ok"]
    check = payload["checks"][0]
    assert check["passed"] and check["reference"] == 10.0
    assert check["expectation"]["than_variant"] == "unthrottled"


def test_scenario_level_error_metrics_aggregate_across_variants():
    from repro.scenarios.facade import _aggregate_metrics

    spec = tiny_spec(expect=())
    aggregate = _aggregate_metrics(spec, {
        "throttled": {"completed": 10.0, "errors.compile_oom": 3.0},
        "unthrottled": {"completed": 5.0, "errors.compile_oom": 7.0,
                        "errors.gateway_timeout": 1.0},
    })
    assert aggregate["errors.compile_oom"] == 10.0
    assert aggregate["errors.gateway_timeout"] == 1.0
    # a scenario-level errors check now sees real totals, not a
    # silently-passing zero default
    checks = evaluate_expectations(
        tiny_spec(expect=(Expectation("errors.compile_oom", "==", 0),)),
        {}, aggregate)
    assert not checks[0].passed


def test_scenario_artifact_serializes_non_finite_metrics(tmp_path):
    from repro.scenarios import write_scenario_artifact
    from repro.scenarios.facade import ScenarioResult

    result = ScenarioResult(spec=tiny_spec(expect=()), batch=None,
                            scenario_metrics={"improvement": float("inf")})
    path = write_scenario_artifact(str(tmp_path), result)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    assert "Infinity" not in text
    assert json.loads(text)["scenario_metrics"]["improvement"] == "inf"


# ----------------------------------------------------------------- CLI
def test_cli_scenarios_list_and_describe(capsys):
    assert cli.main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    for scenario_id in ("fig3", "mixed-rush", "mem-ramp", "ladder-load"):
        assert scenario_id in out

    assert cli.main(["scenarios", "list", "--family", "mixed"]) == 0
    out = capsys.readouterr().out
    assert "mixed-rush" in out and "fig3" not in out

    assert cli.main(["scenarios", "describe", "fig3"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert ScenarioSpec.from_dict(doc) == get_scenario("fig3")


def test_cli_error_handling(capsys):
    assert cli.main(["scenarios", "describe", "nope"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "fig3" in err
    assert cli.main(["scenarios", "run"]) == 2
    err = capsys.readouterr().err
    assert "nothing to run" in err
    assert cli.main(["scenarios", "run", "--family", "nope"]) == 2
    err = capsys.readouterr().err
    assert "mixed" in err


def test_cli_describe_scenario_file(tmp_path, capsys):
    """`scenarios describe --scenario FILE` validates the file: unknown
    top-level keys are rejected with the valid ones listed, exactly
    like the workload/preset errors."""
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"scenario_id": "u", "title": "U",
                                "family": "user", "workload": "oltp",
                                "clients": 2}), encoding="utf-8")
    assert cli.main(["scenarios", "describe",
                     "--scenario", str(good)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["scenario_id"] == "u" and "version" in doc

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"scenario_id": "u", "title": "U",
                               "family": "user", "bogus": 1,
                               "extra": 2}), encoding="utf-8")
    assert cli.main(["scenarios", "describe",
                     "--scenario", str(bad)]) == 2
    err = capsys.readouterr().err
    # the error names the offenders and teaches the valid keys
    assert "bogus" in err and "extra" in err and "workload" in err

    # exactly one of <id> / --scenario
    assert cli.main(["scenarios", "describe"]) == 2
    assert "exactly one" in capsys.readouterr().err
    assert cli.main(["scenarios", "describe", "fig3",
                     "--scenario", str(good)]) == 2
    assert "exactly one" in capsys.readouterr().err


def test_cli_rejects_bad_scenario_file(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    assert cli.main(["scenarios", "run", "--scenario", str(path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err

    path = tmp_path / "bad_field.json"
    path.write_text(json.dumps({"scenario_id": "x", "title": "x",
                                "family": "x", "bogus": 1}),
                    encoding="utf-8")
    assert cli.main(["scenarios", "run", "--scenario", str(path)]) == 2
    assert "bogus" in capsys.readouterr().err


def test_cli_monitors_scenario(capsys):
    assert cli.main(["scenarios", "run", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "small" in out and "big" in out


# ------------------------------------------------------------ running
@pytest.mark.slow
def test_run_scenario_from_json_file(tmp_path):
    doc = {
        "scenario_id": "user-tiny",
        "title": "User-authored tiny scenario",
        "family": "user",
        "workload": "oltp",
        "clients": 2,
        "preset": "smoke",
        "seed": 1,
        "think_time": 5.0,
        "variants": [
            {"name": "run", "overrides": {"throttling": True}},
        ],
        "expect": [{"metric": "completed", "op": ">", "value": 0,
                    "variant": "run"}],
    }
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(doc), encoding="utf-8")
    spec = load_scenario_file(str(path))
    result = run_scenario(spec)
    assert result.ok
    assert result.batch.ok
    assert result.variant_metrics["run"]["completed"] > 0
    assert all(check.passed for check in result.checks)
    assert "check PASS" in result.render()


@pytest.mark.slow
def test_scenario_artifact_roundtrips(tmp_path):
    from repro.scenarios import write_scenario_artifact

    from repro.experiments.engine import ARTIFACT_SCHEMA

    result = run_scenario(tiny_spec())
    path = write_scenario_artifact(str(tmp_path), result)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["schema"] == ARTIFACT_SCHEMA
    assert ScenarioSpec.from_dict(doc["spec"]) == tiny_spec()
    assert set(doc["results"]) == {"throttled", "unthrottled"}
    assert doc["results"]["throttled"]["completed"] > 0


@pytest.mark.slow
def test_every_registered_scenario_smoke_runs():
    """Every catalogue entry must at least run under the smoke preset.

    Client counts (and, for the scale family, traffic populations) are
    clamped so the sweep stays test-sized; the registered counts run
    nightly at paper fidelity and in the scale-smoke lane.
    """
    from helpers import shrunk_spec

    for spec in list_scenarios():
        runnable = shrunk_spec(spec)
        result = run_scenario(runnable)
        assert result.body, spec.scenario_id
        if result.batch is not None:
            assert result.batch.ok, \
                f"{spec.scenario_id}: {result.batch.errors}"
            assert set(result.batch.results) == set(spec.variant_names())


@pytest.mark.slow
def test_legacy_cli_is_byte_identical_to_scenarios_run(capsys):
    """`repro ablation dynamic` and `repro scenarios run abl-dyn` are
    the same spec through the same facade — identical output bytes."""
    assert cli.main(["ablation", "dynamic", "--clients", "2",
                     "--preset", "smoke", "--seed", "3"]) == 0
    legacy = capsys.readouterr().out
    assert cli.main(["scenarios", "run", "abl-dyn", "--clients", "2",
                     "--preset", "smoke", "--seed", "3"]) == 0
    scenarios = capsys.readouterr().out
    assert legacy == scenarios
    assert "abl-dyn" in legacy
