"""Tests for the disk model, page map and buffer pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HardwareConfig
from repro.errors import CatalogError
from repro.memory import MemoryManager
from repro.sim import Environment
from repro.storage import BufferPool, CHUNK_SIZE, ChunkRange, DiskModel, PageMap
from repro.units import GiB, MiB
from tests.conftest import drain


# ------------------------------------------------------------------ pagemap
def test_pagemap_layout_is_contiguous():
    pm = PageMap()
    a = pm.add_table("a", 10 * CHUNK_SIZE)
    b = pm.add_table("b", 1)  # tiny table still gets one chunk
    assert (a.start, a.stop) == (0, 10)
    assert (b.start, b.stop) == (10, 11)
    assert pm.total_chunks == 11
    assert pm.range_of("a") == a


def test_pagemap_rejects_duplicates_and_unknown():
    pm = PageMap()
    pm.add_table("a", CHUNK_SIZE)
    with pytest.raises(CatalogError):
        pm.add_table("a", CHUNK_SIZE)
    with pytest.raises(CatalogError):
        pm.range_of("zzz")


def test_chunk_range_slice():
    crange = ChunkRange(100, 200)
    window = crange.slice(0.5, 0.1)
    assert window.start == 150
    assert len(window) == 10
    # clamped at the end
    tail = crange.slice(0.99, 0.5)
    assert tail.stop == 200
    assert len(tail) >= 1


def test_chunk_range_slice_empty_fraction_gives_one_chunk():
    crange = ChunkRange(0, 50)
    window = crange.slice(0.0, 0.0)
    assert len(window) == 1


@given(offset=st.floats(min_value=0, max_value=1),
       length=st.floats(min_value=0, max_value=1))
def test_chunk_range_slice_always_within_parent(offset, length):
    crange = ChunkRange(10, 60)
    window = crange.slice(offset, length)
    assert 10 <= window.start <= window.stop <= 60


# ------------------------------------------------------------------ disk
def make_disk(env, disks=2, bandwidth=100 * MiB):
    hw = HardwareConfig(disks=disks, disk_bandwidth=bandwidth,
                        disk_seek_time=0.01)
    return DiskModel(env, hw)


def test_disk_service_time(env):
    disk = make_disk(env)
    t = disk.service_time(100 * MiB)
    assert t == pytest.approx(0.01 + 1.0)


def test_disk_read_takes_service_time(env):
    disk = make_disk(env)

    def reader(env):
        elapsed = yield from disk.read(100 * MiB)
        return elapsed

    p = env.process(reader(env))
    assert drain(env, p) == pytest.approx(1.01)
    assert disk.stats.requests == 1
    assert disk.stats.bytes_read == 100 * MiB


def test_disk_queues_when_channels_busy(env):
    disk = make_disk(env, disks=1)
    done = []

    def reader(env, name):
        yield from disk.read(100 * MiB)
        done.append((name, env.now))

    env.process(reader(env, "a"))
    env.process(reader(env, "b"))
    env.run()
    assert done[0][1] == pytest.approx(1.01)
    assert done[1][1] == pytest.approx(2.02)
    assert disk.stats.queue_wait == pytest.approx(1.01)


def test_disk_parallel_channels(env):
    disk = make_disk(env, disks=2)
    done = []

    def reader(env):
        yield from disk.read(100 * MiB)
        done.append(env.now)

    env.process(reader(env))
    env.process(reader(env))
    env.run()
    assert done == [pytest.approx(1.01), pytest.approx(1.01)]


# ------------------------------------------------------------------ pool
def make_pool(env, physical=64 * CHUNK_SIZE, floor=2 * CHUNK_SIZE):
    manager = MemoryManager(physical)
    disk = make_disk(env, disks=4)
    pool = BufferPool(env, manager, disk, floor_bytes=floor)
    return manager, pool


def test_pool_miss_then_hit(env):
    manager, pool = make_pool(env)
    crange = ChunkRange(0, 4)

    def reader(env):
        first = yield from pool.read_range(crange)
        second = yield from pool.read_range(crange)
        return first, second

    p = env.process(reader(env))
    first, second = drain(env, p)
    assert first.misses == 4 and first.hits == 0
    assert second.hits == 4 and second.misses == 0
    assert second.io_time == 0.0
    assert pool.size_bytes == 4 * CHUNK_SIZE


def test_pool_lru_eviction_order(env):
    manager, pool = make_pool(env, physical=4 * CHUNK_SIZE, floor=0)

    def reader(env):
        for chunk in range(4):                          # fill the pool
            yield from pool.read_range(ChunkRange(chunk, chunk + 1))
        yield from pool.read_range(ChunkRange(0, 1))   # touch chunk 0
        yield from pool.read_range(ChunkRange(10, 11))  # evicts chunk 1
        result = yield from pool.read_range(ChunkRange(0, 1))
        return result

    p = env.process(reader(env))
    result = drain(env, p)
    assert result.hits == 1  # chunk 0 survived; chunk 1 was the victim
    assert pool.evictions >= 1


def test_pool_shrink_respects_floor(env):
    manager, pool = make_pool(env, floor=3 * CHUNK_SIZE)
    pool.warm(ChunkRange(0, 8))
    freed = pool.shrink(100 * CHUNK_SIZE)
    assert pool.size_bytes == 3 * CHUNK_SIZE
    assert freed == 5 * CHUNK_SIZE


def test_pool_shrink_ignores_floor_when_told(env):
    manager, pool = make_pool(env, floor=3 * CHUNK_SIZE)
    pool.warm(ChunkRange(0, 8))
    pool.shrink(100 * CHUNK_SIZE, respect_floor=False)
    assert pool.size_bytes == 0


def test_pool_target_caps_growth(env):
    manager, pool = make_pool(env)
    pool.set_target(2 * CHUNK_SIZE)

    def reader(env):
        yield from pool.read_range(ChunkRange(0, 6))

    env.process(reader(env))
    env.run()
    assert pool.size_bytes <= 2 * CHUNK_SIZE


def test_pool_set_target_shrinks_immediately(env):
    manager, pool = make_pool(env)
    pool.warm(ChunkRange(0, 10))
    pool.set_target(4 * CHUNK_SIZE)
    assert pool.size_bytes <= 4 * CHUNK_SIZE


def test_pool_scan_resistance_bypasses_huge_scans(env):
    """A scan larger than half the attainable pool must not evict the
    resident working set."""
    manager, pool = make_pool(env, physical=8 * CHUNK_SIZE, floor=0)
    pool.warm(ChunkRange(0, 3))
    resident_before = pool.resident_chunks

    def reader(env):
        yield from pool.read_range(ChunkRange(100, 140))  # 40 chunks

    env.process(reader(env))
    env.run()
    assert pool.resident_chunks == resident_before


def test_pool_manager_reclaim_steals_pages(env):
    manager, pool = make_pool(env, physical=10 * CHUNK_SIZE,
                              floor=1 * CHUNK_SIZE)
    pool.warm(ChunkRange(0, 10))
    other = manager.clerk("compilation")
    other.allocate(4 * CHUNK_SIZE)  # forces the pool to donate
    assert pool.size_bytes <= 6 * CHUNK_SIZE
    assert other.used == 4 * CHUNK_SIZE


def test_pool_hit_rate(env):
    manager, pool = make_pool(env)

    def reader(env):
        yield from pool.read_range(ChunkRange(0, 2))
        yield from pool.read_range(ChunkRange(0, 2))

    env.process(reader(env))
    env.run()
    assert pool.hit_rate() == pytest.approx(0.5)
