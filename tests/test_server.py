"""Integration tests: the whole server, end to end."""

import random

import pytest

from repro.config import paper_server_config
from repro.server import DatabaseServer
from repro.workload import LoadGenerator, OltpWorkload, SalesWorkload
from tests.conftest import build_star_catalog, STAR_QUERY


def make_server(throttling=True, time_scale=1.0):
    config = paper_server_config(throttling=throttling)
    if time_scale != 1.0:
        config = config.scaled(time_scale)
    return DatabaseServer(config, build_star_catalog())


def test_single_query_end_to_end():
    server = make_server()
    outcome = server.execute_sync(STAR_QUERY)
    assert outcome.ok, outcome.error_message
    assert outcome.compile_time > 0
    assert outcome.execution_time > 0
    assert not outcome.cached_plan
    assert outcome.output_rows > 0


def test_dmv_summary_surfaces_pipeline_counters():
    """Scenario assertions read search_replays/soft_denials from the
    DMV summary; the rendered report carries them too."""
    server = make_server()
    server.execute_sync(STAR_QUERY)
    summary = server.views().summary()
    for counter in ("search_replays", "soft_denials",
                    "degraded_plans", "active_compilations"):
        assert counter in summary
    report = server.views().report()
    assert "search replays" in report
    assert "soft denials" in report


def test_dmv_snapshot_is_json_ready():
    """snapshot() must serialize as-is and mirror the individual views."""
    import json

    server = make_server()
    server.execute_sync(STAR_QUERY)
    snapshot = server.views().snapshot()
    round_tripped = json.loads(json.dumps(snapshot))
    assert set(round_tripped) == {"summary", "memory_clerks",
                                  "memory_gateways", "grant_queue",
                                  "compilations"}
    assert round_tripped["summary"] == server.views().summary()
    clerk_names = {row["name"] for row in round_tripped["memory_clerks"]}
    assert "compilation" in clerk_names
    assert len(round_tripped["memory_gateways"]) == 3


def test_plan_cache_hit_on_repeat():
    server = make_server()
    first = server.execute_sync(STAR_QUERY)
    second = server.execute_sync(STAR_QUERY)
    assert first.ok and second.ok
    assert not first.cached_plan
    assert second.cached_plan
    assert second.compile_time == 0.0
    assert server.plan_cache.hits == 1


def test_uniquified_text_misses_cache():
    server = make_server()
    a = server.execute_sync(f"/* adhoc 1 */ {STAR_QUERY}")
    b = server.execute_sync(f"/* adhoc 2 */ {STAR_QUERY}")
    assert a.ok and b.ok
    assert not b.cached_plan


def test_failed_query_returns_outcome_not_exception():
    server = make_server()
    outcome = server.execute_sync("SELECT broken FROM nowhere")
    assert not outcome.ok
    assert outcome.error_kind == "bind_error"


def test_concurrent_queries_all_complete():
    server = make_server()
    server.start()
    rng = random.Random(5)
    processes = []
    for i in range(6):
        text = f"/* adhoc {rng.random()} */ {STAR_QUERY}"
        processes.append(server.submit(text, label=f"c{i}"))
    server.env.run(until=4000.0)
    outcomes = [p.value for p in processes if not p.is_alive]
    assert len(outcomes) == 6
    assert all(o.ok for o in outcomes)


def test_time_scale_speeds_up_wall_clock():
    slow = make_server(time_scale=1.0)
    fast = make_server(time_scale=10.0)
    a = slow.execute_sync(STAR_QUERY)
    b = fast.execute_sync(STAR_QUERY)
    assert a.ok and b.ok
    # same work, ten times less simulated time
    ratio = (a.compile_time + a.execution_time) / max(
        1e-9, b.compile_time + b.execution_time)
    assert ratio == pytest.approx(10.0, rel=0.2)


def test_throttling_disabled_keeps_gateways_idle():
    server = make_server(throttling=False)
    outcome = server.execute_sync(STAR_QUERY)
    assert outcome.ok
    assert all(g.stats.acquires == 0 for g in server.governor.gateways)


def test_load_generator_drives_server():
    workload = OltpWorkload(scale=0.01)
    config = paper_server_config(throttling=True)
    server = DatabaseServer(config, workload.build_catalog())
    generator = LoadGenerator(server, workload, clients=4, duration=600.0,
                              seed=9, think_time=5.0)
    generator.run()
    totals = generator.totals()
    assert totals.submitted > 10
    assert totals.succeeded > 0
    # at most one in-flight query per client when the clock stops
    in_flight = totals.submitted - (totals.succeeded + totals.failed)
    assert 0 <= in_flight <= 4
    assert server.metrics.successes() == totals.succeeded


def test_oltp_queries_stay_below_medium_gateway():
    """OLTP compiles belong to the small category (paper §4.1)."""
    workload = OltpWorkload(scale=0.01)
    server = DatabaseServer(paper_server_config(True),
                            workload.build_catalog())
    generator = LoadGenerator(server, workload, clients=4, duration=400.0,
                              seed=3, think_time=5.0)
    generator.run()
    assert server.metrics.successes() > 0
    medium, big = server.governor.gateways[1:]
    assert medium.stats.acquires == 0
    assert big.stats.acquires == 0


def test_memory_sampler_populates_metrics():
    server = make_server()
    server.start()
    server.submit(STAR_QUERY)
    server.env.run(until=100.0)
    assert "compilation" in server.metrics.memory
    assert len(server.metrics.total_memory) > 0
