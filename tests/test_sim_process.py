"""Unit tests for generator processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt
from tests.conftest import drain


def test_process_returns_value(env):
    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    assert drain(env, p) == "done"
    assert env.now == 2.0


def test_process_sequential_timeouts(env):
    times = []

    def proc(env):
        for delay in (1, 2, 3):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0, 6.0]


def test_process_waits_on_process(env):
    def inner(env):
        yield env.timeout(5)
        return 21

    def outer(env):
        value = yield env.process(inner(env))
        return value * 2

    p = env.process(outer(env))
    assert drain(env, p) == 42


def test_exception_propagates_to_waiter(env):
    def failing(env):
        yield env.timeout(1)
        raise RuntimeError("inner boom")

    def waiter(env, target):
        try:
            yield target
        except RuntimeError as exc:
            return f"caught {exc}"

    target = env.process(failing(env))
    p = env.process(waiter(env, target))
    assert drain(env, p) == "caught inner boom"


def test_unhandled_process_failure_raises_from_run(env):
    def failing(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(failing(env))
    with pytest.raises(RuntimeError):
        env.run()


def test_interrupt_wakes_process_early(env):
    def sleeper(env):
        try:
            yield env.timeout(100)
            return "overslept"
        except Interrupt as interrupt:
            return ("interrupted", env.now, interrupt.cause)

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("interrupted", 3.0, "wake up")


def test_interrupt_finished_process_rejected(env):
    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_yielding_non_event_fails(env):
    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_process_needs_generator(env):
    with pytest.raises(SimulationError):
        env.process(lambda: None)


def test_process_waiting_on_already_processed_event(env):
    timeout = env.timeout(1)

    def late(env):
        yield env.timeout(5)
        value = yield timeout  # long since processed
        return value

    def proc_value(env):
        p = env.process(late(env))
        got = yield p
        return got

    p = env.process(proc_value(env))
    env.run()
    assert p.value is None  # timeout's default value
    assert env.now == 5.0


def test_is_alive_lifecycle(env):
    def proc(env):
        yield env.timeout(2)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive
