"""Tests for the cooperative CPU scheduler."""

import pytest

from repro.config import HardwareConfig
from repro.server.scheduler import CpuScheduler
from tests.conftest import drain


def make_scheduler(env, cpus=2, speed=1.0, time_scale=1.0):
    hw = HardwareConfig(cpus=cpus, cpu_speed=speed)
    return CpuScheduler(env, hw, time_scale=time_scale)


def test_single_task_runs_at_full_speed(env):
    sched = make_scheduler(env, cpus=1)

    def worker(env):
        yield from sched.consume(5.0)
        return env.now

    p = env.process(worker(env))
    assert drain(env, p) == pytest.approx(5.0)
    assert sched.stats.busy_time == pytest.approx(5.0)


def test_contention_stretches_elapsed_time(env):
    sched = make_scheduler(env, cpus=1)
    finish = {}

    def worker(env, name):
        yield from sched.consume(3.0)
        finish[name] = env.now

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    # two tasks share one CPU: both take about twice as long
    assert max(finish.values()) == pytest.approx(6.0)
    assert min(finish.values()) >= 5.0


def test_parallel_cpus_no_contention(env):
    sched = make_scheduler(env, cpus=2)
    finish = []

    def worker(env):
        yield from sched.consume(3.0)
        finish.append(env.now)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    assert finish == [pytest.approx(3.0), pytest.approx(3.0)]


def test_cpu_speed_scales_work(env):
    sched = make_scheduler(env, cpus=1, speed=2.0)

    def worker(env):
        yield from sched.consume(10.0)
        return env.now

    p = env.process(worker(env))
    assert drain(env, p) == pytest.approx(5.0)


def test_time_scale_compresses_wall_time(env):
    sched = make_scheduler(env, cpus=1, time_scale=10.0)

    def worker(env):
        yield from sched.consume(10.0)
        return env.now

    p = env.process(worker(env))
    assert drain(env, p) == pytest.approx(1.0)
    # busy accounting stays in work units
    assert sched.stats.busy_time == pytest.approx(10.0)


def test_zero_work_is_instant(env):
    sched = make_scheduler(env)

    def worker(env):
        yield from sched.consume(0.0)
        return env.now

    p = env.process(worker(env))
    assert drain(env, p) == 0.0


def test_runnable_counts_queued_tasks(env):
    sched = make_scheduler(env, cpus=1)
    seen = []

    def worker(env):
        yield from sched.consume(2.0)

    def observer(env):
        yield env.timeout(0.5)
        seen.append(sched.runnable)

    for _ in range(3):
        env.process(worker(env))
    env.process(observer(env))
    env.run()
    assert seen[0] >= 1
