"""Tests for the compilation pipeline (throttled compile process)."""

import pytest

from repro.config import paper_server_config
from repro.errors import CompileOutOfMemoryError, GatewayTimeoutError
from repro.server import DatabaseServer
from repro.units import MiB
from tests.conftest import build_star_catalog, STAR_QUERY


def make_server(throttling=True, physical=None, **kwargs):
    config = paper_server_config(throttling=throttling)
    if physical is not None:
        from dataclasses import replace
        config = replace(config,
                         hardware=replace(config.hardware,
                                          physical_memory=physical))
    return DatabaseServer(config, build_star_catalog())


def test_compile_produces_plan_and_frees_memory(env):
    server = make_server()

    def run(env):
        compiled = yield from server.pipeline.compile(STAR_QUERY, "q1")
        return compiled

    p = server.env.process(run(server.env))
    server.env.run()
    compiled = p.value
    assert compiled.plan is not None
    assert compiled.peak_memory > 0
    assert compiled.compile_time > 0
    assert not compiled.degraded
    # "At the end of compilation, memory used in the process is freed"
    assert server.compile_clerk.used == 0
    assert server.pipeline.active == 0
    assert not server.pipeline.live_accounts


def test_compile_acquires_gateways_when_large(env):
    server = make_server()

    def run(env):
        yield from server.pipeline.compile(STAR_QUERY, "q1")

    server.env.process(run(server.env))
    server.env.run()
    small = server.governor.gateways[0]
    # the star query is past the small threshold
    assert small.stats.acquires >= 1
    assert small.active == 0  # released afterwards


def _hog_all_memory_mid_compile(server, label):
    """Helper process: once the traced compilation has allocated its
    first bytes, grab every remaining byte of physical memory so the
    next optimizer allocation must fail."""
    env = server.env
    while True:
        account = server.pipeline.live_accounts.get(label)
        if account is not None and account.used > 0:
            break
        yield env.timeout(0.05)
    hog = server.memory.clerk("hog")
    hog.allocate(server.memory.available)


def test_compile_oom_without_fallback_raises():
    """With best-plan-so-far disabled, running out of memory mid-
    optimization is a hard compile failure."""
    server = make_server()
    server.pipeline.best_plan_so_far = False

    def run(env):
        try:
            yield from server.pipeline.compile(STAR_QUERY, "q1")
        except CompileOutOfMemoryError:
            return "oom"

    p = server.env.process(run(server.env))
    server.env.process(_hog_all_memory_mid_compile(server, "q1"))
    server.env.run()
    assert p.value == "oom"
    assert server.pipeline.oom_failures == 1
    assert server.compile_clerk.used == 0


def test_compile_oom_with_fallback_degrades():
    """With the extension on, memory exhaustion returns the best plan
    found so far instead of an error (once stage 0 has finished)."""
    server = make_server()

    def run(env):
        compiled = yield from server.pipeline.compile(STAR_QUERY, "q1")
        return compiled

    p = server.env.process(run(server.env))
    server.env.process(_hog_all_memory_mid_compile(server, "q1"))
    server.env.run()
    compiled = p.value
    assert compiled.degraded
    assert compiled.plan is not None
    assert server.pipeline.degraded_plans == 1


def test_soft_grant_denial_degrades_instead_of_oom():
    """Regression: the broker→compilation handshake.  A soft-grant
    denial must yield a degraded plan, never a compile_oom error."""
    server = make_server()
    denials = []

    def deny_growth(clerk, nbytes):
        # simulate broker pressure: refuse any optimizer growth once
        # the task got past stage 0 (the star query peaks ~1.5 MiB)
        if clerk.used > 1 * MiB:
            denials.append(nbytes)
            return False
        return True

    server.compile_clerk.advisor = deny_growth

    def run(env):
        compiled = yield from server.pipeline.compile(STAR_QUERY, "q1")
        return compiled

    p = server.env.process(run(server.env))
    server.env.run()
    compiled = p.value
    assert denials, "advisor never consulted"
    assert compiled.degraded
    assert compiled.plan is not None
    assert server.pipeline.soft_denials >= 1
    assert server.pipeline.oom_failures == 0
    assert server.compile_clerk.used == 0


def test_essential_allocation_waits_for_memory():
    """An OOM before any fallback plan exists must wait for memory to
    be freed and retry instead of failing the compilation."""
    server = make_server()
    env = server.env
    hog = server.memory.clerk("hog")
    hog.allocate(server.memory.available)  # nothing free at t=0

    def run(env):
        compiled = yield from server.pipeline.compile(STAR_QUERY, "q1")
        return compiled

    def release_later(env):
        yield env.timeout(30.0)
        hog.free_all()

    p = env.process(run(env))
    env.process(release_later(env))
    env.run()
    compiled = p.value
    assert compiled.plan is not None
    assert server.pipeline.oom_waits > 0
    assert server.pipeline.oom_failures == 0


def test_search_replay_reproduces_compile():
    """A re-compiled text replays the recorded optimizer search with an
    identical outcome."""
    server = make_server()
    outcomes = []

    def run(env, label):
        compiled = yield from server.pipeline.compile(STAR_QUERY, label)
        outcomes.append(compiled)

    # three sequential compiles of the same text: the first marks the
    # text as seen, the second records, the third replays
    for i in range(3):
        server.env.process(run(server.env, f"q{i}"))
        server.env.run()
    assert server.pipeline.search_replays == 1
    costs = {c.estimated_cost for c in outcomes}
    peaks = {c.peak_memory for c in outcomes}
    assert len(costs) == 1 and len(peaks) == 1


def test_live_accounts_visible_during_compilation():
    server = make_server()
    seen = []

    def run(env):
        yield from server.pipeline.compile(STAR_QUERY, "traced")

    def watcher(env):
        while server.pipeline.active == 0:
            yield env.timeout(0.1)
        account = server.pipeline.live_accounts.get("traced")
        seen.append(account.used if account else None)

    server.env.process(run(server.env))
    server.env.process(watcher(server.env))
    server.env.run()
    assert seen and seen[0] is not None


def test_parse_error_propagates():
    server = make_server()

    def run(env):
        try:
            yield from server.pipeline.compile("SELEKT broken", "bad")
        except Exception as exc:
            return type(exc).__name__

    p = server.env.process(run(server.env))
    server.env.run()
    assert p.value == "SqlSyntaxError"
    assert server.pipeline.active == 0
    assert server.compile_clerk.used == 0
