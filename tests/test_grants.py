"""Tests for the memory-grant resource semaphore."""

import pytest

from repro.errors import SimulationError
from repro.execution.grants import ResourceSemaphore
from repro.memory import MemoryManager
from repro.units import MiB


def make_semaphore(env, capacity=100, physical=200):
    manager = MemoryManager(physical)
    clerk = manager.clerk("workspace")
    return manager, ResourceSemaphore(env, clerk, capacity)


def test_grant_when_capacity_free(env):
    manager, sem = make_semaphore(env)
    grant = sem.request(60)
    assert grant.granted
    assert sem.outstanding_bytes == 60
    assert sem.clerk.used == 60


def test_fifo_head_blocks_tail(env):
    manager, sem = make_semaphore(env)
    g1 = sem.request(80)
    g2 = sem.request(90)   # head of queue, does not fit
    g3 = sem.request(20)   # would fit behind g1, but FIFO protects g2
    assert g1.granted and not g2.granted and not g3.granted
    sem.release(g1)
    assert g2.granted and not g3.granted  # g2+g3 would exceed capacity


def test_release_returns_clerk_memory(env):
    manager, sem = make_semaphore(env)
    g = sem.request(50)
    sem.release(g)
    assert sem.outstanding_bytes == 0
    assert sem.clerk.used == 0


def test_oversized_request_clamped_to_capacity(env):
    manager, sem = make_semaphore(env, capacity=100)
    g = sem.request(500)
    assert g.granted
    assert g.nbytes == 100


def test_cancel_queued_request(env):
    manager, sem = make_semaphore(env)
    g1 = sem.request(100)
    g2 = sem.request(100)
    sem.cancel(g2)
    sem.release(g1)
    assert not g2.granted
    assert sem.queued == 0


def test_invalid_request_rejected(env):
    manager, sem = make_semaphore(env)
    with pytest.raises(SimulationError):
        sem.request(0)
    with pytest.raises(SimulationError):
        ResourceSemaphore(env, manager.clerk("x"), 0)


def test_physical_shortage_defers_grant_until_memory_frees(env):
    """When physical memory cannot back a grant the request waits (it
    does not fail) and is granted as soon as memory is released."""
    manager, sem = make_semaphore(env, capacity=150, physical=200)
    hog = manager.clerk("hog")
    hog.allocate(180)
    g = sem.request(100)   # capacity ok, physical memory not
    env.run()
    assert not g.granted
    assert sem.stats.oom_failures >= 1
    hog.free(180)          # release listener re-pumps the queue
    assert g.granted
    assert sem.outstanding_bytes == 100


def test_wait_statistics(env):
    manager, sem = make_semaphore(env)

    def holder(env):
        g = sem.request(100)
        yield g
        yield env.timeout(10)
        sem.release(g)

    def waiter(env):
        g = sem.request(50)
        yield g
        sem.release(g)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert sem.stats.grants == 2
    assert sem.stats.total_wait == pytest.approx(10.0)
    assert sem.stats.peak_queue >= 1
