"""Tests for the scalar-expression algebra."""

import pytest

from repro.plans import expressions as ex


def col(alias, name="c"):
    return ex.ColumnRef(alias, name)


def test_column_ref_references():
    ref = col("t", "x")
    assert ref.referenced_aliases() == {"t"}
    assert ref.referenced_columns() == {("t", "x")}
    assert str(ref) == "t.x"


def test_literal_is_leaf():
    lit = ex.Literal(42)
    assert lit.referenced_aliases() == frozenset()
    assert str(lit) == "42"
    assert str(ex.Literal("hi")) == "'hi'"


def test_comparison_validation_and_refs():
    cmp = ex.Comparison("=", col("a", "x"), col("b", "y"))
    assert cmp.referenced_aliases() == {"a", "b"}
    assert cmp.is_equi_join
    with pytest.raises(ValueError):
        ex.Comparison("~", col("a"), col("b"))


def test_equi_join_detection_negative_cases():
    same_table = ex.Comparison("=", col("a", "x"), col("a", "y"))
    assert not same_table.is_equi_join
    against_literal = ex.Comparison("=", col("a", "x"), ex.Literal(1))
    assert not against_literal.is_equi_join
    non_eq = ex.Comparison("<", col("a", "x"), col("b", "y"))
    assert not non_eq.is_equi_join


def test_between_references():
    b = ex.Between(col("t", "x"), ex.Literal(1), ex.Literal(10))
    assert b.referenced_aliases() == {"t"}
    assert "BETWEEN" in str(b)


def test_and_or_flattening_via_conjuncts():
    p1 = ex.Comparison("=", col("a"), ex.Literal(1))
    p2 = ex.Comparison("=", col("b"), ex.Literal(2))
    p3 = ex.Comparison("=", col("c"), ex.Literal(3))
    nested = ex.And((ex.And((p1, p2)), p3))
    assert ex.conjuncts(nested) == (p1, p2, p3)
    assert ex.conjuncts(None) == ()
    assert ex.conjuncts(p1) == (p1,)


def test_make_conjunction():
    p1 = ex.Comparison("=", col("a"), ex.Literal(1))
    p2 = ex.Comparison("=", col("b"), ex.Literal(2))
    assert ex.make_conjunction([]) is None
    assert ex.make_conjunction([p1]) is p1
    both = ex.make_conjunction([p1, None, p2])
    assert isinstance(both, ex.And)
    assert both.children == (p1, p2)


def test_or_references():
    p1 = ex.Comparison("=", col("a"), ex.Literal(1))
    p2 = ex.Comparison("=", col("b"), ex.Literal(2))
    either = ex.Or((p1, p2))
    assert either.referenced_aliases() == {"a", "b"}
    assert "OR" in str(either)


def test_aggregate_validation():
    agg = ex.Aggregate("sum", col("t", "x"))
    assert agg.referenced_aliases() == {"t"}
    assert str(agg) == "SUM(t.x)"
    star = ex.Aggregate("count", None)
    assert star.referenced_aliases() == frozenset()
    assert str(star) == "COUNT(*)"
    distinct = ex.Aggregate("count", col("t", "x"), distinct=True)
    assert "DISTINCT" in str(distinct)
    with pytest.raises(ValueError):
        ex.Aggregate("median", col("t", "x"))


def test_arithmetic_validation():
    arith = ex.Arithmetic("*", col("t", "a"), col("t", "b"))
    assert arith.referenced_columns() == {("t", "a"), ("t", "b")}
    with pytest.raises(ValueError):
        ex.Arithmetic("%", col("t", "a"), col("t", "b"))


def test_expressions_hashable_for_memo_keys():
    p1 = ex.Comparison("=", col("a", "x"), ex.Literal(1))
    p2 = ex.Comparison("=", col("a", "x"), ex.Literal(1))
    assert p1 == p2
    assert hash(p1) == hash(p2)
    assert len({p1, p2}) == 1
