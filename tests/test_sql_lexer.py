"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import TokenType, tokenize


def kinds(text):
    return [(t.type, t.text) for t in tokenize(text)[:-1]]


def test_keywords_and_identifiers_lowercased():
    tokens = kinds("SELECT Foo FROM Bar")
    assert tokens == [
        (TokenType.KEYWORD, "select"),
        (TokenType.IDENT, "foo"),
        (TokenType.KEYWORD, "from"),
        (TokenType.IDENT, "bar"),
    ]


def test_numbers_and_strings():
    tokens = kinds("42 3.14 'hello world'")
    assert tokens == [
        (TokenType.NUMBER, "42"),
        (TokenType.NUMBER, "3.14"),
        (TokenType.STRING, "hello world"),
    ]


def test_symbols_including_two_char():
    tokens = kinds("a <= b >= c <> d != e")
    symbols = [text for kind, text in tokens if kind is TokenType.SYMBOL]
    assert symbols == ["<=", ">=", "<>", "<>"]


def test_line_comments_dropped():
    tokens = kinds("select a -- comment here\n from t")
    assert (TokenType.KEYWORD, "from") in tokens
    assert all("comment" not in text for _, text in tokens)


def test_block_comments_dropped():
    tokens = kinds("/* adhoc 123abc */ select a from t")
    assert tokens[0] == (TokenType.KEYWORD, "select")


def test_unterminated_comment_rejected():
    with pytest.raises(SqlSyntaxError):
        tokenize("select /* oops")


def test_unterminated_string_rejected():
    with pytest.raises(SqlSyntaxError):
        tokenize("select 'oops")


def test_unexpected_character_rejected():
    with pytest.raises(SqlSyntaxError) as excinfo:
        tokenize("select @x")
    assert excinfo.value.position == 7


def test_eof_token_always_present():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_qualified_name_tokens():
    tokens = kinds("a.b")
    assert tokens == [
        (TokenType.IDENT, "a"),
        (TokenType.SYMBOL, "."),
        (TokenType.IDENT, "b"),
    ]
