"""The differential harness: the wheel kernel pinned to the legacy core.

Every registered scenario family runs (at test-sized N) on both
scheduler cores, through the inline executor and through a streamed
remote-worker pool, and the canonical artifact bytes must match
exactly — modulo the declared ``kernel`` stamp itself, which names the
core and is the only byte the knob is allowed to change.

This is the contract that lets the ``scale`` family default to the
wheel: any ordering divergence between the cores shows up here as a
different simulated number long before it could corrupt a figure.
"""

import json

import pytest

from helpers import shrunk_spec

from repro.experiments.executors import make_executor
from repro.experiments.shards import canonical_document
from repro.scenarios import list_scenarios, scenario_families
from repro.scenarios.facade import run_scenario, write_scenario_artifact
from repro.sim import KERNEL_NAMES


def representative_specs():
    """One shrunken experiment spec per registered scenario family.

    The first experiment-kind scenario of each family stands in for
    the family; monitors/trace scenarios never touch the event queue,
    so families with no experiment member (none today) would be
    skipped.
    """
    chosen = []
    for family in scenario_families():
        for spec in list_scenarios(family=family):
            if spec.kind == "experiment":
                chosen.append(shrunk_spec(spec))
                break
    return chosen


def strip_kernel_stamp(doc):
    """Drop every declared ``kernel`` key from an artifact document.

    The stamp is the knob's declaration, not a simulated number; after
    removing it the two kernels' artifacts must be byte-identical.
    """
    if isinstance(doc, dict):
        return {key: strip_kernel_stamp(value)
                for key, value in doc.items() if key != "kernel"}
    if isinstance(doc, list):
        return [strip_kernel_stamp(item) for item in doc]
    return doc


def canonical_kernel_free(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    # the spec's version stamp tracks the kernel key (a wheel spec is
    # a version-4 document, a legacy one version-2/3): normalize both
    doc.get("spec", {}).pop("version", None)
    return json.dumps(canonical_document(strip_kernel_stamp(doc)),
                      sort_keys=True)


def artifacts_for(spec, kernel, out_dir, executor=None):
    result = run_scenario(spec.customized(kernel=kernel),
                          executor=executor)
    assert result.batch is not None and not result.batch.errors, \
        f"{spec.scenario_id} [{kernel}]: {result.batch.errors}"
    return write_scenario_artifact(str(out_dir), result)


@pytest.mark.slow
def test_kernels_agree_on_every_family_inline(tmp_path):
    """Inline execution: per-family artifacts match across kernels."""
    for spec in representative_specs():
        paths = {}
        for kernel in KERNEL_NAMES:
            out = tmp_path / kernel
            paths[kernel] = artifacts_for(spec, kernel, out)
        reference = canonical_kernel_free(paths["legacy"])
        for kernel in KERNEL_NAMES[1:]:
            assert canonical_kernel_free(paths[kernel]) == reference, \
                f"{spec.scenario_id}: {kernel} diverged from legacy"


@pytest.mark.slow
def test_kernels_agree_through_stream_executor(tmp_path):
    """A streamed worker pool ships wheel-kernel specs whole.

    ``CellTask.to_doc`` carries the full customized spec over the
    wire, so a remote worker must rebuild the kernel choice from the
    document; one representative family is enough to pin the wire
    format, against the inline legacy run as the reference.
    """
    spec = representative_specs()[0]
    reference = canonical_kernel_free(
        artifacts_for(spec, "legacy", tmp_path / "ref"))
    for kernel in KERNEL_NAMES:
        executor = make_executor("stream", bind="127.0.0.1:0",
                                 stream_workers=2)
        try:
            path = artifacts_for(spec, kernel, tmp_path / f"s-{kernel}",
                                 executor=executor)
        finally:
            executor.close()
        assert canonical_kernel_free(path) == reference, \
            f"{spec.scenario_id}: stream [{kernel}] diverged"
