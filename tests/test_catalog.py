"""Tests for schema objects, statistics and the catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog, Column, ColumnType, Index, Table
from repro.catalog.statistics import (
    Histogram,
    build_column_statistics,
    grouping_ndv,
    join_ndv,
)
from repro.errors import CatalogError


def make_table(name="t", rows=1000):
    return Table(
        name=name,
        columns=(Column("id", ColumnType.INTEGER, ndv=rows, low=0,
                        high=rows - 1),
                 Column("v", ColumnType.DECIMAL, ndv=100, low=0, high=99)),
        row_count=rows,
    )


# ------------------------------------------------------------------ schema
def test_table_column_lookup():
    table = make_table()
    assert table.column("id").name == "id"
    assert table.has_column("v")
    assert not table.has_column("nope")
    with pytest.raises(CatalogError):
        table.column("nope")


def test_table_rejects_duplicate_columns():
    with pytest.raises(CatalogError):
        Table(name="t",
              columns=(Column("a"), Column("a")),
              row_count=1)


def test_table_rejects_index_on_unknown_column():
    with pytest.raises(CatalogError):
        Table(name="t", columns=(Column("a"),), row_count=1,
              indexes=(Index("ix", ("zz",)),))


def test_row_width_includes_overhead():
    table = make_table()
    assert table.row_width == 4 + 8 + 10
    assert table.nbytes == table.row_count * table.row_width


def test_column_validation():
    with pytest.raises(CatalogError):
        Column("bad", ndv=0)
    with pytest.raises(CatalogError):
        Column("bad", low=10, high=5)


def test_column_type_widths():
    assert ColumnType.INTEGER.default_width() == 4
    assert ColumnType.VARCHAR.default_width() == 24


# ------------------------------------------------------------------ catalog
def test_catalog_create_and_lookup():
    cat = Catalog()
    cat.create_table(make_table("orders"))
    assert cat.has_table("ORDERS")  # case-insensitive
    assert cat.table("orders").row_count == 1000
    with pytest.raises(CatalogError):
        cat.create_table(make_table("orders"))
    with pytest.raises(CatalogError):
        cat.table("nope")


def test_catalog_drop_table():
    cat = Catalog()
    cat.create_table(make_table("t"))
    cat.drop_table("t")
    assert not cat.has_table("t")
    with pytest.raises(CatalogError):
        cat.drop_table("t")


def test_catalog_builds_statistics_and_layout():
    cat = Catalog()
    cat.create_table(make_table("t", rows=100_000))
    stats = cat.statistics("t", "v")
    assert stats.row_count == 100_000
    crange = cat.chunk_range("t")
    assert len(crange) >= 1
    assert cat.total_bytes == cat.table("t").nbytes


# ------------------------------------------------------------------ stats
def test_histogram_uniform_range_selectivity():
    hist = Histogram.equi_depth(0, 100, rows=1000, ndv=100, nbuckets=10)
    assert hist.selectivity_range(0, 100) == pytest.approx(1.0)
    assert hist.selectivity_range(0, 50) == pytest.approx(0.5, rel=0.05)
    assert hist.selectivity_range(None, 25) == pytest.approx(0.25, rel=0.1)
    assert hist.selectivity_range(90, 10) == 0.0


def test_histogram_eq_selectivity():
    hist = Histogram.equi_depth(0, 100, rows=1000, ndv=100, nbuckets=10)
    sel = hist.selectivity_eq(50)
    assert sel == pytest.approx(1.0 / 100.0, rel=0.2)
    assert hist.selectivity_eq(1000) == 0.0


def test_histogram_skew_shifts_mass_low():
    uniform = Histogram.equi_depth(0, 100, rows=1000, ndv=100, skew=0.0)
    skewed = Histogram.equi_depth(0, 100, rows=1000, ndv=100, skew=0.8)
    low_u = uniform.selectivity_range(0, 20)
    low_s = skewed.selectivity_range(0, 20)
    assert low_s > low_u
    assert skewed.total_rows == pytest.approx(1000)


def test_histogram_rejects_bad_input():
    with pytest.raises(CatalogError):
        Histogram([])
    with pytest.raises(CatalogError):
        Histogram.equi_depth(10, 0, rows=10, ndv=5)


def test_column_statistics_eq_falls_back_to_ndv():
    col = Column("c", ColumnType.INTEGER, ndv=10, low=0, high=9)
    stats = build_column_statistics(col, row_count=1000)
    assert stats.selectivity_eq_const(5) > 0
    assert stats.selectivity_eq_const(5) <= 1.0


def test_join_and_grouping_ndv():
    assert join_ndv(100, 10) == 10
    assert grouping_ndv([10, 20], input_rows=1e9) == 200
    assert grouping_ndv([10, 20], input_rows=50) == 50
    assert grouping_ndv([], input_rows=100) == 1.0


@settings(max_examples=60, deadline=None)
@given(low=st.integers(min_value=0, max_value=50),
       high=st.integers(min_value=51, max_value=1000),
       rows=st.integers(min_value=1, max_value=10**7),
       ndv=st.integers(min_value=1, max_value=10**5),
       skew=st.floats(min_value=0.0, max_value=0.9))
def test_histogram_mass_conservation(low, high, rows, ndv, skew):
    """Property: bucket masses sum to the row count and any range
    selectivity is within [0, 1]."""
    hist = Histogram.equi_depth(low, high, rows=rows, ndv=ndv, skew=skew)
    assert hist.total_rows == pytest.approx(rows, rel=1e-6)
    sel = hist.selectivity_range(low + (high - low) / 4,
                                 high - (high - low) / 4)
    assert 0.0 <= sel <= 1.0
