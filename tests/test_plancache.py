"""Tests for the compiled-plan cache."""

import pytest

from repro.broker.broker import BrokerNotification, BrokerSignal
from repro.config import PlanCacheConfig
from repro.memory import MemoryManager
from repro.plancache import PlanCache
from repro.plancache.cache import query_hash
from repro.units import KiB, MiB


def make_cache(max_bytes=10 * MiB, physical=100 * MiB):
    manager = MemoryManager(physical)
    cache = PlanCache(manager, PlanCacheConfig(max_bytes=max_bytes))
    return manager, cache


def test_query_hash_whitespace_and_case_insensitive():
    assert query_hash("SELECT  a\nFROM t") == query_hash("select a from t")
    assert query_hash("select a from t") != query_hash("select b from t")


def test_put_get_roundtrip():
    manager, cache = make_cache()
    assert cache.get("k") is None
    assert cache.put("k", "plan", 100 * KiB, compile_cost=5.0, now=1.0)
    entry = cache.get("k", now=2.0)
    assert entry.plan == "plan"
    assert entry.hits == 1
    assert entry.last_used == 2.0
    assert cache.hit_rate() == 0.5


def test_put_duplicate_is_noop():
    manager, cache = make_cache()
    cache.put("k", "v1", 100 * KiB, 1.0)
    assert cache.put("k", "v2", 100 * KiB, 1.0)
    assert cache.get("k").plan == "v1"
    assert cache.insertions == 1


def test_eviction_when_full():
    manager, cache = make_cache(max_bytes=1 * MiB)
    for i in range(20):
        cache.put(f"k{i}", i, 100 * KiB, compile_cost=1.0, now=float(i))
    assert cache.size_bytes <= 1 * MiB
    assert cache.evictions > 0
    assert len(cache) <= 10


def test_eviction_prefers_cheap_plans():
    manager, cache = make_cache(max_bytes=300 * KiB)
    cache.put("expensive", "e", 100 * KiB, compile_cost=100.0, now=0.0)
    cache.put("cheap", "c", 100 * KiB, compile_cost=0.1, now=1.0)
    cache.put("third", "t", 100 * KiB, compile_cost=1.0, now=2.0)
    cache.put("fourth", "f", 100 * KiB, compile_cost=1.0, now=3.0)
    # the cheap old plan should be gone before the expensive older one
    assert cache.get("expensive") is not None
    assert cache.get("cheap") is None


def test_cache_never_reclaims_other_components():
    manager, cache = make_cache(max_bytes=50 * MiB, physical=10 * MiB)
    hog = manager.clerk("hog")
    hog.allocate(10 * MiB - 100 * KiB)
    assert cache.put("a", 1, 64 * KiB, 1.0)
    assert not cache.put("b", 2, 128 * KiB, 1.0)  # no room, no theft
    assert hog.used == 10 * MiB - 100 * KiB


def test_shrink_callback_frees():
    manager, cache = make_cache()
    for i in range(10):
        cache.put(f"k{i}", i, 100 * KiB, 1.0)
    freed = cache.shrink(350 * KiB)
    assert freed >= 350 * KiB
    assert len(cache) <= 6


def test_broker_shrink_notification():
    manager, cache = make_cache()
    for i in range(10):
        cache.put(f"k{i}", i, 100 * KiB, 1.0)
    before = cache.size_bytes
    note = BrokerNotification(
        clerk="plan_cache", signal=BrokerSignal.SHRINK,
        current=before, predicted=before, target=before // 2, at=0.0)
    cache.on_broker_notification(note)
    assert cache.size_bytes <= before // 2 + 100 * KiB


def test_broker_grow_notification_is_noop():
    manager, cache = make_cache()
    cache.put("k", 1, 100 * KiB, 1.0)
    note = BrokerNotification(
        clerk="plan_cache", signal=BrokerSignal.GROW,
        current=0, predicted=0, target=10 * MiB, at=0.0)
    cache.on_broker_notification(note)
    assert cache.get("k") is not None
