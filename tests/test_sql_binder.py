"""Tests for name resolution and logical-plan construction."""

import pytest

from repro.errors import BindError
from repro.plans import expressions as ex
from repro.plans import logical as lg
from repro.sql import Binder, parse


def bind(catalog, sql):
    return Binder(catalog).bind(parse(sql))


def test_bind_star_query_shape(star_catalog, star_query):
    bound = bind(star_catalog, star_query)
    assert bound.join_count == 2
    assert bound.table_count == 3
    assert bound.aliases == {"f": "fact_sales", "p": "products",
                             "s": "stores"}
    # Sort > Project > Aggregate > joins
    assert isinstance(bound.root, lg.LogicalSort)
    project = bound.root.child
    assert isinstance(project, lg.LogicalProject)
    agg = project.child
    assert isinstance(agg, lg.LogicalAggregate)
    assert len(agg.keys) == 2
    assert len(agg.aggregates) == 1


def test_local_predicates_pushed_to_get(star_catalog):
    bound = bind(star_catalog,
                 "SELECT f.amount FROM fact_sales f, products p "
                 "WHERE f.product_id = p.product_id AND p.category_id = 3 "
                 "AND f.date_id > 100")
    join = bound.root.child  # Project > Join
    assert isinstance(join, lg.LogicalJoin)
    left, right = join.children
    assert isinstance(left, lg.LogicalGet) and left.alias == "f"
    assert left.predicate is not None  # date filter pushed down
    assert isinstance(right, lg.LogicalGet) and right.alias == "p"
    assert right.predicate is not None  # category filter pushed down
    assert join.condition is not None


def test_unqualified_column_resolved_when_unique(star_catalog):
    bound = bind(star_catalog,
                 "SELECT amount FROM fact_sales f WHERE date_id = 7")
    (out,) = bound.output
    assert out == ex.ColumnRef("f", "amount")


def test_ambiguous_column_rejected(star_catalog):
    with pytest.raises(BindError, match="ambiguous"):
        bind(star_catalog,
             "SELECT product_id FROM fact_sales f, products p "
             "WHERE f.product_id = p.product_id")


def test_unknown_table_alias_column(star_catalog):
    with pytest.raises(BindError, match="unknown table"):
        bind(star_catalog, "SELECT a FROM nonexistent")
    with pytest.raises(BindError, match="unknown alias"):
        bind(star_catalog, "SELECT z.amount FROM fact_sales f")
    with pytest.raises(BindError, match="no column"):
        bind(star_catalog, "SELECT f.nope FROM fact_sales f")


def test_duplicate_alias_rejected(star_catalog):
    with pytest.raises(BindError, match="duplicate alias"):
        bind(star_catalog, "SELECT f.amount FROM fact_sales f, products f")


def test_count_star_binds(star_catalog):
    bound = bind(star_catalog, "SELECT COUNT(*) FROM fact_sales f")
    (out,) = bound.output
    assert isinstance(out, ex.Aggregate)
    assert out.func == "count" and out.arg is None


def test_sum_star_rejected(star_catalog):
    with pytest.raises(BindError):
        bind(star_catalog, "SELECT SUM(*) FROM fact_sales f")


def test_group_by_must_be_plain_column(star_catalog):
    with pytest.raises(BindError):
        bind(star_catalog,
             "SELECT SUM(f.amount) FROM fact_sales f GROUP BY f.amount + 1")


def test_order_by_select_alias(star_catalog):
    bound = bind(star_catalog,
                 "SELECT p.category_id, SUM(f.amount) AS total "
                 "FROM fact_sales f, products p "
                 "WHERE f.product_id = p.product_id "
                 "GROUP BY p.category_id ORDER BY total")
    assert isinstance(bound.root, lg.LogicalSort)
    assert isinstance(bound.root.keys[0], ex.Aggregate)


def test_explicit_join_conditions_merge_with_where(star_catalog):
    bound = bind(star_catalog,
                 "SELECT f.amount FROM fact_sales f "
                 "JOIN products p ON f.product_id = p.product_id "
                 "WHERE p.category_id = 1")
    join = bound.root.child
    assert isinstance(join, lg.LogicalJoin)
    assert join.condition is not None


def test_or_predicate_stays_on_table(star_catalog):
    bound = bind(star_catalog,
                 "SELECT f.amount FROM fact_sales f "
                 "WHERE f.date_id = 1 OR f.date_id = 2")
    get = bound.root.child
    assert isinstance(get, lg.LogicalGet)
    assert isinstance(get.predicate, ex.Or)


def test_cross_join_allowed(star_catalog):
    bound = bind(star_catalog,
                 "SELECT f.amount FROM fact_sales f CROSS JOIN stores s")
    join = bound.root.child
    assert isinstance(join, lg.LogicalJoin)
    assert join.condition is None


def test_constant_predicate_attaches_to_first_table(star_catalog):
    bound = bind(star_catalog,
                 "SELECT f.amount FROM fact_sales f WHERE 1 = 1")
    get = bound.root.child
    assert isinstance(get, lg.LogicalGet)
    assert get.predicate is not None
