"""Tests for the cell-execution protocol (executors + wire).

The fast tests exercise task/result documents, the factory, the wire
framing and — with cheap monitors cells — the stream coordinator's
pull scheduling and its kill-one-worker re-queue recovery.  The slow
tests pin the executor-equivalence contract: the same scenario through
Inline, Pool and Stream executors produces canonically byte-identical
artifacts.
"""

import json
import socket
import threading

import pytest

from repro.errors import ConfigurationError
from repro.experiments.engine import ARTIFACT_SCHEMA
from repro.experiments.executors import (
    CellResult,
    CellTask,
    InlineExecutor,
    PoolExecutor,
    StreamExecutor,
    execute_cell,
    make_executor,
    tasks_for_specs,
)
from repro.experiments.shards import ShardCell, canonical_document
from repro.experiments.wire import (
    WIRE_PROTOCOL,
    WireError,
    parse_address,
    recv_message,
    run_worker,
    send_message,
)
from repro.scenarios import (
    ScenarioSpec,
    VariantSpec,
    run_scenario,
    write_scenario_artifact,
)

from helpers import canonical_text, experiment_spec, monitors_spec


def tiny_spec(scenario_id="ex-tiny", **overrides) -> ScenarioSpec:
    return experiment_spec(scenario_id, **overrides)


# ------------------------------------------------------------ documents
def test_cell_task_and_result_roundtrip():
    spec = tiny_spec()
    task = tasks_for_specs([spec], snapshot=True)[0]
    assert task.cell == ShardCell("ex-tiny", "throttled", 1)
    assert task.key() == "ex-tiny/throttled#1"
    rebuilt = CellTask.from_doc(json.loads(json.dumps(task.to_doc())))
    assert rebuilt.cell == task.cell
    assert rebuilt.spec == spec
    assert rebuilt.snapshot is True

    result = CellResult(cell=task.cell, wall_seconds=1.5,
                        summary={"completed": 3})
    doc = json.loads(json.dumps(result.to_doc()))
    back = CellResult.from_doc(doc)
    assert back.cell == task.cell and back.summary == {"completed": 3}
    assert back.ok and back.error is None

    for bad in (None, 42, {"no": "cell"}):
        with pytest.raises(ConfigurationError):
            CellResult.from_doc(bad)
        with pytest.raises(ConfigurationError):
            CellTask.from_doc(bad)


def test_tasks_for_specs_enumerates_cells_in_selection_order():
    specs = [tiny_spec("ex-a"), monitors_spec("ex-m"), tiny_spec("ex-b")]
    tasks = tasks_for_specs(specs)
    assert [t.key() for t in tasks] == [
        "ex-a/throttled#1", "ex-a/unthrottled#1", "ex-m/run#3",
        "ex-b/throttled#1", "ex-b/unthrottled#1"]
    with pytest.raises(ConfigurationError, match="duplicate"):
        tasks_for_specs([tiny_spec("ex-a"), tiny_spec("ex-a")])


def test_make_executor_resolution():
    assert isinstance(make_executor(), InlineExecutor)
    assert isinstance(make_executor(workers=1), InlineExecutor)
    assert isinstance(make_executor(workers=4), PoolExecutor)
    assert isinstance(make_executor("inline", workers=8), InlineExecutor)
    stream = make_executor("stream", bind="127.0.0.1:0",
                           stream_workers=0)
    assert isinstance(stream, StreamExecutor)
    stream.close()
    with pytest.raises(ConfigurationError, match="valid executors"):
        make_executor("quantum")


def test_execute_cell_error_accounting():
    """A failing cell becomes an error result, never an exception —
    the same error-accounting contract the engine's workers keep."""
    spec = tiny_spec("ex-broken", variants=(VariantSpec("run"),))
    # sabotage after validation: the unknown preset fails in the runner
    object.__setattr__(spec, "preset", "warp-speed")
    task = tasks_for_specs([spec])[0]
    result = execute_cell(task)
    assert not result.ok
    assert "ConfigurationError" in result.error
    # and an unknown variant is an error result too
    bad = CellTask(cell=ShardCell("ex-tiny", "nope", 1), spec=tiny_spec())
    assert "no variant" in execute_cell(bad).error


def test_execute_cell_runs_monitors_cells():
    task = tasks_for_specs([monitors_spec("ex-mon")])[0]
    result = execute_cell(task)
    assert result.ok
    assert result.scenario_metrics == {}
    assert "small" in result.body and "big" in result.body


# ----------------------------------------------------------------- wire
def test_parse_address():
    assert parse_address("127.0.0.1:7731") == ("127.0.0.1", 7731)
    assert parse_address("localhost:0") == ("localhost", 0)
    for bad in ("7731", "host:", ":7731", "host:notaport", "host:99999"):
        with pytest.raises(ConfigurationError, match="host:port"):
            parse_address(bad)


def test_wire_framing_roundtrip():
    a, b = socket.socketpair()
    fa, fb = a.makefile("rwb"), b.makefile("rwb")
    send_message(fa, {"op": "hello", "protocol": WIRE_PROTOCOL})
    assert recv_message(fb) == {"op": "hello", "protocol": WIRE_PROTOCOL}
    fb.write(b"this is not json\n")
    fb.flush()
    with pytest.raises(WireError, match="malformed"):
        recv_message(fa)
    fb.write(b"[1,2,3]\n")
    fb.flush()
    with pytest.raises(WireError, match="op"):
        recv_message(fa)
    for stream in (fa, fb):
        stream.close()
    a.close()
    b.close()


def test_worker_rejected_on_protocol_or_schema_mismatch():
    """Version skew is refused at the handshake: a stale worker must
    never feed summaries of another schema into an artifact."""
    executor = StreamExecutor()
    host, port = executor.start()
    try:
        for hello, expected in (
                ({"op": "hello", "protocol": WIRE_PROTOCOL + 1,
                  "schema": ARTIFACT_SCHEMA}, "protocol"),
                ({"op": "hello", "protocol": WIRE_PROTOCOL,
                  "schema": ARTIFACT_SCHEMA - 1}, "schema"),
        ):
            conn = socket.create_connection((host, port))
            stream = conn.makefile("rwb")
            send_message(stream, hello)
            reply = recv_message(stream)
            assert reply["op"] == "reject"
            assert expected in reply["reason"]
            stream.close()
            conn.close()
    finally:
        executor.close()


def test_worker_raises_on_coordinator_loss():
    """A severed connection is a failure, never a clean drain."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]

    def sever_after_handshake():
        conn, _ = listener.accept()
        stream = conn.makefile("rwb")
        assert recv_message(stream)["op"] == "hello"
        send_message(stream, {"op": "welcome", "protocol": WIRE_PROTOCOL,
                              "schema": ARTIFACT_SCHEMA})
        recv_message(stream)  # the worker's first "next"
        conn.close()  # coordinator "crashes"

    fake = threading.Thread(target=sever_after_handshake, daemon=True)
    fake.start()
    try:
        with pytest.raises(WireError, match="lost"):
            run_worker(host, port)
    finally:
        fake.join(timeout=10)
        listener.close()


def test_stream_executor_supports_successive_submissions():
    """A caller-owned executor can be reused across submissions;
    workers idle between batches and drain only at close()."""
    executor = StreamExecutor(timeout=30)
    address = executor.start()
    worker = threading.Thread(target=_drain_worker, args=(address,),
                              daemon=True)
    worker.start()
    try:
        first = list(executor.submit(
            tasks_for_specs([monitors_spec("ex-twice-a")])))
        second = list(executor.submit(
            tasks_for_specs([monitors_spec("ex-twice-b")])))
    finally:
        executor.close()
    worker.join(timeout=10)
    assert [r.cell.scenario_id for r in first] == ["ex-twice-a"]
    assert [r.cell.scenario_id for r in second] == ["ex-twice-b"]
    assert all(r.ok for r in first + second)


# -------------------------------------------- stream scheduling (cheap)
def _drain_worker(address) -> int:
    """A well-behaved worker thread target."""
    return run_worker(*address)


def test_stream_executor_runs_monitor_cells_with_thread_workers():
    """Two protocol-speaking workers drain a three-cell queue; every
    cell is executed exactly once and results carry the rendered
    bodies back over the wire."""
    specs = [monitors_spec(f"ex-mon-{i}") for i in range(3)]
    executor = StreamExecutor(timeout=30)
    address = executor.start()
    threads = [threading.Thread(target=_drain_worker, args=(address,),
                                daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        results = list(executor.submit(tasks_for_specs(specs)))
    finally:
        executor.close()
    for thread in threads:
        thread.join(timeout=10)
    assert sorted(r.cell.scenario_id for r in results) \
        == ["ex-mon-0", "ex-mon-1", "ex-mon-2"]
    assert all(r.ok and "small" in r.body for r in results)
    assert executor._server is None  # closed


def test_stream_work_stealing_recovers_from_a_killed_worker():
    """The kill-one-worker recovery pin: a worker that claims a cell
    and dies without delivering gets its cell re-queued, and a healthy
    worker joining later finishes the whole queue."""
    specs = [monitors_spec(f"ex-kill-{i}") for i in range(3)]
    executor = StreamExecutor(timeout=30)
    host, port = executor.start()
    server = executor._server

    claimed = threading.Event()

    def doomed_worker():
        conn = socket.create_connection((host, port))
        stream = conn.makefile("rwb")
        send_message(stream, {"op": "hello", "protocol": WIRE_PROTOCOL,
                              "schema": ARTIFACT_SCHEMA})
        assert recv_message(stream)["op"] == "welcome"
        send_message(stream, {"op": "next"})
        message = recv_message(stream)
        assert message["op"] == "cell"
        claimed.set()
        # die mid-cell: no result, just a dropped connection
        stream.close()
        conn.close()

    results = []
    consumer_error = []

    def consume():
        try:
            results.extend(executor.submit(tasks_for_specs(specs)))
        except Exception as exc:  # pragma: no cover - surfaced below
            consumer_error.append(exc)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    victim = threading.Thread(target=doomed_worker, daemon=True)
    victim.start()
    victim.join(timeout=10)
    assert claimed.wait(timeout=10), "doomed worker never claimed a cell"

    survivor = threading.Thread(target=_drain_worker,
                                args=((host, port),), daemon=True)
    survivor.start()
    consumer.join(timeout=30)
    executor.close()
    survivor.join(timeout=10)

    assert not consumer_error, consumer_error
    assert sorted(r.cell.scenario_id for r in results) \
        == sorted(spec.scenario_id for spec in specs)
    assert all(r.ok for r in results)
    assert server.requeues >= 1, "the dropped cell was never re-queued"
    assert server.workers_seen >= 2


def test_cancelled_executor_finalizes_partial_results():
    """A cancelled submission still yields a result per scenario:
    unexecuted cells surface as failed runs, for experiment and
    monitors scenarios alike, instead of raising."""
    from repro.scenarios import run_scenarios

    specs = [monitors_spec("ex-cancel-m"),
             tiny_spec("ex-cancel-e")]

    class CancelImmediately(InlineExecutor):
        def submit(self, tasks, progress=None):
            self.cancel()
            return super().submit(tasks, progress=progress)

    results = run_scenarios(specs, executor=CancelImmediately())
    assert [r.spec.scenario_id for r in results] \
        == ["ex-cancel-m", "ex-cancel-e"]
    assert not any(r.ok for r in results)
    assert results[0].batch.errors == {"run": "cell was never executed"}
    assert set(results[1].batch.errors.values()) \
        == {"cell was never executed"}


def test_stream_aborts_when_every_spawned_worker_died():
    """A queue whose only workers were our own crashed subprocesses
    fails loudly instead of blocking forever."""
    import subprocess
    import sys

    executor = StreamExecutor()
    executor.start()
    dead = subprocess.Popen([sys.executable, "-c", "raise SystemExit(3)"])
    dead.wait()
    executor._spawned.append(dead)
    try:
        with pytest.raises(WireError, match="spawned worker"):
            list(executor.submit(tasks_for_specs(
                [monitors_spec("ex-dead")])))
    finally:
        executor._spawned = []
        executor.close()


def test_stream_timeout_names_outstanding_cells():
    """A worker-less queue fails loudly, naming what never ran."""
    executor = StreamExecutor(timeout=0.2)
    executor.start()
    try:
        with pytest.raises(WireError, match="ex-idle"):
            list(executor.submit(tasks_for_specs(
                [monitors_spec("ex-idle")])))
    finally:
        executor.close()


# ------------------------------------------------- pinned equivalence
@pytest.mark.slow
def test_executor_equivalence_is_byte_identical(tmp_path):
    """The acceptance pin: one scenario through Inline, Pool and a
    2-worker Stream executor (work-stealing pull scheduling) writes
    canonically byte-identical artifacts."""
    spec = tiny_spec("ex-equiv", expect=())

    inline_dir = tmp_path / "inline"
    write_scenario_artifact(
        str(inline_dir), run_scenario(spec, executor=InlineExecutor()))

    pool_dir = tmp_path / "pool"
    with PoolExecutor(workers=2) as pool:
        write_scenario_artifact(
            str(pool_dir), run_scenario(spec, executor=pool))

    stream_dir = tmp_path / "stream"
    stream = StreamExecutor(timeout=300)
    address = stream.start()
    threads = [threading.Thread(target=_drain_worker, args=(address,),
                                daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        write_scenario_artifact(
            str(stream_dir), run_scenario(spec, executor=stream))
    finally:
        stream.close()
    for thread in threads:
        thread.join(timeout=10)

    name = "BENCH_scenario_ex-equiv.json"
    inline_text = canonical_text(inline_dir / name)
    assert inline_text == canonical_text(pool_dir / name), "pool"
    assert inline_text == canonical_text(stream_dir / name), "stream"


@pytest.mark.slow
def test_snapshot_flag_embeds_dmv_state(tmp_path):
    """--snapshot satellite: the end-of-run DMV snapshot rides in the
    result summary, and the canonical form zeroes it (execution
    metadata, not simulated data)."""
    spec = tiny_spec("ex-snap", variants=(VariantSpec("run"),))
    result = run_scenario(spec, snapshot=True)
    path = write_scenario_artifact(str(tmp_path), result)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    snapshot = doc["results"]["run"]["snapshot"]
    assert {"summary", "memory_clerks", "memory_gateways",
            "grant_queue", "compilations"} <= set(snapshot)
    assert any(row["name"] == "compilation"
               for row in snapshot["memory_clerks"])
    assert canonical_document(doc)["results"]["run"]["snapshot"] == 0
    # without the flag the key is absent entirely (schema-4 artifacts
    # stay byte-compatible with schema-3 ones unless asked not to be)
    bare = run_scenario(spec)
    assert "snapshot" not in bare.variant_summaries["run"]


@pytest.mark.slow
def test_cli_stream_executor_with_spawned_workers(tmp_path, capsys):
    """`repro scenarios run --executor stream --stream-workers 2` —
    the CI stream-smoke lane's exact shape — matches an inline run
    canonically."""
    from repro import cli

    stream_dir, inline_dir = tmp_path / "stream", tmp_path / "inline"
    selection = ["scenarios", "run", "ex-user", "--clients", "2"]
    # registered temporarily so both invocations resolve the same id
    from repro.scenarios import register_scenario, unregister_scenario

    register_scenario(tiny_spec("ex-user", expect=()))
    try:
        assert cli.main(["scenarios", "run", "ex-user",
                         "--executor", "stream", "--stream-workers", "2",
                         "--out", str(stream_dir)]) == 0
        assert cli.main(["scenarios", "run", "ex-user",
                         "--out", str(inline_dir)]) == 0
    finally:
        unregister_scenario("ex-user")
    capsys.readouterr()
    name = "BENCH_scenario_ex-user.json"
    assert canonical_text(stream_dir / name) \
        == canonical_text(inline_dir / name)
