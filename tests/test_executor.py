"""Tests for the query executor process."""

import pytest

from repro.config import paper_server_config
from repro.errors import GrantTimeoutError
from repro.execution import build_profile
from repro.execution.operators import ExecutionProfile, ScanWork
from repro.server import DatabaseServer
from repro.units import MiB
from tests.conftest import build_star_catalog, STAR_QUERY


def make_server():
    return DatabaseServer(paper_server_config(True), build_star_catalog())


def compile_profile(server, sql):
    from repro.sql import parse
    bound = server.binder.bind(parse(sql))
    result = server.optimizer.optimize(bound)
    return build_profile(result.plan, server.catalog,
                         server.optimizer.cost_model)


def run_execution(server, profile):
    def runner(env):
        outcome = yield from server.executor.execute(profile,
                                                     server.catalog)
        return outcome

    p = server.env.process(runner(server.env))
    server.env.run()
    return p.value


def test_execution_produces_timing_breakdown():
    server = make_server()
    profile = compile_profile(server, STAR_QUERY)
    outcome = run_execution(server, profile)
    assert outcome.io_time > 0
    assert outcome.cpu_time > 0
    assert outcome.granted_bytes > 0
    assert outcome.elapsed >= outcome.io_time + outcome.cpu_time


def test_execution_releases_grant():
    server = make_server()
    profile = compile_profile(server, STAR_QUERY)
    run_execution(server, profile)
    assert server.grant_semaphore.outstanding_bytes == 0


def test_warm_cache_speeds_up_second_run():
    server = make_server()
    profile = compile_profile(server, STAR_QUERY)
    cold = run_execution(server, profile)
    warm = run_execution(server, profile)
    assert warm.io_time < cold.io_time
    assert warm.buffer_hits > 0


def test_small_grant_causes_spill():
    server = make_server()
    profile = ExecutionProfile(cpu_seconds=1.0, desired_memory=10_000 * MiB)
    profile.scans.append(ScanWork("products", 0.0, 1.0))
    outcome = run_execution(server, profile)
    assert outcome.spilled
    assert outcome.spill_time > 0
    assert outcome.granted_bytes < profile.desired_memory


def test_grant_timeout_error():
    server = make_server()
    cap = server.grant_semaphore.capacity_bytes
    hog = server.grant_semaphore.request(cap)
    assert hog.granted

    profile = ExecutionProfile(cpu_seconds=0.1, desired_memory=100 * MiB)

    def runner(env):
        try:
            yield from server.executor.execute(profile, server.catalog)
        except GrantTimeoutError:
            return env.now

    p = server.env.process(runner(server.env))
    server.env.run()
    timeout = server.config.execution.grant_timeout
    assert p.value == pytest.approx(timeout, rel=0.01)


def test_desired_grant_clamped():
    server = make_server()
    profile = ExecutionProfile(desired_memory=100_000 * MiB)
    ask = server.executor.desired_grant(profile)
    cap = int(server.grant_semaphore.capacity_bytes
              * server.config.execution.max_grant_fraction)
    assert ask == cap
    tiny = ExecutionProfile(desired_memory=1)
    assert server.executor.desired_grant(tiny) == server.executor.MIN_GRANT
