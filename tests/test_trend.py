"""Tests for trend estimation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.broker.trend import EwmaEstimator, LinearTrend, TrendEstimator


def test_empty_estimator_predicts_zero():
    trend = TrendEstimator()
    assert trend.predict(10) == 0.0
    assert trend.last_value == 0.0


def test_single_sample_is_flat():
    trend = TrendEstimator()
    trend.add(0.0, 500)
    assert trend.predict(100) == 500


def test_linear_series_recovered_exactly():
    trend = TrendEstimator(window=5)
    for t in range(5):
        trend.add(float(t), 100.0 + 20.0 * t)
    fit = trend.fit()
    assert fit.slope == pytest.approx(20.0)
    assert trend.predict(3.0) == pytest.approx(100.0 + 20.0 * 4 + 60.0)


def test_window_slides():
    trend = TrendEstimator(window=3)
    for t, v in ((0, 0), (1, 0), (2, 0), (3, 300), (4, 600), (5, 900)):
        trend.add(float(t), v)
    assert trend.fit().slope == pytest.approx(300.0)
    assert trend.sample_count == 3


def test_prediction_clamped_at_zero():
    trend = TrendEstimator()
    trend.add(0.0, 100)
    trend.add(1.0, 50)
    assert trend.predict(10.0) == 0.0


def test_constant_series_flat_slope():
    trend = TrendEstimator()
    for t in range(10):
        trend.add(float(t), 777.0)
    assert trend.fit().slope == pytest.approx(0.0, abs=1e-9)
    assert trend.predict(100) == pytest.approx(777.0)


def test_same_timestamp_samples_degenerate():
    trend = TrendEstimator()
    trend.add(5.0, 10)
    trend.add(5.0, 30)
    fit = trend.fit()
    assert fit.slope == 0.0
    assert fit.level == 30.0


def test_window_validation():
    with pytest.raises(ValueError):
        TrendEstimator(window=1)


def test_linear_trend_predict():
    assert LinearTrend(level=10, slope=2).predict(5) == 20
    assert LinearTrend(level=10, slope=-5).predict(100) == 0.0


def test_ewma_tracks_level_and_rate():
    est = EwmaEstimator(alpha=0.5)
    for t in range(10):
        est.add(float(t), 10.0 * t)
    assert est.predict(0.0) == pytest.approx(est.last_value)
    assert est.predict(2.0) > est.last_value


def test_ewma_alpha_validation():
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=1.5)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=20))
def test_prediction_never_negative(values):
    trend = TrendEstimator()
    for t, v in enumerate(values):
        trend.add(float(t), v)
    assert trend.predict(5.0) >= 0.0
