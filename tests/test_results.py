"""Tests for the results warehouse (repro.results) + regression radar.

The fast tests exercise extraction, idempotent loads, run resolution,
diff/trend/query and the radar's threshold maths on real inline runs
plus synthetic wall-clock edits.  The slow test pins the cross-executor
contract at the warehouse level: an inline run and a stream run of the
same selection diff to *only* volatile-field differences.
"""

import json
import shutil
import threading

import pytest

from repro import cli
from repro.errors import ConfigurationError
from repro.experiments.engine import ARTIFACT_SCHEMA
from repro.experiments.executors import InlineExecutor, StreamExecutor
from repro.experiments.journal import journaled_executor
from repro.experiments.scheduler import (
    CellScheduler,
    history_from_warehouse,
)
from repro.experiments.shards import VOLATILE_FIELDS
from repro.experiments.wire import run_worker
from repro.results import (
    DEFAULT_REGRESSION_THRESHOLD,
    ERROR_METRIC,
    WAREHOUSE_SCHEMA,
    Warehouse,
    scan,
)
from repro.scenarios import run_scenarios, write_scenario_artifact

from helpers import experiment_spec, monitors_spec


def _specs():
    return [experiment_spec("wh-exp"), monitors_spec("wh-mon")]


@pytest.fixture(scope="module")
def inline_runs(tmp_path_factory):
    """Two independent inline runs of one selection, artifacts on disk
    (module-scoped: the runs are the expensive part, every test loads
    them into its own throwaway warehouse)."""
    base = tmp_path_factory.mktemp("wh")
    for name in ("run-a", "run-b"):
        for result in run_scenarios(_specs()):
            write_scenario_artifact(str(base / name), result)
    return base


def _load(db, *sources, **kwargs):
    with Warehouse(str(db), create=True) as warehouse:
        return [warehouse.load(str(source), **kwargs)
                for source in sources]


def _pin_walls(src, dst, value):
    """Copy an artifact dir with every wall clock set to ``value`` —
    a synthetic run whose only difference is how slow it was."""
    shutil.copytree(src, dst)
    for path in dst.glob("BENCH_*.json"):
        doc = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(doc.get("results"), dict):
            for summary in doc["results"].values():
                summary["wall_seconds"] = value
            doc["wall_seconds"] = value * max(len(doc["results"]), 1)
        else:
            doc["wall_seconds"] = value
        path.write_text(json.dumps(doc), encoding="utf-8")
    return dst


# ---------------------------------------------------------------- load
def test_load_is_idempotent(inline_runs, tmp_path):
    db = tmp_path / "w.sqlite"
    first, again = _load(db, inline_runs / "run-a", inline_runs / "run-a")
    assert first.created and not again.created
    assert first.run.run_id == again.run.run_id
    assert first.metrics == again.metrics > 0
    with Warehouse(str(db)) as warehouse:
        assert len(warehouse.runs()) == 1
        assert warehouse.runs()[0].cells == 3


def test_byte_identical_runs_share_one_fingerprint(inline_runs, tmp_path):
    """A byte-identical copy of a run dedupes to the same fingerprint,
    and diffing that run against itself reports zero deltas."""
    copy = tmp_path / "copy"
    shutil.copytree(inline_runs / "run-a", copy)
    db = tmp_path / "w.sqlite"
    original, duplicate = _load(db, inline_runs / "run-a", copy)
    assert not duplicate.created
    assert duplicate.run.fingerprint == original.run.fingerprint
    with Warehouse(str(db)) as warehouse:
        report = warehouse.diff(1, 1)
    assert report.deltas == [] and report.missing == []
    assert report.ok and report.shared_cells == 3


def test_load_rejects_unknown_and_future_sources(tmp_path):
    future = tmp_path / "future"
    future.mkdir()
    (future / "BENCH_scenario_x.json").write_text(json.dumps(
        {"schema": ARTIFACT_SCHEMA + 1, "name": "scenario_x",
         "spec": {"scenario_id": "x"}}), encoding="utf-8")
    with Warehouse(str(tmp_path / "w.sqlite"), create=True) as warehouse:
        with pytest.raises(ConfigurationError, match="artifact schema"):
            warehouse.load(str(future))
        with pytest.raises(ConfigurationError, match="no such"):
            warehouse.load(str(tmp_path / "nowhere"))
        with pytest.raises(ConfigurationError, match="its directory"):
            warehouse.load(str(future / "BENCH_scenario_x.json"))
    # read verbs never conjure an empty warehouse out of a typo'd path
    with pytest.raises(ConfigurationError, match="no results warehouse"):
        Warehouse(str(tmp_path / "typo.sqlite"))


def test_error_cells_and_batch_skips(tmp_path):
    """An errored cell warehouses as the pinned ``cell_error`` fact;
    engine batch artifacts are skipped with a note, never silently."""
    source = tmp_path / "erred"
    source.mkdir()
    (source / "BENCH_scenario_wh-err.json").write_text(json.dumps({
        "schema": ARTIFACT_SCHEMA, "name": "scenario_wh-err",
        "spec": {"scenario_id": "wh-err", "kind": "experiment",
                 "seed": 5},
        "wall_seconds": 0.1, "results": {},
        "errors": {"throttled": "RuntimeError: boom"},
    }), encoding="utf-8")
    (source / "BENCH_figures.json").write_text(json.dumps({
        "schema": ARTIFACT_SCHEMA, "name": "figures", "workers": 2,
        "wall_seconds": 1.0, "errors": {}, "results": {},
    }), encoding="utf-8")
    db = tmp_path / "w.sqlite"
    (report,) = _load(db, source)
    assert any("BENCH_figures.json" in note for note in report.skipped)
    with Warehouse(str(db)) as warehouse:
        rows = warehouse.query(metric=ERROR_METRIC)
    assert [(r[1], r[2], r[3], r[5], r[6]) for r in rows] == \
        [("wh-err", "throttled", 5, 1.0, 0)]


# ---------------------------------------------------------------- diff
def test_two_inline_runs_diff_only_volatile(inline_runs, tmp_path):
    """The acceptance pin: two inline runs of the same selection show
    zero non-volatile deltas — every difference is a wall clock or a
    cache-locality counter from VOLATILE_FIELDS."""
    db = tmp_path / "w.sqlite"
    _load(db, inline_runs / "run-a", inline_runs / "run-b")
    with Warehouse(str(db)) as warehouse:
        report = warehouse.diff(str(inline_runs / "run-a"),
                                str(inline_runs / "run-b"))
    assert report.ok and report.pinned_deltas == []
    assert report.shared_cells == 3 and report.missing == []
    assert report.volatile_deltas, "two runs never share wall clocks"
    assert {d.metric for d in report.deltas} <= VOLATILE_FIELDS


def test_cli_load_then_diff_reports_zero_nonvolatile(inline_runs,
                                                     tmp_path, capsys):
    """`repro results load && repro results diff` end-to-end."""
    db = str(tmp_path / "w.sqlite")
    assert cli.main(["results", "load", str(inline_runs / "run-a"),
                     str(inline_runs / "run-b"), "--db", db]) == 0
    assert cli.main(["results", "diff", "1", "2", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "0 non-volatile delta(s)" in out
    # and the volatile detail is opt-in
    assert cli.main(["results", "diff", "prev", "latest", "--db", db,
                     "--include-volatile"]) == 0
    assert "wall_seconds" in capsys.readouterr().out


def test_journal_and_artifacts_of_one_run_diff_clean(tmp_path):
    """A journal ingests interchangeably with the artifacts of the
    same execution: identical facts, wall clocks included."""
    out_dir = tmp_path / "artifacts"
    journal = tmp_path / "run.journal"
    executor = journaled_executor(InlineExecutor(), str(journal))
    try:
        for result in run_scenarios(_specs(), executor=executor):
            write_scenario_artifact(str(out_dir), result)
    finally:
        executor.close()
    db = tmp_path / "w.sqlite"
    from_artifacts, from_journal = _load(db, out_dir, journal)
    assert from_artifacts.created and from_journal.created
    with Warehouse(str(db)) as warehouse:
        report = warehouse.diff(1, 2)
    assert report.deltas == [] and report.missing == []


@pytest.mark.slow
def test_inline_vs_stream_diff_is_volatile_only(inline_runs, tmp_path):
    """Cross-executor contract at the warehouse level: a stream run
    (two thread workers, worker-local search pools) differs from an
    inline run only in volatile fields."""
    stream_dir = tmp_path / "stream"
    stream = StreamExecutor(timeout=300)
    address = stream.start()
    threads = [threading.Thread(target=run_worker, args=address,
                                daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        for result in run_scenarios(_specs(), executor=stream):
            write_scenario_artifact(str(stream_dir), result)
    finally:
        stream.close()
    for thread in threads:
        thread.join(timeout=10)

    db = tmp_path / "w.sqlite"
    _load(db, inline_runs / "run-a", stream_dir)
    with Warehouse(str(db)) as warehouse:
        report = warehouse.diff(1, 2)
    assert report.ok and report.pinned_deltas == []
    assert {d.metric for d in report.deltas} <= VOLATILE_FIELDS


# ------------------------------------------------------- trend + radar
def test_trend_digests_the_wall_clock_trajectory(inline_runs, tmp_path):
    baseline = _pin_walls(inline_runs / "run-a", tmp_path / "base", 1.0)
    slower = _pin_walls(inline_runs / "run-a", tmp_path / "slow", 2.0)
    db = tmp_path / "w.sqlite"
    _load(db, baseline, slower)
    with Warehouse(str(db)) as warehouse:
        series = warehouse.trend(scenario="wh-exp")["wh-exp"]
        assert [digest["p50"] for _run, digest in series] == [1.0, 2.0]
        assert [digest["cells"] for _run, digest in series] == [2, 2]
        with pytest.raises(ConfigurationError, match="no 'wall_seconds'"):
            warehouse.trend(scenario="wh-nope")


def test_radar_flags_a_synthetic_2x_regression(inline_runs, tmp_path,
                                               capsys):
    """The acceptance pin: a run with doubled wall clocks fails the
    radar; a 10% drift stays inside the default 20% threshold."""
    baseline = _pin_walls(inline_runs / "run-a", tmp_path / "base", 1.0)
    doubled = _pin_walls(inline_runs / "run-a", tmp_path / "2x", 2.0)
    mild = _pin_walls(inline_runs / "run-a", tmp_path / "mild", 1.1)
    db = tmp_path / "w.sqlite"
    _load(db, baseline, doubled, mild)
    with Warehouse(str(db)) as warehouse:
        report = scan(warehouse, 1, 2)
        assert not report.ok
        flagged = {(f.scenario_id, f.percentile)
                   for f in report.findings}
        assert {("wh-exp", "p50"), ("wh-exp", "p90")} <= flagged
        assert all(abs(f.regression - 1.0) < 1e-9
                   for f in report.findings)
        assert scan(warehouse, 1, 3).ok  # +10% < default 20%
        assert not scan(warehouse, 1, 3, threshold=0.05).ok
        # pinning an absent scenario is a hard error, not a skip
        pinned = scan(warehouse, 1, 2, scenarios=["wh-exp"])
        assert {f.scenario_id for f in pinned.findings} == {"wh-exp"}
        with pytest.raises(ConfigurationError, match="wh-ghost"):
            scan(warehouse, 1, 2, scenarios=["wh-ghost"])
    assert cli.main(["results", "radar", "1", "2", "--db", str(db)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION wh-exp p50: 1.000s -> 2.000s (+100%)" in out
    assert cli.main(["results", "radar", "1", "3", "--db", str(db)]) == 0


def test_radar_min_seconds_floor_skips_noise(inline_runs, tmp_path):
    """Near-free percentiles (both runs under the floor) are skipped:
    their ratios measure the OS scheduler, not the code."""
    fast = _pin_walls(inline_runs / "run-a", tmp_path / "fast", 0.001)
    jitter = _pin_walls(inline_runs / "run-a", tmp_path / "jit", 0.004)
    db = tmp_path / "w.sqlite"
    _load(db, fast, jitter)
    with Warehouse(str(db)) as warehouse:
        report = scan(warehouse, "prev", "latest")
        assert report.ok and report.compared == []
        assert all("floor" in why for why in report.skipped.values())
        # lowering the floor re-arms the radar on the same data
        assert not scan(warehouse, "prev", "latest",
                        min_seconds=0.0005).ok


def test_radar_seeds_its_baseline_on_first_run(inline_runs, tmp_path,
                                               capsys):
    """The CI lane's first ever build has one run and nothing to
    compare — that seeds the trajectory and exits 0."""
    db = str(tmp_path / "w.sqlite")
    assert cli.main(["results", "load", str(inline_runs / "run-a"),
                     "--db", db]) == 0
    assert cli.main(["results", "radar", "prev", "latest",
                     "--db", db]) == 0
    assert "baseline seeded" in capsys.readouterr().out


# -------------------------------------------------- query + resolution
def test_query_filters_and_run_resolution(inline_runs, tmp_path):
    db = tmp_path / "w.sqlite"
    _load(db, inline_runs / "run-a", inline_runs / "run-b")
    with Warehouse(str(db)) as warehouse:
        completed = warehouse.query(metric="completed",
                                    scenario="wh-exp")
        assert len(completed) == 4  # 2 runs x 2 variants
        assert all(row[6] == 0 for row in completed), "pinned metric"
        walls = warehouse.query(metric="wall_seconds", run="latest")
        assert len(walls) == 3 and all(row[6] == 1 for row in walls)
        latest = warehouse.resolve("latest")
        assert warehouse.resolve("prev").run_id == latest.run_id - 1
        assert warehouse.resolve(str(latest.run_id)) == latest
        by_prefix = warehouse.resolve(latest.fingerprint[:10])
        assert by_prefix == latest
        label = warehouse.resolve(str(inline_runs / "run-a"))
        assert label.run_id == 1
        with pytest.raises(ConfigurationError, match="no run named"):
            warehouse.resolve("wh-ghost")
    db_single = tmp_path / "single.sqlite"
    _load(db_single, inline_runs / "run-a")
    with Warehouse(str(db_single)) as warehouse:
        with pytest.raises(ConfigurationError, match="previous"):
            warehouse.resolve("prev")


def test_warehouse_schema_version_is_checked(tmp_path):
    db = tmp_path / "w.sqlite"
    with Warehouse(str(db), create=True) as warehouse:
        warehouse._conn.execute(
            "UPDATE meta SET value = '99' WHERE key = 'warehouse_schema'")
        warehouse._conn.commit()
    with pytest.raises(ConfigurationError, match="warehouse schema"):
        Warehouse(str(db))
    assert WAREHOUSE_SCHEMA == 1


def test_cli_label_guards_and_defaults(inline_runs, tmp_path, capsys):
    db = str(tmp_path / "w.sqlite")
    assert cli.main(["results", "load", str(inline_runs / "run-a"),
                     str(inline_runs / "run-b"), "--db", db,
                     "--label", "x"]) == 2
    assert "one run" in capsys.readouterr().err
    assert cli.main(["results", "load", str(inline_runs / "run-a"),
                     "--db", db, "--label", "nightly",
                     "--git-sha", "cafe", "--host", "runner-1"]) == 0
    with Warehouse(db) as warehouse:
        run = warehouse.resolve("nightly")
        assert run.git_sha == "cafe" and run.host == "runner-1"


# ------------------------------------------------- scheduler integration
def test_scheduler_reads_the_warehouse_trajectory(inline_runs, tmp_path):
    """--warehouse feeds --order cost: the latest loaded observation
    of each cell wins; missing or non-warehouse files are advisory."""
    baseline = _pin_walls(inline_runs / "run-a", tmp_path / "base", 1.0)
    slower = _pin_walls(inline_runs / "run-a", tmp_path / "slow", 2.0)
    db = tmp_path / "w.sqlite"
    _load(db, baseline, slower)
    history = history_from_warehouse(str(db))
    assert history["wh-exp/throttled#1"] == 2.0
    assert history["wh-exp/unthrottled#1"] == 2.0
    assert history["wh-mon/run#3"] == 2.0
    scheduler = CellScheduler.from_sources(warehouses=[str(db)])
    assert scheduler.history == history
    assert history_from_warehouse(str(tmp_path / "missing.sqlite")) == {}
    junk = tmp_path / "junk.sqlite"
    junk.write_text("not a database", encoding="utf-8")
    assert history_from_warehouse(str(junk)) == {}
