"""Property tests pinning the event wheel to a reference heap model.

The model is the legacy kernel's data structure verbatim: a binary
heap of ``(when, eid)`` with lazy deletion.  Randomized workloads of
schedule/cancel/reschedule/pop must agree with it operation by
operation — the wheel's entire claim is "exactly the heap's order,
cheaper", so any divergence is a bug by definition.

Seeded stdlib ``random`` only: every trial is reproducible from the
printed seed.
"""

import math
import random
from heapq import heappop, heappush

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.wheel import EventWheel


class HeapModel:
    """The legacy core's queue as an executable specification."""

    def __init__(self):
        self._heap = []
        self._pending = {}
        self._payloads = {}

    def push(self, when, eid, payload=None):
        heappush(self._heap, (when, eid, payload))
        self._pending[eid] = when
        self._payloads[eid] = payload

    def cancel(self, eid):
        self._payloads.pop(eid, None)
        return self._pending.pop(eid, None) is not None

    def reschedule(self, eid, when):
        if eid not in self._pending:
            return False
        payload = self._payloads[eid]
        del self._pending[eid]
        self.push(when, eid, payload)
        return True

    def _settle(self):
        heap = self._heap
        while heap and (heap[0][1] not in self._pending
                        or self._pending[heap[0][1]] != heap[0][0]):
            heappop(heap)

    def peek(self):
        self._settle()
        return self._heap[0][0] if self._heap else math.inf

    def pop(self):
        self._settle()
        when, eid, payload = heappop(self._heap)
        del self._pending[eid]
        return when, eid, payload

    def __len__(self):
        return len(self._pending)


def random_trial(seed, ops=400):
    """One randomized interleaving of every wheel operation."""
    rng = random.Random(seed)
    # vary the geometry so window jumps, bucket wrap-around and
    # overflow refills all get exercised, not just the defaults
    wheel = EventWheel(start=0.0,
                       bucket_width=rng.choice((0.25, 0.5, 2.0)),
                       slots=rng.choice((4, 16, 64)))
    model = HeapModel()
    eid = 0
    clock = 0.0
    live = []
    for _ in range(ops):
        action = rng.random()
        if action < 0.45 or not live:
            eid += 1
            # mostly near-horizon timers, sometimes far-future ones
            # (overflow), sometimes exact ties on a bucket boundary
            delay = rng.choice((
                rng.uniform(0.0, 5.0),
                rng.uniform(0.0, 50.0),
                rng.uniform(0.0, 5000.0),
                float(rng.randrange(0, 8)),
            ))
            wheel.push(clock + delay, eid, payload=eid)
            model.push(clock + delay, eid, payload=eid)
            live.append(eid)
        elif action < 0.60:
            victim = live.pop(rng.randrange(len(live)))
            assert wheel.cancel(victim) == model.cancel(victim)
            assert not wheel.cancel(victim)
        elif action < 0.70:
            moved = rng.choice(live)
            when = clock + rng.uniform(0.0, 500.0)
            assert wheel.reschedule(moved, when) \
                == model.reschedule(moved, when)
        elif action < 0.85:
            assert wheel.peek() == model.peek()
        else:
            assert len(wheel) == len(model)
            if model.peek() is not math.inf and len(model):
                got, want = wheel.pop(), model.pop()
                assert got == want, f"seed={seed}: {got} != {want}"
                clock = max(clock, got[0])
                live.remove(got[1])
    # full drain must agree to the last entry
    while len(model):
        got, want = wheel.pop(), model.pop()
        assert got == want, f"seed={seed} drain: {got} != {want}"
    assert wheel.peek() is math.inf or wheel.peek() == math.inf
    with pytest.raises(IndexError):
        wheel.pop()


@pytest.mark.parametrize("seed", range(40))
def test_wheel_matches_heap_model(seed):
    random_trial(seed)


def test_same_timestamp_pops_are_fifo():
    """Equal deadlines pop in scheduling order — the tie-break the
    closed-loop determinism contract depends on."""
    wheel = EventWheel(bucket_width=0.5, slots=8)
    order = list(range(1, 201))
    for eid in order:
        wheel.push(7.25, eid, payload=eid)
    # interleave a second timestamp landing in the same bucket
    for eid in range(201, 221):
        wheel.push(7.4, eid, payload=eid)
    popped = list(wheel.drain())
    assert [when for when, _, _ in popped] == sorted(
        [7.25] * 200 + [7.4] * 20)
    assert [e for when, e, _ in popped if when == 7.25] == order
    assert [e for when, e, _ in popped if when == 7.4] \
        == list(range(201, 221))


def test_reschedule_keeps_fifo_rank():
    """Rescheduling onto an occupied timestamp keeps the entry's
    original sequence rank, exactly as a legacy cancel+repush with a
    fresh eid would NOT — the wheel preserves eid on purpose."""
    wheel = EventWheel()
    wheel.push(10.0, 1, "a")
    wheel.push(10.0, 2, "b")
    wheel.push(99.0, 3, "c")
    assert wheel.reschedule(3, 10.0)
    assert [(e, p) for _, e, p in wheel.drain()] \
        == [(1, "a"), (2, "b"), (3, "c")]


def test_window_jump_over_an_idle_stretch():
    """A far-future-only queue jumps the window instead of stepping
    bucket by bucket (the open-loop duration timer case)."""
    wheel = EventWheel(bucket_width=0.5, slots=4)  # 2 s span
    wheel.push(10_000.0, 1, "far")
    assert wheel.peek() == 10_000.0
    assert wheel.pop() == (10_000.0, 1, "far")


def test_cancelled_entries_die_everywhere():
    """Lazy cancellation: ready-heap, bucket and overflow residents
    all stay dead through refills and window advances."""
    wheel = EventWheel(bucket_width=0.5, slots=4)
    wheel.push(0.1, 1, "ready")
    wheel.push(1.2, 2, "bucket")
    wheel.push(500.0, 3, "overflow")
    wheel.push(500.0, 4, "survivor")
    for eid in (1, 2, 3):
        assert wheel.cancel(eid)
    assert len(wheel) == 1
    assert wheel.pop() == (500.0, 4, "survivor")
    assert not wheel


def test_wheel_validates_geometry():
    with pytest.raises(ValueError, match="bucket_width"):
        EventWheel(bucket_width=0.0)
    with pytest.raises(ValueError, match="slots"):
        EventWheel(slots=1)


def test_environment_selects_kernel():
    for kernel in ("legacy", "wheel"):
        env = Environment(kernel=kernel)
        assert env.kernel == kernel
        fired = []
        for delay in (3.0, 1.0, 2.0, 1.0):
            env.schedule(env.event(), delay)
        env = Environment(kernel=kernel)
        done = env.process(_ticker(env, fired))
        env.run()
        assert fired == [1.0, 2.0, 4.0]
        assert done.value == 3
    with pytest.raises(SimulationError, match="unknown kernel"):
        Environment(kernel="sundial")


def _ticker(env, fired):
    count = 0
    for delay in (1.0, 1.0, 2.0):
        yield env.timeout(delay)
        fired.append(env.now)
        count += 1
    return count
