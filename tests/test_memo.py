"""Tests for the memo structure."""

import pytest

from repro.optimizer.memo import GEXPR_BYTES, GROUP_BYTES, Memo
from repro.plans import expressions as ex
from repro.plans.logical import LogicalGet, LogicalJoin


def get(alias, table="t"):
    return LogicalGet(alias=alias, table=table)


def test_insert_tree_creates_groups_bottom_up():
    memo = Memo()
    tree = LogicalJoin(get("a"), get("b"))
    root = memo.insert_tree(tree)
    assert memo.group_count == 3
    assert memo.expression_count == 3
    assert root == 2  # parents created after children


def test_duplicate_expression_deduplicated():
    memo = Memo()
    tree = LogicalJoin(get("a"), get("b"))
    first = memo.insert_tree(tree)
    second = memo.insert_tree(LogicalJoin(get("a"), get("b")))
    assert first == second
    assert memo.expression_count == 3


def test_insert_into_target_group():
    memo = Memo()
    root = memo.insert_tree(LogicalJoin(get("a"), get("b")))
    # the commuted form joins the same group
    a_id = memo.insert_tree(get("a"))
    b_id = memo.insert_tree(get("b"))
    gexpr, created = memo.insert_expression(
        LogicalJoin(get("b"), get("a")), (b_id, a_id), target_group=root)
    assert created
    assert gexpr.group_id == root
    assert len(memo.group(root).expressions) == 2


def test_insert_expression_idempotent():
    memo = Memo()
    a_id = memo.insert_tree(get("a"))
    first, created1 = memo.insert_expression(get("a"), (), None)
    assert not created1
    assert first.group_id == a_id


def test_bytes_accounting():
    memo = Memo()
    memo.base_bytes = 1000
    memo.insert_tree(LogicalJoin(get("a"), get("b")))
    expected = 1000 + 3 * GROUP_BYTES + 3 * GEXPR_BYTES
    assert memo.bytes_used == expected


def test_byte_multiplier_scales_structural_bytes():
    memo = Memo()
    memo.insert_tree(get("a"))
    baseline = memo.bytes_used
    memo.byte_multiplier = 3.0
    assert memo.bytes_used == pytest.approx(3 * baseline, rel=0.01)


def test_bytes_grow_monotonically_with_insertions():
    memo = Memo()
    sizes = []
    for alias in "abcdef":
        memo.insert_tree(get(alias))
        sizes.append(memo.bytes_used)
    assert sizes == sorted(sizes)
    assert len(set(sizes)) == len(sizes)


def test_expressions_enumeration_stable():
    memo = Memo()
    memo.insert_tree(LogicalJoin(get("a"), get("b")))
    exprs = memo.expressions()
    assert len(exprs) == 3
    assert [e.group_id for e in exprs] == [0, 1, 2]
