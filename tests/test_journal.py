"""Tests for the run journal (checkpoint/restart).

The fast tests exercise the journal file format (append, load,
truncated-tail tolerance), the resume split and the operator guards;
the acceptance pins are the kill tests: a coordinator killed mid-queue
and restarted with ``--resume`` produces artifacts canonically
byte-identical to an uninterrupted run — simulated in-process (fast)
and as a real killed ``repro workers serve`` subprocess (slow, the
``resume-smoke`` CI lane's shape).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executors import (
    CellResult,
    InlineExecutor,
    StreamExecutor,
    tasks_for_specs,
)
from repro.experiments.journal import (
    CellJournal,
    JournaledExecutor,
    journaled_executor,
    load_journal,
    selection_fingerprint,
    split_tasks,
)
from repro.scenarios import run_scenarios, write_scenario_artifact

from helpers import canonical_text, monitors_spec


class DiesAfter(InlineExecutor):
    """An executor that simulates coordinator death after N results."""

    def __init__(self, cells: int):
        super().__init__()
        self.cells = cells

    def submit(self, tasks, progress=None):
        for number, result in enumerate(
                super().submit(tasks, progress=progress), start=1):
            if number > self.cells:
                raise RuntimeError("simulated coordinator death")
            yield result


class CountingExecutor(InlineExecutor):
    """Counts how many cells it actually executed."""

    def __init__(self):
        super().__init__()
        self.executed = []

    def submit(self, tasks, progress=None):
        def counting():
            for task in tasks:
                self.executed.append(task.cell)
                yield task

        return super().submit(counting(), progress=progress)


# ------------------------------------------------------------ the file
def test_journal_records_round_trip(tmp_path):
    path = str(tmp_path / "run.journal")
    tasks = tasks_for_specs([monitors_spec("jr-a"), monitors_spec("jr-b")])
    journal = CellJournal(path)
    journal.open_run(selection_fingerprint(tasks))
    journal.record_dispatch(tasks[0])
    result = CellResult(cell=tasks[0].cell, wall_seconds=1.5, body="x",
                        scenario_metrics={})
    journal.record_result(result)
    journal.close()

    state = load_journal(path)
    assert state.selection == selection_fingerprint(tasks)
    assert state.dispatched == [tasks[0].cell]
    assert state.results[tasks[0].cell].body == "x"
    assert state.in_flight() == []
    # a dispatched-but-incomplete cell shows up as in flight
    journal = CellJournal(path)
    journal.record_dispatch(tasks[1])
    journal.close()
    assert load_journal(path).in_flight() == [tasks[1].cell]


def test_journal_tolerates_truncated_trailing_line(tmp_path):
    """A kill mid-append loses at most the line being written."""
    path = str(tmp_path / "run.journal")
    tasks = tasks_for_specs([monitors_spec("jr-trunc")])
    journal = CellJournal(path)
    journal.open_run(selection_fingerprint(tasks))
    journal.record_result(CellResult(cell=tasks[0].cell, body="done"))
    journal.close()
    # a malformed final line that IS newline-terminated cannot be a
    # kill artifact (the writer terminates every record): fail loudly
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{corrupt}\n")
    with pytest.raises(ConfigurationError, match="malformed"):
        load_journal(path)
    with open(path, "rb+") as fh:
        data = fh.read()
        fh.truncate(len(data) - len(b"{corrupt}\n"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op":"result","result":{"cell":["jr-tr')  # the kill
    state = load_journal(path)
    assert len(state.results) == 1
    # ... but a malformed line in the *middle* is corruption, not a kill
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n" + json.dumps({"op": "dispatch",
                                    "cell": ["jr-trunc", "run", 3]}) + "\n")
    with pytest.raises(ConfigurationError, match="malformed"):
        load_journal(path)


def test_journal_rejects_unknown_ops_and_second_open(tmp_path):
    path = str(tmp_path / "run.journal")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"op": "teleport"}) + "\n\n")
    with pytest.raises(ConfigurationError, match="unknown op"):
        load_journal(path)
    tasks = tasks_for_specs([monitors_spec("jr-two")])
    journal = CellJournal(str(tmp_path / "two.journal"))
    journal.open_run(selection_fingerprint(tasks))
    journal.open_run(selection_fingerprint(tasks))
    journal.close()
    with pytest.raises(ConfigurationError, match="second run"):
        load_journal(str(tmp_path / "two.journal"))


def test_selection_fingerprint_is_order_insensitive():
    """--order cost must never invalidate a journal, but a different
    selection, spec config or snapshot flag must."""
    specs = [monitors_spec("jr-f1"), monitors_spec("jr-f2")]
    tasks = tasks_for_specs(specs)
    assert selection_fingerprint(tasks) \
        == selection_fingerprint(list(reversed(tasks)))
    assert selection_fingerprint(tasks) \
        != selection_fingerprint(tasks_for_specs(specs, snapshot=True))
    assert selection_fingerprint(tasks) \
        != selection_fingerprint(tasks_for_specs([specs[0]]))


def test_split_tasks_replays_completed_cells(tmp_path):
    path = str(tmp_path / "run.journal")
    tasks = tasks_for_specs([monitors_spec(f"jr-s{i}") for i in range(3)])
    journal = CellJournal(path)
    journal.open_run(selection_fingerprint(tasks))
    journal.record_result(CellResult(cell=tasks[1].cell, body="done"))
    journal.close()
    replayed, outstanding = split_tasks(tasks, load_journal(path))
    assert [r.cell for r in replayed] == [tasks[1].cell]
    assert [t.cell for t in outstanding] == [tasks[0].cell, tasks[2].cell]


# ------------------------------------------------------ operator guards
def test_journaled_executor_guards(tmp_path):
    path = str(tmp_path / "run.journal")
    with pytest.raises(ConfigurationError, match="does not exist"):
        journaled_executor(InlineExecutor(), path, resume=True)
    executor = journaled_executor(InlineExecutor(), path)
    list(executor.submit(tasks_for_specs([monitors_spec("jr-g")])))
    executor.close()
    # an existing journal is never silently overwritten
    with pytest.raises(ConfigurationError, match="already exists"):
        journaled_executor(InlineExecutor(), path)
    # resuming under a different selection is refused
    executor = journaled_executor(InlineExecutor(), path, resume=True)
    with pytest.raises(ConfigurationError, match="different selection"):
        list(executor.submit(tasks_for_specs([monitors_spec("jr-h")])))
    executor.close()
    # an empty journal cannot be resumed (no run header)
    empty = str(tmp_path / "empty.journal")
    open(empty, "w").close()
    executor = journaled_executor(InlineExecutor(), empty, resume=True)
    with pytest.raises(ConfigurationError, match="no run header"):
        list(executor.submit(tasks_for_specs([monitors_spec("jr-g")])))
    executor.close()


def test_journaled_executor_accepts_one_submission(tmp_path):
    executor = journaled_executor(
        InlineExecutor(), str(tmp_path / "one.journal"))
    list(executor.submit(tasks_for_specs([monitors_spec("jr-once")])))
    with pytest.raises(ConfigurationError, match="one submission"):
        list(executor.submit(tasks_for_specs([monitors_spec("jr-once")])))
    executor.close()


def test_journal_schema_mismatch_refused(tmp_path):
    path = str(tmp_path / "old.journal")
    tasks = tasks_for_specs([monitors_spec("jr-old")])
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"op": "open", "schema": 3,
                             "selection": selection_fingerprint(tasks)})
                 + "\n")
    executor = journaled_executor(InlineExecutor(), path, resume=True)
    with pytest.raises(ConfigurationError, match="schema"):
        list(executor.submit(tasks))
    executor.close()


# ------------------------------------------------- kill/resume (pinned)
def test_killed_run_resumes_byte_identical(tmp_path):
    """The acceptance pin, fast: an executor that dies after one cell
    leaves a journal from which a resumed run replays the completed
    cell, executes only the outstanding ones, and writes artifacts
    canonically byte-identical to an uninterrupted run."""
    specs = [monitors_spec(f"jr-kill-{i}") for i in range(3)]
    path = str(tmp_path / "run.journal")

    dying = JournaledExecutor(DiesAfter(1), CellJournal(path))
    with pytest.raises(RuntimeError, match="simulated"):
        list(dying.submit(tasks_for_specs(specs)))
    dying.close()
    state = load_journal(path)
    assert len(state.results) == 1
    assert len(state.dispatched) >= 1

    counting = CountingExecutor()
    resumed = journaled_executor(counting, path, resume=True)
    results = run_scenarios(specs, executor=resumed)
    resumed.close()
    # only the two outstanding cells re-ran; the journaled one replayed
    assert len(counting.executed) == 2
    (completed_cell,) = state.results
    assert completed_cell not in counting.executed

    resumed_dir = tmp_path / "resumed"
    for result in results:
        write_scenario_artifact(str(resumed_dir), result)
    inline_dir = tmp_path / "inline"
    for result in run_scenarios(specs, executor=InlineExecutor()):
        write_scenario_artifact(str(inline_dir), result)
    for spec in specs:
        name = f"BENCH_scenario_{spec.scenario_id}.json"
        assert canonical_text(resumed_dir / name) \
            == canonical_text(inline_dir / name), name
    # the resumed journal now covers the whole queue
    final = load_journal(path)
    assert len(final.results) == 3
    assert final.resumes == 1


def test_resume_repairs_truncated_tail(tmp_path):
    """A resume over a kill-truncated journal must not append onto the
    partial line — that would fuse two records into one malformed
    *middle* line and make any second resume fail."""
    specs = [monitors_spec(f"jr-tail-{i}") for i in range(2)]
    path = str(tmp_path / "run.journal")
    dying = JournaledExecutor(DiesAfter(1), CellJournal(path))
    with pytest.raises(RuntimeError, match="simulated"):
        list(dying.submit(tasks_for_specs(specs)))
    dying.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op":"result","result":{"cell":["jr-ta')  # the kill

    resumed = journaled_executor(InlineExecutor(), path, resume=True)
    assert len(list(resumed.submit(tasks_for_specs(specs)))) == 2
    resumed.close()
    # the journal parses cleanly: the partial tail was dropped, not fused
    assert len(load_journal(path).results) == 2
    # ... so a SECOND resume (pure replay) works too
    again = journaled_executor(InlineExecutor(), path, resume=True)
    assert len(list(again.submit(tasks_for_specs(specs)))) == 2
    again.close()


def test_repair_preserves_intact_newline_less_tail(tmp_path):
    """A kill between a record's write and its newline leaves a valid
    final line; the tail repair must terminate it, never delete it —
    a deleted 'open' header would make the second resume impossible."""
    path = str(tmp_path / "run.journal")
    tasks = tasks_for_specs([monitors_spec("jr-intact")])
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"op": "open", "schema": 4,
                             "selection": selection_fingerprint(tasks)}))
        # no trailing newline: the kill landed right here
    for _ in range(2):  # resume twice: the header must survive both
        resumed = journaled_executor(InlineExecutor(), path, resume=True)
        assert len(list(resumed.submit(tasks))) == 1
        resumed.close()
    state = load_journal(path)
    assert state.selection is not None and len(state.results) == 1


def test_resume_retries_journaled_error_results(tmp_path):
    """A journaled *error* result leaves its cell outstanding: a
    transient failure gets retried by the restart instead of being
    replayed as a permanent failure."""
    path = str(tmp_path / "err.journal")
    tasks = tasks_for_specs([monitors_spec("jr-err")])
    journal = CellJournal(path)
    journal.open_run(selection_fingerprint(tasks))
    journal.record_result(CellResult(cell=tasks[0].cell,
                                     error="MemoryError: transient"))
    journal.close()

    counting = CountingExecutor()
    resumed = journaled_executor(counting, path, resume=True)
    results = list(resumed.submit(tasks))
    resumed.close()
    assert counting.executed == [tasks[0].cell]
    assert results[0].ok
    # the retried success is journaled and replays on the next resume
    (final,) = load_journal(path).results.values()
    assert final.ok


def test_journaled_stream_executor_records_wire_dispatch(tmp_path):
    """Through a stream executor the journal records the wire-level
    claim: dispatch rows appear even though the wrapped executor
    listifies its task iterable up front."""
    import threading

    from repro.experiments.wire import run_worker

    specs = [monitors_spec(f"jr-wire-{i}") for i in range(2)]
    path = str(tmp_path / "wire.journal")
    stream = StreamExecutor(timeout=30)
    address = stream.start()
    executor = JournaledExecutor(stream, CellJournal(path))
    worker = threading.Thread(target=run_worker, args=address,
                              daemon=True)
    worker.start()
    results = list(executor.submit(tasks_for_specs(specs)))
    executor.close()
    worker.join(timeout=10)
    assert len(results) == 2
    state = load_journal(str(tmp_path / "wire.journal"))
    assert len(state.results) == 2
    assert sorted(c.scenario_id for c in state.dispatched) \
        == ["jr-wire-0", "jr-wire-1"]


@pytest.mark.slow
def test_cli_serve_killed_and_resumed_matches_inline(tmp_path):
    """The resume-smoke CI lane's exact shape, in-repo: a real
    ``repro workers serve`` subprocess killed mid-queue, resumed with
    ``--resume``, its artifacts canonically identical to an
    uninterrupted inline run."""
    from repro import cli

    journal = tmp_path / "run.journal"
    out_dir = tmp_path / "resumed"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    serve = [sys.executable, "-m", "repro", "workers", "serve",
             "abl-dyn", "abl-gates", "--clients", "2",
             "--preset", "smoke", "--journal", str(journal),
             "--stream-workers", "1", "--bind", "127.0.0.1:0",
             "--out", str(out_dir)]

    def journaled_results() -> int:
        if not journal.exists():
            return 0
        count = 0
        for line in journal.read_text(encoding="utf-8").splitlines():
            try:
                count += json.loads(line).get("op") == "result"
            except ValueError:
                pass
        return count

    proc = subprocess.Popen(serve, stdout=subprocess.DEVNULL, env=env)
    try:
        deadline = time.time() + 300
        while time.time() < deadline and proc.poll() is None \
                and journaled_results() < 1:
            time.sleep(0.1)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
    assert journaled_results() >= 1, "no cell completed before the kill"

    resumed = subprocess.run(serve + ["--resume"], env=env,
                             stdout=subprocess.PIPE, text=True)
    assert resumed.returncode == 0, resumed.stdout

    inline_dir = tmp_path / "inline"
    assert cli.main(["scenarios", "run", "abl-dyn", "abl-gates",
                     "--clients", "2", "--preset", "smoke",
                     "--out", str(inline_dir)]) == 0
    names = sorted(os.listdir(inline_dir))
    assert names
    for name in names:
        assert canonical_text(out_dir / name) \
            == canonical_text(inline_dir / name), name
