"""Tests for logical operator nodes (payloads, children, aliases)."""

import pytest

from repro.plans import expressions as ex
from repro.plans import logical as lg


def get(alias, table="t", predicate=None):
    return lg.LogicalGet(alias=alias, table=table, predicate=predicate)


def join_cond(a, b):
    return ex.Comparison("=", ex.ColumnRef(a, "k"), ex.ColumnRef(b, "k"))


def test_get_payload_includes_predicate():
    plain = get("a")
    filtered = get("a", predicate=ex.Comparison(
        "=", ex.ColumnRef("a", "x"), ex.Literal(1)))
    assert plain.payload() != filtered.payload()
    assert plain.aliases() == {"a"}
    assert plain.with_children(()) is plain


def test_join_payload_excludes_children():
    j1 = lg.LogicalJoin(get("a"), get("b"), join_cond("a", "b"))
    j2 = lg.LogicalJoin(get("b"), get("a"), join_cond("a", "b"))
    assert j1.payload() == j2.payload()  # identity lives in the children
    assert j1.aliases() == {"a", "b"}


def test_join_with_children_replaces():
    j = lg.LogicalJoin(get("a"), get("b"), join_cond("a", "b"))
    new = j.with_children((get("x"), get("y")))
    assert isinstance(new, lg.LogicalJoin)
    assert new.condition is j.condition
    assert new.aliases() == {"x", "y"}
    assert j.aliases() == {"a", "b"}  # original untouched


def test_filter_and_project_payloads():
    pred = ex.Comparison("=", ex.ColumnRef("a", "x"), ex.Literal(1))
    flt = lg.LogicalFilter(get("a"), pred)
    assert flt.payload() == ("filter", pred)
    assert flt.child.alias == "a"
    proj = lg.LogicalProject(get("a"), (ex.ColumnRef("a", "x"),))
    assert proj.payload()[0] == "project"


def test_aggregate_payload_and_aliases():
    agg = lg.LogicalAggregate(
        lg.LogicalJoin(get("a"), get("b"), join_cond("a", "b")),
        keys=(ex.ColumnRef("a", "g"),),
        aggregates=(ex.Aggregate("sum", ex.ColumnRef("b", "v")),))
    assert agg.aliases() == {"a", "b"}
    assert agg.payload()[0] == "aggregate"
    rebuilt = agg.with_children((get("z"),))
    assert rebuilt.keys == agg.keys
    assert rebuilt.aliases() == {"z"}


def test_sort_preserves_direction():
    sort = lg.LogicalSort(get("a"), (ex.ColumnRef("a", "x"),), (True,))
    assert sort.descending == (True,)
    rebuilt = sort.with_children((get("b"),))
    assert rebuilt.descending == (True,)


def test_str_representations():
    j = lg.LogicalJoin(get("a"), get("b"), join_cond("a", "b"))
    assert "Join" in str(j)
    assert "Get" in str(get("a"))
