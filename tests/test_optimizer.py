"""Tests for the staged optimizer: plans, stages, memory accounting."""

import pytest

from repro.optimizer import Optimizer
from repro.plans import physical as ph
from repro.sql import Binder, parse
from repro.units import MiB


def optimize(catalog, sql, **kwargs):
    opt = Optimizer(catalog, **kwargs)
    bound = Binder(catalog).bind(parse(sql))
    return opt.optimize(bound)


def task_for(catalog, sql, **kwargs):
    opt = Optimizer(catalog, **kwargs)
    bound = Binder(catalog).bind(parse(sql))
    return opt.task(bound)


def test_single_table_plan(star_catalog):
    result = optimize(star_catalog,
                      "SELECT f.amount FROM fact_sales f "
                      "WHERE f.date_id BETWEEN 0 AND 99")
    scan = next(node for node in result.plan.walk()
                if isinstance(node, ph.TableScan))
    assert scan.table == "fact_sales"
    assert scan.scan_fraction == pytest.approx(0.1, abs=0.01)
    assert result.cost > 0


def test_star_query_plan_structure(star_catalog, star_query):
    result = optimize(star_catalog, star_query)
    nodes = list(result.plan.walk())
    kinds = [type(node).__name__ for node in nodes]
    assert "HashAggregate" in kinds or "StreamAggregate" in kinds
    joins = [node for node in nodes if isinstance(node, ph.HashJoin)]
    assert len(joins) == 2


def test_hash_join_builds_on_smaller_side(star_catalog, star_query):
    """With the memory-pressure cost term, the dimension tables (small)
    should end up as hash-build sides, the fact side as probe."""
    result = optimize(star_catalog, star_query)
    for join in result.plan.walk():
        if isinstance(join, ph.HashJoin):
            assert (join.build.estimates.rows
                    <= join.probe.estimates.rows * 1.01)


def test_exploration_never_worsens_cost(star_catalog, star_query):
    """The stage-N plan must cost no more than the stage-0 plan."""
    task = task_for(star_catalog, star_query)
    stage_costs = []
    for step in task.steps():
        if step.phase == "implement":
            stage_costs.append(task._best.cost)
    assert stage_costs, "no implement passes ran"
    assert stage_costs[-1] <= stage_costs[0] + 1e-9


def test_memory_grows_with_join_count(star_catalog):
    small = optimize(star_catalog,
                     "SELECT f.amount FROM fact_sales f WHERE f.date_id = 1")
    big = optimize(star_catalog,
                   "SELECT SUM(f.amount) FROM fact_sales f, products p, "
                   "stores s, categories c "
                   "WHERE f.product_id = p.product_id "
                   "AND f.store_id = s.store_id "
                   "AND p.category_id = c.category_id")
    assert big.memo_bytes > small.memo_bytes
    assert big.work_units > small.work_units


def test_steps_alloc_bytes_sum_to_memo_bytes(star_catalog, star_query):
    task = task_for(star_catalog, star_query)
    total = sum(step.alloc_bytes for step in task.steps())
    assert total == task.memo.bytes_used
    assert task.result is not None
    assert task.result.memo_bytes == task.memo.bytes_used


def test_steps_consume_cpu(star_catalog, star_query):
    task = task_for(star_catalog, star_query)
    cpu = sum(step.cpu_seconds for step in task.steps())
    assert cpu > 0


def test_best_plan_so_far_before_and_after_stage0(star_catalog, star_query):
    task = task_for(star_catalog, star_query)
    assert task.best_plan_so_far() is None  # nothing explored yet
    steps = task.steps()
    next(steps)   # stage0 insert
    next(steps)   # first implement pass
    fallback = task.best_plan_so_far()
    assert fallback is not None
    assert fallback.degraded
    assert fallback.plan is not None
    steps.close()


def test_effort_multiplier_reduces_work(star_catalog, star_query):
    full = optimize(star_catalog, star_query, effort_multiplier=1.0)
    low = optimize(star_catalog, star_query, effort_multiplier=0.1)
    assert low.work_units <= full.work_units


def test_memory_multiplier_preserves_profile(star_catalog, star_query):
    """effort 1/k + memory multiplier k keeps memo bytes in the same
    regime (the .fast() trade used by benchmarks).  Small queries
    saturate exploration before the budget matters, so the ratio is
    bounded rather than exact."""
    full = optimize(star_catalog, star_query)
    fast = optimize(star_catalog, star_query,
                    effort_multiplier=0.25, memory_multiplier=4.0)
    assert 0.5 * full.memo_bytes <= fast.memo_bytes <= 4.5 * full.memo_bytes


def test_oltp_style_query_is_small(star_catalog):
    result = optimize(star_catalog,
                      "SELECT s.region_id FROM stores s WHERE s.store_id = 5")
    assert result.memo_bytes < 1 * MiB
    assert result.work_units < 100


def test_estimates_populated_on_all_nodes(star_catalog, star_query):
    result = optimize(star_catalog, star_query)
    for node in result.plan.walk():
        assert node.estimates.rows >= 0
        assert node.estimates.cost >= 0


def test_describe_renders_plan(star_catalog, star_query):
    result = optimize(star_catalog, star_query)
    text = result.plan.describe()
    assert "TableScan" in text
    assert "rows=" in text
