"""Shared fixtures: a small star-schema catalog and helpers."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, Column, ColumnType, Index, Table
from repro.sim import Environment

INT = ColumnType.INTEGER
DEC = ColumnType.DECIMAL
DATE = ColumnType.DATE


@pytest.fixture(params=["legacy", "wheel"])
def env(request) -> Environment:
    """Every kernel-level test runs on both scheduler cores — the
    unit-sized half of the differential harness."""
    return Environment(kernel=request.param)


def build_star_catalog() -> Catalog:
    """A small sales star: one fact, three dimensions."""
    cat = Catalog()
    cat.create_table(Table(
        name="fact_sales",
        columns=(
            Column("date_id", DATE, ndv=1000, low=0, high=999),
            Column("product_id", INT, ndv=5000, low=0, high=4999),
            Column("store_id", INT, ndv=300, low=0, high=299),
            Column("amount", DEC, ndv=10_000, low=0, high=9999),
        ),
        row_count=1_000_000,
        indexes=(Index("cix_fact", ("date_id",), clustered=True),),
    ))
    cat.create_table(Table(
        name="products",
        columns=(
            Column("product_id", INT, ndv=5000, low=0, high=4999),
            Column("category_id", INT, ndv=50, low=0, high=49),
        ),
        row_count=5000,
        indexes=(Index("pk_products", ("product_id",), clustered=True,
                       unique=True),),
    ))
    cat.create_table(Table(
        name="stores",
        columns=(
            Column("store_id", INT, ndv=300, low=0, high=299),
            Column("region_id", INT, ndv=10, low=0, high=9),
        ),
        row_count=300,
        indexes=(Index("pk_stores", ("store_id",), clustered=True,
                       unique=True),),
    ))
    cat.create_table(Table(
        name="categories",
        columns=(
            Column("category_id", INT, ndv=50, low=0, high=49),
            Column("department_id", INT, ndv=5, low=0, high=4),
        ),
        row_count=50,
    ))
    return cat


@pytest.fixture
def star_catalog() -> Catalog:
    return build_star_catalog()


STAR_QUERY = """
SELECT p.category_id, s.region_id, SUM(f.amount) AS total
FROM fact_sales f, products p, stores s
WHERE f.product_id = p.product_id
  AND f.store_id = s.store_id
  AND f.date_id BETWEEN 500 AND 600
GROUP BY p.category_id, s.region_id
ORDER BY total DESC
"""


@pytest.fixture
def star_query() -> str:
    return STAR_QUERY


def drain(env: Environment, process):
    """Run the environment until done and return the process value."""
    env.run()
    return process.value
