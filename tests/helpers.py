"""Shared builders for executor/journal/scheduler tests.

Kept out of conftest so the helpers are explicit imports, and named
(not ``test_*``) so pytest never collects it.
"""

import json

from repro.experiments.shards import canonical_document
from repro.scenarios import ConfigOverrides, ScenarioSpec, VariantSpec


def monitors_spec(scenario_id) -> ScenarioSpec:
    """A render-only scenario: one near-instant cell."""
    return ScenarioSpec(scenario_id=scenario_id, title="Monitors",
                        family="test", kind="monitors", workload="sales",
                        clients=1, render="monitors")


def experiment_spec(scenario_id, clients=2, **overrides) -> ScenarioSpec:
    """A tiny two-variant experiment scenario (smoke preset)."""
    defaults = dict(
        scenario_id=scenario_id,
        title="Tiny test scenario",
        family="test",
        workload="oltp",
        clients=clients,
        preset="smoke",
        seed=1,
        think_time=5.0,
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def canonical_text(path) -> str:
    """One artifact's canonical form as a comparable string."""
    with open(path, encoding="utf-8") as fh:
        return json.dumps(canonical_document(json.load(fh)))


def shrunk_spec(spec: ScenarioSpec, clients: int = 2,
                max_sessions: int = 16) -> ScenarioSpec:
    """A test-sized copy of a registered scenario.

    Client counts are clamped the way the catalogue sweep always has;
    traffic-bearing scenarios additionally get their population capped
    (the ``scale`` family registers 10^4-10^5-session runs, which only
    the scale-smoke CI lane executes at full size).  Arrival-rate
    params scale down with the population so the shrunken run keeps
    the original's contention shape.
    """
    from dataclasses import replace

    spec = spec.customized(preset="smoke", clients=clients) \
        if spec.kind == "experiment" else spec
    traffic = spec.traffic
    if traffic is None or traffic.max_sessions is None \
            or traffic.max_sessions <= max_sessions:
        return spec
    shrink = max_sessions / traffic.max_sessions
    params = dict(traffic.params)
    if "rate" in params:
        params["rate"] = params["rate"] * shrink
    return replace(spec, traffic=replace(
        traffic,
        params=params,
        max_sessions=max_sessions,
        queue_limit=min(traffic.queue_limit, 4 * max_sessions)))
