"""Shared builders for executor/journal/scheduler tests.

Kept out of conftest so the helpers are explicit imports, and named
(not ``test_*``) so pytest never collects it.
"""

import json

from repro.experiments.shards import canonical_document
from repro.scenarios import ConfigOverrides, ScenarioSpec, VariantSpec


def monitors_spec(scenario_id) -> ScenarioSpec:
    """A render-only scenario: one near-instant cell."""
    return ScenarioSpec(scenario_id=scenario_id, title="Monitors",
                        family="test", kind="monitors", workload="sales",
                        clients=1, render="monitors")


def experiment_spec(scenario_id, clients=2, **overrides) -> ScenarioSpec:
    """A tiny two-variant experiment scenario (smoke preset)."""
    defaults = dict(
        scenario_id=scenario_id,
        title="Tiny test scenario",
        family="test",
        workload="oltp",
        clients=clients,
        preset="smoke",
        seed=1,
        think_time=5.0,
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def canonical_text(path) -> str:
    """One artifact's canonical form as a comparable string."""
    with open(path, encoding="utf-8") as fh:
        return json.dumps(canonical_document(json.load(fh)))
