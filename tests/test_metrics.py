"""Tests for time series, collector and reports."""

import pytest

from repro.metrics import (
    BucketSeries,
    GaugeSeries,
    MetricsCollector,
    QueryRecord,
    ascii_chart,
    render_table,
)


# ------------------------------------------------------------- BucketSeries
def test_bucket_series_counts_into_buckets():
    series = BucketSeries(bucket_width=10.0)
    for t in (1, 5, 12, 15, 25):
        series.record(float(t))
    assert series.series(0, 30) == [(0.0, 2), (10.0, 2), (20.0, 1)]
    assert series.total() == 5
    assert series.total(t_from=10.0) == 3
    assert series.total(t_to=10.0) == 2


def test_bucket_series_fills_holes_with_zero():
    series = BucketSeries(bucket_width=5.0)
    series.record(1.0)
    series.record(16.0)
    assert series.series(0, 20) == [(0.0, 1), (5.0, 0), (10.0, 0), (15.0, 1)]


def test_bucket_series_validates_width():
    with pytest.raises(ValueError):
        BucketSeries(bucket_width=0)


# ------------------------------------------------------------- GaugeSeries
def test_gauge_series_at_and_mean():
    gauge = GaugeSeries()
    gauge.record(0.0, 100)
    gauge.record(10.0, 200)
    gauge.record(20.0, 300)
    assert gauge.at(-1) == 0.0
    assert gauge.at(5.0) == 100
    assert gauge.at(10.0) == 200
    assert gauge.at(99.0) == 300
    assert gauge.mean() == 200
    assert gauge.mean(t_from=5.0, t_to=25.0) == 250
    assert gauge.maximum() == 300
    assert len(gauge) == 3


def test_gauge_series_requires_time_order():
    gauge = GaugeSeries()
    gauge.record(5.0, 1)
    with pytest.raises(ValueError):
        gauge.record(4.0, 2)


# ---------------------------------------------------------------- collector
def record(ok=True, finished=100.0, kind=None, **kwargs):
    defaults = dict(client=0, template="q", submitted=finished - 10,
                    finished=finished, ok=ok, error_kind=kind)
    defaults.update(kwargs)
    return QueryRecord(**defaults)


def test_collector_counts_successes_and_failures():
    collector = MetricsCollector(bucket_width=100.0)
    collector.record_query(record(ok=True, finished=50))
    collector.record_query(record(ok=True, finished=150))
    collector.record_query(record(ok=False, finished=150,
                                  kind="gateway_timeout"))
    assert collector.successes() == 2
    assert collector.failure_total() == 1
    assert collector.error_counts == {"gateway_timeout": 1}
    assert collector.success_rate() == pytest.approx(2 / 3)


def test_collector_throughput_series_window():
    collector = MetricsCollector(bucket_width=10.0)
    for t in (5, 15, 25, 35):
        collector.record_query(record(finished=float(t)))
    assert collector.throughput_series(10, 30) == [(10.0, 1), (20.0, 1)]
    assert collector.successes(10, 30) == 2


def test_collector_means_exclude_cached_compiles():
    collector = MetricsCollector()
    collector.record_query(record(compile_time=10.0, cached_plan=False,
                                  execution_time=100.0))
    collector.record_query(record(compile_time=0.0, cached_plan=True,
                                  execution_time=50.0))
    assert collector.mean_compile_time() == 10.0
    assert collector.mean_execution_time() == 75.0


def test_collector_degraded_count():
    collector = MetricsCollector()
    collector.record_query(record(degraded_plan=True))
    collector.record_query(record(degraded_plan=False))
    collector.record_query(record(ok=False, degraded_plan=True))
    assert collector.degraded_count() == 1


def test_collector_memory_sampling():
    collector = MetricsCollector()
    collector.sample_memory(1.0, {"buffer_pool": 100, "compilation": 50})
    collector.sample_memory(2.0, {"buffer_pool": 200, "compilation": 70})
    assert collector.memory["buffer_pool"].mean() == 150
    assert collector.total_memory.at(2.0) == 270


# ------------------------------------------------------------------ report
def test_render_table_alignment():
    text = render_table(("a", "bbb"), [(1, 2.5), (333, 4)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "333" in lines[2] or "333" in lines[3]
    assert "2.5" in text


def test_ascii_chart_contains_markers_and_legend():
    chart = ascii_chart(
        {"throttled": [(0, 10), (10, 20)],
         "unthrottled": [(0, 5), (10, 8)]},
        title="demo")
    assert "demo" in chart
    assert "*=throttled" in chart
    assert "o=unthrottled" in chart
    assert "*" in chart


def test_ascii_chart_empty():
    assert "(no data)" in ascii_chart({}, title="t")
