"""Tests for byte/time helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GiB, KiB, MiB, PAGE_SIZE,
    format_bytes, format_duration, parse_size,
)


def test_constants():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
    assert PAGE_SIZE == 8 * KiB


@pytest.mark.parametrize("value,expected", [
    (0, "0 B"),
    (512, "512 B"),
    (3 * MiB, "3.0 MiB"),
    (4 * GiB, "4.0 GiB"),
    (1536, "1.5 KiB"),
    (-2 * MiB, "-2.0 MiB"),
])
def test_format_bytes(value, expected):
    assert format_bytes(value) == expected


@pytest.mark.parametrize("seconds,expected", [
    (7200, "2.0 h"),
    (90, "1.5 min"),
    (45, "45.0 s"),
    (0.25, "250 ms"),
])
def test_format_duration(seconds, expected):
    assert format_duration(seconds) == expected


@pytest.mark.parametrize("text,expected", [
    ("4GB", 4 * GiB),
    ("4 GiB", 4 * GiB),
    ("512mb", 512 * MiB),
    ("1.5k", int(1.5 * KiB)),
    ("123", 123),
    ("100b", 100),
])
def test_parse_size(text, expected):
    assert parse_size(text) == expected


def test_parse_size_rejects_empty_number():
    with pytest.raises(ValueError):
        parse_size("GB")


@given(st.integers(min_value=0, max_value=10 * GiB))
def test_format_bytes_always_has_unit_suffix(value):
    out = format_bytes(value)
    assert out.endswith(("B", "KiB", "MiB", "GiB", "TiB"))
