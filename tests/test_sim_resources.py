"""Unit and property tests for Resource and Store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    env.run()
    assert r1.granted and r2.granted and not r3.granted
    assert res.count == 2
    assert res.queued == 1


def test_release_admits_next_fifo(env):
    res = Resource(env, capacity=1)
    order = []

    def worker(env, name, hold):
        req = res.request()
        yield req
        order.append((name, env.now))
        yield env.timeout(hold)
        res.release(req)

    for name, hold in (("a", 5), ("b", 3), ("c", 1)):
        env.process(worker(env, name, hold))
    env.run()
    assert order == [("a", 0.0), ("b", 5.0), ("c", 8.0)]


def test_cancel_removes_queued_request(env):
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    res.cancel(second)
    res.release(first)
    env.run()
    assert not second.granted
    assert res.count == 0


def test_release_of_ungranted_request_cancels(env):
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    res.release(second)  # not granted: behaves as cancel
    assert res.queued == 0
    assert first.granted


def test_set_capacity_grows_and_wakes(env):
    res = Resource(env, capacity=1)
    r1, r2 = res.request(), res.request()
    assert not r2.granted
    res.set_capacity(2)
    assert r2.granted


def test_set_capacity_shrink_does_not_evict(env):
    res = Resource(env, capacity=2)
    r1, r2 = res.request(), res.request()
    res.set_capacity(1)
    assert r1.granted and r2.granted
    assert res.count == 2
    res.release(r1)
    r3 = res.request()
    assert not r3.granted  # still at the (reduced) capacity


def test_negative_capacity_rejected(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=-1)
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.set_capacity(-2)


def test_request_context_manager(env):
    res = Resource(env, capacity=1)

    def worker(env):
        with res.request() as req:
            yield req
            assert res.count == 1
        return res.count

    p = env.process(worker(env))
    env.run()
    assert p.value == 0


def test_store_put_then_get(env):
    store = Store(env)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put(env):
    store = Store(env)

    def getter(env):
        item = yield store.get()
        return (env.now, item)

    def putter(env):
        yield env.timeout(4)
        store.put("late")

    p = env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert p.value == (4.0, "late")


@settings(max_examples=50, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8),
       holds=st.lists(st.integers(min_value=1, max_value=20),
                      min_size=1, max_size=24))
def test_resource_never_exceeds_capacity(capacity, holds):
    """Property: at no simulated instant do users exceed capacity, and
    every request is eventually granted."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    granted = []
    over_capacity = []

    def worker(env, hold):
        req = res.request()
        yield req
        if res.count > capacity:
            over_capacity.append(env.now)
        yield env.timeout(hold)
        res.release(req)
        granted.append(hold)

    for hold in holds:
        env.process(worker(env, hold))
    env.run()
    assert not over_capacity
    assert len(granted) == len(holds)
