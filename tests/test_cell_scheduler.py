"""Tests for latency-aware cell scheduling (``--order cost``).

Ordering is a pure scheduling decision: the fast tests pin the order
itself (observed history beats heuristics, heuristics scale with
workload size, ties stay stable) and the sources it is derived from;
the slow test pins the invariant that matters — a cost-ordered run's
artifacts are canonically byte-identical to a spec-ordered run's.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executors import InlineExecutor, tasks_for_specs
from repro.experiments.scheduler import (
    CellScheduler,
    heuristic_cost,
    history_from_artifacts,
    history_from_journal,
    order_tasks,
)
from repro.scenarios import VariantSpec, run_scenarios, \
    write_scenario_artifact

from helpers import canonical_text, experiment_spec, monitors_spec


# ------------------------------------------------------------ ordering
def test_spec_order_is_identity_and_unknown_orders_fail():
    tasks = tasks_for_specs([experiment_spec("sc-a"), monitors_spec("sc-m")])
    assert order_tasks(tasks, "spec") == tasks
    assert order_tasks(tasks) == tasks
    with pytest.raises(ConfigurationError, match="valid orders"):
        order_tasks(tasks, "alphabetical")


def test_cost_order_puts_expensive_cells_first():
    """Heuristic ordering: bigger client counts first, render cells
    (monitors) last, ties in submission order (stable sort)."""
    specs = [monitors_spec("sc-mon"), experiment_spec("sc-small", clients=2),
             experiment_spec("sc-big", clients=30)]
    ordered = order_tasks(tasks_for_specs(specs), "cost")
    ids = [task.cell.scenario_id for task in ordered]
    assert ids == ["sc-big", "sc-big", "sc-small", "sc-small", "sc-mon"]
    # within a scenario, equal-cost variants keep spec order
    assert [t.cell.variant for t in ordered[:2]] \
        == ["throttled", "unthrottled"]


def test_heuristic_scales_with_workload_size():
    small, big = experiment_spec("sc-s", clients=2), \
        experiment_spec("sc-b", clients=30)
    task_small = tasks_for_specs([small])[0]
    task_big = tasks_for_specs([big])[0]
    assert heuristic_cost(task_big) > heuristic_cost(task_small)
    # per-variant client overrides count
    overridden = experiment_spec("sc-v", clients=2, variants=(
        VariantSpec("huge", clients=40), VariantSpec("tiny")))
    tasks = {t.cell.variant: t for t in tasks_for_specs([overridden])}
    assert heuristic_cost(tasks["huge"]) > heuristic_cost(tasks["tiny"])
    # render cells are near-free
    assert heuristic_cost(tasks_for_specs([monitors_spec("sc-m")])[0]) \
        < heuristic_cost(task_small)


def test_observed_history_beats_heuristics():
    """A cell the history says was slow schedules first, whatever the
    heuristic thinks of its client count."""
    specs = [experiment_spec("sc-fast", clients=30),
             experiment_spec("sc-slow", clients=2)]
    tasks = tasks_for_specs(specs)
    scheduler = CellScheduler(history={
        "sc-slow/throttled#1": 500.0, "sc-slow/unthrottled#1": 400.0,
        "sc-fast/throttled#1": 1.0, "sc-fast/unthrottled#1": 1.0})
    ordered = scheduler.order(tasks)
    assert [t.key() for t in ordered] == [
        "sc-slow/throttled#1", "sc-slow/unthrottled#1",
        "sc-fast/throttled#1", "sc-fast/unthrottled#1"]


# ------------------------------------------------------------- sources
def test_history_from_journal(tmp_path):
    from repro.experiments.executors import CellResult
    from repro.experiments.journal import CellJournal, selection_fingerprint

    tasks = tasks_for_specs([experiment_spec("sc-j")])
    path = str(tmp_path / "run.journal")
    journal = CellJournal(path)
    journal.open_run(selection_fingerprint(tasks))
    journal.record_result(CellResult(cell=tasks[0].cell, wall_seconds=7.5,
                                     summary={"completed": 1}))
    # errored and zero-wall results contribute nothing
    journal.record_result(CellResult(cell=tasks[1].cell, error="boom"))
    journal.close()
    assert history_from_journal(path) == {"sc-j/throttled#1": 7.5}
    # advisory source: a missing journal is an empty history
    assert history_from_journal(str(tmp_path / "nope.journal")) == {}


def test_history_from_artifacts(tmp_path):
    spec = experiment_spec("sc-art")
    doc = {
        "schema": 4,
        "spec": spec.to_dict(),
        "results": {
            "throttled": {"config": {"seed": 1}, "wall_seconds": 3.25},
            "unthrottled": {"config": {"seed": 1}, "wall_seconds": 0.0},
        },
    }
    (tmp_path / "BENCH_scenario_sc-art.json").write_text(json.dumps(doc))
    mon = monitors_spec("sc-artm")
    (tmp_path / "BENCH_scenario_sc-artm.json").write_text(json.dumps(
        {"schema": 4, "spec": mon.to_dict(), "wall_seconds": 0.5}))
    (tmp_path / "BENCH_broken.json").write_text("not json")
    # malformed-but-JSON documents are skipped, never fatal: the
    # sources are advisory and must not stop a run from starting
    (tmp_path / "BENCH_badspec.json").write_text(json.dumps(
        {"schema": 4, "spec": "oops", "wall_seconds": 9.9}))
    (tmp_path / "BENCH_badshard.json").write_text(json.dumps(
        {"schema": 4, "kind": "shard", "scenarios": ["not", "a", "map"]}))
    # an all-errored experiment entry (results == {}) contributes
    # nothing: its scenario-level wall covers failed cells
    (tmp_path / "BENCH_allerr.json").write_text(json.dumps(
        {"schema": 4, "spec": experiment_spec("sc-err").to_dict(),
         "results": {}, "errors": {"throttled": "boom"},
         "wall_seconds": 12.5}))
    history = history_from_artifacts(str(tmp_path))
    assert history == {"sc-art/throttled#1": 3.25, "sc-artm/run#3": 0.5}
    assert history_from_artifacts(str(tmp_path / "missing")) == {}
    scheduler = CellScheduler.from_sources(artifact_dirs=[str(tmp_path)])
    assert scheduler.history["sc-art/throttled#1"] == 3.25


def test_history_from_shard_documents(tmp_path):
    spec = experiment_spec("sc-shard")
    doc = {
        "schema": 4,
        "kind": "shard",
        "shard": {"index": 1, "count": 2},
        "scenarios": {
            "sc-shard": {
                "spec": spec.to_dict(),
                "results": {"throttled": {"config": {"seed": 1},
                                          "wall_seconds": 9.0}},
            },
        },
    }
    (tmp_path / "BENCH_shard_1of2.json").write_text(json.dumps(doc))
    assert history_from_artifacts(str(tmp_path)) \
        == {"sc-shard/throttled#1": 9.0}


# ---------------------------------------------------- artifact identity
def test_cost_order_never_changes_artifact_bytes_fast(tmp_path):
    """Cheap pin with render cells: cost order vs spec order, same
    canonical artifacts."""
    specs = [monitors_spec(f"sc-id-{i}") for i in range(3)]
    for order, out in (("spec", "a"), ("cost", "b")):
        results = run_scenarios(specs, executor=InlineExecutor(),
                                order=order)
        for result in results:
            write_scenario_artifact(str(tmp_path / out), result)
    for spec in specs:
        name = f"BENCH_scenario_{spec.scenario_id}.json"
        assert canonical_text(tmp_path / "a" / name) \
            == canonical_text(tmp_path / "b" / name)


@pytest.mark.slow
def test_cost_order_never_changes_artifact_bytes(tmp_path):
    """The acceptance pin: a cost-ordered experiment run (history
    forcing a genuinely different queue order) writes canonically
    byte-identical artifacts to a spec-ordered run."""
    specs = [experiment_spec("sc-real-a", expect=()),
             experiment_spec("sc-real-b", expect=())]
    scheduler = CellScheduler(history={
        "sc-real-b/unthrottled#1": 100.0, "sc-real-a/throttled#1": 0.5})
    tasks = tasks_for_specs(specs)
    assert [t.key() for t in scheduler.order(tasks)] \
        != [t.key() for t in tasks]
    for order, out in (("spec", "a"), ("cost", "b")):
        results = run_scenarios(specs, executor=InlineExecutor(),
                                order=order, scheduler=scheduler)
        for result in results:
            write_scenario_artifact(str(tmp_path / out), result)
    for spec in specs:
        name = f"BENCH_scenario_{spec.scenario_id}.json"
        assert canonical_text(tmp_path / "a" / name) \
            == canonical_text(tmp_path / "b" / name)
