"""Tests for transformation rules over the memo."""

import pytest

from repro.optimizer import Optimizer
from repro.optimizer.rules import (
    GroupRef,
    JoinAssociativity,
    JoinCommutativity,
    RuleContext,
)
from repro.plans import expressions as ex
from repro.plans.logical import LogicalGet, LogicalJoin
from repro.sql import Binder, parse


def make_task(catalog, sql):
    opt = Optimizer(catalog)
    bound = Binder(catalog).bind(parse(sql))
    return opt.task(bound)


THREE_WAY = ("SELECT f.amount FROM fact_sales f, products p, stores s "
             "WHERE f.product_id = p.product_id "
             "AND f.store_id = s.store_id")


def explore_fully(task):
    for _ in task.steps():
        pass
    return task


def find_join_gexprs(memo):
    return [g for g in memo.expressions()
            if isinstance(g.node, LogicalJoin)]


def test_commutativity_adds_swapped_expression(star_catalog):
    task = make_task(star_catalog, THREE_WAY)
    explore_fully(task)
    memo = task.memo
    # at least one group must contain both join orders
    doubled = [g for g in memo.groups
               if sum(isinstance(e.node, LogicalJoin)
                      for e in g.expressions) >= 2]
    assert doubled


def test_commuted_join_does_not_commute_back(star_catalog):
    """The join_commute firing mask must prevent A,B -> B,A -> A,B churn:
    every (payload, children) pair stays unique, so dedup would catch it,
    but the mask must prevent even attempting it."""
    task = make_task(star_catalog, THREE_WAY)
    explore_fully(task)
    for gexpr in find_join_gexprs(task.memo):
        # each expression fired each rule at most once
        assert len(gexpr.applied_rules) <= 2


def test_associativity_creates_new_intermediate_group(star_catalog):
    task = make_task(star_catalog, THREE_WAY)
    before_exploration_groups = 0
    steps = task.steps()
    next(steps)  # stage0
    before_exploration_groups = task.memo.group_count
    for _ in steps:
        pass
    assert task.memo.group_count > before_exploration_groups


def test_associativity_preserves_alias_coverage(star_catalog):
    """Every expression of a group must produce the same alias set."""
    task = make_task(star_catalog, THREE_WAY)
    explore_fully(task)
    memo = task.memo
    for group in memo.groups:
        alias_sets = set()
        for gexpr in group.expressions:
            if isinstance(gexpr.node, LogicalGet):
                alias_sets.add(frozenset({gexpr.node.alias}))
            elif isinstance(gexpr.node, LogicalJoin):
                covered = frozenset()
                for child in gexpr.children:
                    covered |= memo.group(child).stats.aliases
                alias_sets.add(covered)
        assert len(alias_sets) <= 1, f"group {group.id} mixes alias sets"


def test_associativity_never_invents_cross_products(star_catalog):
    """Conditions are re-split on rewrite; a rewrite that would leave
    the inner join conditionless is refused (unless the original was a
    cross product)."""
    task = make_task(star_catalog, THREE_WAY)
    explore_fully(task)
    for gexpr in find_join_gexprs(task.memo):
        node = gexpr.node
        # every equi-join in this query has a condition somewhere up the
        # tree; inner joins created by associativity must carry one
        if node.condition is None:
            left = task.memo.group(gexpr.children[0]).stats
            right = task.memo.group(gexpr.children[1]).stats
            # cross products only tolerable between tiny dimension inputs
            assert min(left.rows, right.rows) <= 5000


def test_group_ref_payload_not_storable():
    ref = GroupRef(3)
    assert ref.children == ()
