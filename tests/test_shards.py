"""Tests for sharded scenario execution (plan, run, merge).

The fast tests exercise partitioning and the merge's safety checks on
fabricated documents; the slow tests pin the correctness contract —
a sharded run merged back together is canonically byte-identical to
the single-machine run of the same selection.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.engine import ARTIFACT_SCHEMA
from repro.experiments.shards import (
    ShardCell,
    ShardPlan,
    canonical_document,
    merge_artifact_files,
    merge_documents,
    parse_shard_selector,
    run_shard,
    wall_seconds_percentiles,
    write_merged_artifacts,
    write_shard_artifact,
)
from repro.scenarios import (
    Expectation,
    ScenarioSpec,
    VariantSpec,
    list_scenarios,
    run_scenario,
    write_scenario_artifact,
)
from repro import cli

from helpers import experiment_spec
from helpers import canonical_text as canonical_file
from helpers import monitors_spec as _monitors_spec


def tiny_spec(scenario_id="tiny-a", seed=1, **overrides) -> ScenarioSpec:
    defaults = dict(
        seed=seed,
        expect=(Expectation("completed", ">", 0, variant="throttled"),),
    )
    defaults.update(overrides)
    return experiment_spec(scenario_id, **defaults)


def monitors_spec(scenario_id="tiny-mon") -> ScenarioSpec:
    return _monitors_spec(scenario_id)


# ---------------------------------------------------------------- plan
def test_parse_shard_selector():
    assert parse_shard_selector("1/1") == (1, 1)
    assert parse_shard_selector("3/4") == (3, 4)
    for bad in ("0/4", "5/4", "x/4", "2", "2/", "/4", "2/0", "-1/4"):
        with pytest.raises(ConfigurationError):
            parse_shard_selector(bad)
    # a typo'd huge count fails instantly instead of allocating
    with pytest.raises(ConfigurationError, match="ceiling"):
        parse_shard_selector("1/2000000000")
    with pytest.raises(ConfigurationError, match="ceiling"):
        ShardPlan.partition([tiny_spec("huge")], 2_000_000_000)


def test_shard_cell_from_doc_rejects_malformed_docs():
    for bad in (42, "abc", ["a", "b"], ["a", "b", "x"], None,
                ["a", "b", "c", "d"]):
        with pytest.raises(ConfigurationError, match="shard cell"):
            ShardCell.from_doc(bad)


def test_partition_covers_every_cell_exactly_once():
    specs = [tiny_spec("a"), tiny_spec("b"), monitors_spec("m")]
    plan = ShardPlan.partition(specs, 2)
    owned = [cell for index in (1, 2) for cell in plan.cells_for(index)]
    assert sorted(owned, key=lambda c: (c.scenario_id, c.variant)) \
        == sorted(plan.all_cells(),
                  key=lambda c: (c.scenario_id, c.variant))
    assert len(owned) == len(set(owned)) == 5
    # round-robin keeps shards balanced within one cell
    sizes = [len(plan.cells_for(i)) for i in (1, 2)]
    assert max(sizes) - min(sizes) <= 1


def test_partition_is_deterministic_and_allows_empty_shards():
    specs = [tiny_spec("a")]
    assert ShardPlan.partition(specs, 4) == ShardPlan.partition(specs, 4)
    plan = ShardPlan.partition(specs, 4)  # 2 cells over 4 shards
    assert [len(plan.cells_for(i)) for i in (1, 2, 3, 4)] == [1, 1, 0, 0]
    with pytest.raises(ConfigurationError, match="shard count"):
        ShardPlan.partition(specs, 0)
    with pytest.raises(ConfigurationError, match="duplicate scenario"):
        ShardPlan.partition([tiny_spec("a"), tiny_spec("a")], 2)
    with pytest.raises(ConfigurationError, match="out of range"):
        plan.cells_for(5)


def test_partition_full_catalogue_round_robin():
    """The registered catalogue partitions cleanly at any width."""
    specs = list_scenarios()
    total = sum(len(spec.variants) for spec in specs)
    for count in (1, 3, 8):
        plan = ShardPlan.partition(specs, count)
        owned = [cell for index in range(1, count + 1)
                 for cell in plan.cells_for(index)]
        assert len(owned) == len(set(owned)) == total


# ----------------------------------------------- fabricated merge docs
def fake_summary(completed=10, failed=0, error_counts=None):
    """The summary fields the merge actually consumes."""
    return {
        "completed": completed, "failed": failed,
        "error_counts": error_counts or {}, "degraded": 0, "retries": 0,
        "search_replays": 0, "soft_denials": 0, "mean_per_bucket": 1.0,
        "mean_compile_time": 0.1, "mean_execution_time": 0.2,
        "memory_by_clerk": {}, "gateway_stats": [], "throughput": [],
        "wall_seconds": 0.5,
    }


def shard_doc(index, count, selection_cells, cells, scenarios):
    return {
        "schema": ARTIFACT_SCHEMA, "name": f"shard_{index}of{count}",
        "kind": "shard",
        "shard": {"index": index, "count": count},
        "selection": {"shard_count": count, "cells": selection_cells},
        "cells": cells, "scenarios": scenarios,
    }


def two_shard_docs(spec):
    """The spec's two variants split across two shards."""
    selection = [[spec.scenario_id, "throttled", spec.seed],
                 [spec.scenario_id, "unthrottled", spec.seed]]
    docs = []
    for index, variant in ((1, "throttled"), (2, "unthrottled")):
        docs.append(shard_doc(
            index, 2, selection, [selection[index - 1]],
            {spec.scenario_id: {
                "spec": spec.to_dict(), "wall_seconds": 0.5,
                "errors": {},
                "results": {variant: fake_summary(20 if index == 1
                                                  else 10)}}}))
    return docs


def test_merge_combines_split_variants():
    spec = tiny_spec("split", expect=(
        Expectation("completed", ">", 0, variant="throttled"),
        Expectation("improvement", ">", 0.0),
    ))
    merge = merge_documents(two_shard_docs(spec))
    assert merge.ok and merge.shard_count == 2 and merge.cells_total == 2
    payload = merge.scenarios["split"]
    assert list(payload["results"]) == ["throttled", "unthrottled"]
    assert payload["scenario_metrics"]["total_completed"] == 30.0
    assert payload["scenario_metrics"]["improvement"] == 1.0
    assert [check["passed"] for check in payload["checks"]] == [True, True]


def test_merge_empty_shard_is_fine():
    spec = tiny_spec("lonely", variants=(VariantSpec("run"),), expect=())
    selection = [["lonely", "run", 1]]
    docs = [
        shard_doc(1, 2, selection, selection,
                  {"lonely": {"spec": spec.to_dict(), "wall_seconds": 0.1,
                              "errors": {},
                              "results": {"run": fake_summary()}}}),
        shard_doc(2, 2, selection, [], {}),
    ]
    merge = merge_documents(docs)
    assert merge.ok
    assert set(merge.scenarios) == {"lonely"}


def test_merge_rejects_overlapping_cells():
    spec = tiny_spec("dup")
    docs = two_shard_docs(spec)
    # shard 2 also claims shard 1's cell
    docs[1]["cells"].append(["dup", "throttled", 1])
    with pytest.raises(ConfigurationError, match="overlapping"):
        merge_documents(docs)


def test_merge_rejects_missing_shard():
    spec = tiny_spec("gap")
    docs = two_shard_docs(spec)
    with pytest.raises(ConfigurationError, match="missing"):
        merge_documents(docs[:1])


def test_merge_reports_every_coverage_defect_at_once():
    """One failed merge diagnoses the whole artifact set: every
    missing and overlapping cell lands in a single error."""
    spec_a, spec_b = tiny_spec("multi-a"), tiny_spec("multi-b", seed=2)
    selection = [["multi-a", "throttled", 1], ["multi-a", "unthrottled", 1],
                 ["multi-b", "throttled", 2], ["multi-b", "unthrottled", 2]]
    docs = [
        shard_doc(1, 2, selection,
                  [selection[0], selection[1]],
                  {"multi-a": {"spec": spec_a.to_dict(), "wall_seconds": 0.1,
                               "errors": {},
                               "results": {"throttled": fake_summary(),
                                           "unthrottled": fake_summary()}}}),
        # shard 2 re-claims both of shard 1's cells and omits its own
        shard_doc(2, 2, selection,
                  [selection[0], selection[1]],
                  {"multi-a": {"spec": spec_a.to_dict(), "wall_seconds": 0.1,
                               "errors": {},
                               "results": {"throttled": fake_summary(),
                                           "unthrottled": fake_summary()}}}),
    ]
    with pytest.raises(ConfigurationError) as excinfo:
        merge_documents(docs)
    message = str(excinfo.value)
    # both overlapping cells and both missing cells, in one error
    assert "overlapping" in message and "missing" in message
    assert "multi-a/throttled" in message
    assert "multi-a/unthrottled" in message
    assert "multi-b/throttled" in message
    assert "multi-b/unthrottled" in message


def test_merge_rejects_duplicate_shard_index():
    spec = tiny_spec("twice")
    docs = two_shard_docs(spec)
    docs[1]["shard"]["index"] = 1
    with pytest.raises(ConfigurationError, match="twice|overlapping"):
        merge_documents(docs)


def test_merge_rejects_mixed_plans():
    docs = two_shard_docs(tiny_spec("plan-a"))
    other = two_shard_docs(tiny_spec("plan-b"))
    with pytest.raises(ConfigurationError, match="different plans"):
        merge_documents([docs[0], other[1]])


def test_selection_fingerprint_catches_preset_mismatch():
    """Shards run with different --preset must not merge, even when no
    scenario spans two shards (the fingerprint embeds every spec)."""
    smoke = ShardPlan.partition(
        [tiny_spec("solo-a", variants=(VariantSpec("run"),), expect=()),
         tiny_spec("solo-b", variants=(VariantSpec("run"),), expect=())],
        2)
    paper = ShardPlan.partition(
        [tiny_spec("solo-a", variants=(VariantSpec("run"),), expect=(),
                   preset="paper"),
         tiny_spec("solo-b", variants=(VariantSpec("run"),), expect=(),
                   preset="paper")],
        2)
    # cells (id, variant, seed) are identical; only the specs differ
    assert smoke.selection_doc()["cells"] == paper.selection_doc()["cells"]
    assert smoke.selection_doc() != paper.selection_doc()
    docs = [
        shard_doc(1, 2, [], [["solo-a", "run", 1]],
                  {"solo-a": {"spec": smoke.specs[0].to_dict(),
                              "errors": {},
                              "results": {"run": fake_summary()}}}),
        shard_doc(2, 2, [], [["solo-b", "run", 1]],
                  {"solo-b": {"spec": paper.specs[1].to_dict(),
                              "errors": {},
                              "results": {"run": fake_summary()}}}),
    ]
    docs[0]["selection"] = smoke.selection_doc()
    docs[1]["selection"] = paper.selection_doc()
    with pytest.raises(ConfigurationError, match="different plans"):
        merge_documents(docs)


def test_merge_rejects_claimed_cell_without_data():
    """A shard that claims a cell but carries neither a result nor an
    error for it (a partially written artifact) must not merge."""
    docs = two_shard_docs(tiny_spec("partial"))
    del docs[1]["scenarios"]["partial"]["results"]["unthrottled"]
    with pytest.raises(ConfigurationError, match="neither a result"):
        merge_documents(docs)
    # a claimed cell of an entirely absent scenario is caught too
    docs = two_shard_docs(tiny_spec("absent"))
    del docs[1]["scenarios"]["absent"]
    with pytest.raises(ConfigurationError, match="no data"):
        merge_documents(docs)


def test_merge_surfaces_malformed_artifacts_as_config_errors():
    # a scenario entry without a spec
    docs = two_shard_docs(tiny_spec("no-spec"))
    del docs[0]["scenarios"]["no-spec"]["spec"]
    with pytest.raises(ConfigurationError, match="no spec"):
        merge_documents(docs)
    # a result summary missing required fields
    docs = two_shard_docs(tiny_spec("bad-summary"))
    del docs[0]["scenarios"]["bad-summary"]["results"]["throttled"][
        "completed"]
    with pytest.raises(ConfigurationError, match="malformed"):
        merge_documents(docs)


def test_merge_rejects_disagreeing_specs():
    docs = two_shard_docs(tiny_spec("skew"))
    docs[1]["scenarios"]["skew"]["spec"]["title"] = "something else"
    with pytest.raises(ConfigurationError, match="disagree"):
        merge_documents(docs)


def test_merge_rejects_unknown_documents_and_schemas():
    with pytest.raises(ConfigurationError, match="nothing to merge"):
        merge_documents([])
    with pytest.raises(ConfigurationError, match="neither"):
        merge_documents([{"schema": 3, "name": "mystery"}])
    docs = two_shard_docs(tiny_spec("old"))
    docs[0]["schema"] = 2
    with pytest.raises(ConfigurationError, match="schema"):
        merge_documents(docs)


def test_merge_accepts_schema2_scenario_artifacts():
    """Pre-shard per-scenario artifacts merge as complete scenarios."""
    spec = tiny_spec("legacy", expect=(
        Expectation("completed", ">", 0, variant="throttled"),))
    spec_doc = spec.to_dict()
    del spec_doc["version"]  # schema-2 spec docs predate versioning
    legacy = {
        "schema": 2, "name": "scenario_legacy", "python": "3.12.0",
        "spec": spec_doc, "ok": True, "wall_seconds": 1.0,
        "scenario_metrics": {}, "checks": [],
        "errors": {},
        "results": {"throttled": fake_summary(5),
                    "unthrottled": fake_summary(4)},
    }
    merge = merge_documents([legacy])
    payload = merge.scenarios["legacy"]
    assert payload["ok"]
    assert payload["scenario_metrics"]["total_completed"] == 9.0
    assert payload["checks"][0]["passed"]
    # and a scenario id arriving twice is a conflict, not a guess
    with pytest.raises(ConfigurationError, match="more than one"):
        merge_documents([legacy, dict(legacy)])


def test_monitors_expectations_match_between_paths(tmp_path):
    """A monitors scenario with expectations must evaluate them the
    same way single-machine and sharded (both to failure here, since
    monitors scenarios have no metrics)."""
    spec = ScenarioSpec(scenario_id="mon-exp", title="Monitors",
                        family="test", kind="monitors", workload="sales",
                        clients=1, render="monitors",
                        expect=(Expectation("completed", ">", 0,
                                            variant="run"),))
    single = run_scenario(spec)
    assert not single.ok and len(single.checks) == 1
    single_path = write_scenario_artifact(str(tmp_path / "a"), single)

    plan = ShardPlan.partition([spec], 1)
    merge = merge_documents([{
        "schema": ARTIFACT_SCHEMA, "name": "shard_1of1",
        **run_shard(plan, 1)}])
    assert not merge.ok
    merged_dir = tmp_path / "b"
    write_merged_artifacts(str(merged_dir), merge)
    assert canonical_file(single_path) \
        == canonical_file(merged_dir / "BENCH_scenario_mon-exp.json")


def test_merge_summary_records_wall_seconds_percentiles():
    """The merge summary digests per-cell wall clocks (the in-repo
    data source `--order cost` falls back on), and the digest is
    canonically volatile — derived from wall clocks, zeroed with
    them."""
    spec = tiny_spec("ptile", expect=())
    docs = two_shard_docs(spec)
    scenarios_1 = docs[0]["scenarios"]["ptile"]["results"]
    scenarios_2 = docs[1]["scenarios"]["ptile"]["results"]
    scenarios_1["throttled"]["wall_seconds"] = 4.0
    scenarios_2["unthrottled"]["wall_seconds"] = 1.0
    merge = merge_documents(docs)
    assert sorted(merge.cell_wall_seconds) == [1.0, 4.0]
    summary = merge.summary_payload()
    assert summary["wall_seconds_percentiles"] \
        == {"cells": 2, "p50": 1.0, "p90": 4.0, "max": 4.0}
    assert canonical_document(summary)["wall_seconds_percentiles"] == 0

    # a standalone (pre-shard) scenario artifact contributes its cells
    single = {"schema": ARTIFACT_SCHEMA, "name": "scenario_solo",
              "spec": tiny_spec("solo", expect=()).to_dict(),
              "wall_seconds": 9.0, "errors": {},
              "results": {"throttled": fake_summary(),
                          "unthrottled": fake_summary()}}
    walls = merge_documents([single]).cell_wall_seconds
    assert walls == [0.5, 0.5]  # per-variant summaries, not the total


def test_wall_seconds_percentiles_digest():
    assert wall_seconds_percentiles([]) \
        == {"cells": 0, "p50": 0.0, "p90": 0.0, "max": 0.0}
    digest = wall_seconds_percentiles([5.0, 1.0, 3.0, 2.0, 4.0])
    assert digest == {"cells": 5, "p50": 3.0, "p90": 5.0, "max": 5.0}
    # non-numeric junk from hand-edited artifacts is skipped
    assert wall_seconds_percentiles([1.0, "fast", None])["cells"] == 1


def test_entry_cell_walls_skips_untimed_cells():
    """Untimed cells (errored variants, zero/missing walls) never
    pollute the digest with phantom zeros."""
    from repro.experiments.shards import _entry_cell_walls

    assert _entry_cell_walls({"results": {
        "a": {"wall_seconds": 2.0}, "b": {"wall_seconds": 0.0}}}) == [2.0]
    # an all-errored experiment entry contributes nothing — its
    # scenario-level wall clock covers failed cells and must not
    # masquerade as one timed render cell
    assert _entry_cell_walls({"results": {}, "errors": {"a": "boom"},
                              "wall_seconds": 12.5}) == []
    # a monitors/trace entry contributes its single timed cell
    assert _entry_cell_walls({"wall_seconds": 0.25}) == [0.25]


def test_canonical_document_zeroes_volatile_fields_only():
    doc = {"wall_seconds": 1.5, "search_replays": 7, "python": "3.12",
           "completed": 9,
           "results": [{"wall_seconds": 2.5, "completed": 3}]}
    canonical = canonical_document(doc)
    assert canonical["wall_seconds"] == 0
    assert canonical["search_replays"] == 0
    assert canonical["python"] == 0
    assert canonical["completed"] == 9
    assert canonical["results"][0] == {"wall_seconds": 0, "completed": 3}
    # the original is untouched
    assert doc["wall_seconds"] == 1.5


# --------------------------------------------------- pinned equivalence
@pytest.mark.slow
def test_single_shard_merge_is_identity(tmp_path):
    """N=1: one shard owns everything; the merge must reproduce the
    single-machine artifact canonically byte-for-byte."""
    spec = tiny_spec("ident")
    single, merged = tmp_path / "single", tmp_path / "merged"
    write_scenario_artifact(str(single), run_scenario(spec))

    plan = ShardPlan.partition([spec], 1)
    path = write_shard_artifact(str(tmp_path), run_shard(plan, 1))
    write_merged_artifacts(str(merged), merge_artifact_files([path]))

    assert canonical_file(single / "BENCH_scenario_ident.json") \
        == canonical_file(merged / "BENCH_scenario_ident.json")


@pytest.mark.slow
def test_sharded_run_matches_single_machine(tmp_path):
    """The sharding correctness contract: 4 shards of a mixed selection
    (experiment variants split across shards, plus a monitors and a
    trace scenario) merge into artifacts canonically identical to the
    single-machine run."""
    specs = [
        tiny_spec("sh-a", expect=(
            Expectation("completed", ">", 0, variant="throttled"),
            Expectation("improvement", ">", -10.0),
        )),
        tiny_spec("sh-b", seed=2),
        monitors_spec("sh-mon"),
    ]
    single, merged = tmp_path / "single", tmp_path / "merged"
    for spec in specs:
        write_scenario_artifact(str(single), run_scenario(spec))

    plan = ShardPlan.partition(specs, 4)
    paths = [write_shard_artifact(str(tmp_path), run_shard(plan, index))
             for index in (1, 2, 3, 4)]
    merge = merge_artifact_files(paths)
    assert merge.shard_count == 4 and merge.cells_total == 5
    write_merged_artifacts(str(merged), merge)

    for spec in specs:
        name = f"BENCH_scenario_{spec.scenario_id}.json"
        assert canonical_file(single / name) \
            == canonical_file(merged / name), name


@pytest.mark.slow
def test_cli_shards_run_and_merge_match_scenarios_run(tmp_path, capsys):
    """The acceptance pin at CLI level: `repro shards run --shard k/4`
    four times plus `repro shards merge` equals one
    `repro scenarios run` of the same selection, canonically."""
    selection = ["abl-dyn", "fig1", "--clients", "2",
                 "--preset", "smoke", "--seed", "3"]
    single = tmp_path / "single"
    assert cli.main(["scenarios", "run", *selection,
                     "--out", str(single)]) == 0
    shard_dir = tmp_path / "shards"
    for index in (1, 2, 3, 4):
        assert cli.main(["shards", "run", "--shard", f"{index}/4",
                         *selection, "--out", str(shard_dir)]) == 0
    capsys.readouterr()
    merged = tmp_path / "merged"
    assert cli.main(["shards", "merge", str(shard_dir),
                     "--out", str(merged)]) == 0
    out = capsys.readouterr().out
    assert "abl-dyn" in out and "fig1" in out

    for name in ("BENCH_scenario_abl-dyn.json", "BENCH_scenario_fig1.json"):
        assert canonical_file(single / name) \
            == canonical_file(merged / name), name
    summary = json.loads((merged / "BENCH_shard_merge.json").read_text())
    assert summary["ok"] and summary["shard_count"] == 4


@pytest.mark.slow
def test_shard_run_reports_job_errors(tmp_path, capsys):
    """A failing cell is accounted in the shard artifact and the merge
    carries it into the scenario artifact's errors."""
    spec = tiny_spec("sh-broken", workload="mixed",
                     workload_params={"tpch_fraction": 0.3},
                     variants=(VariantSpec("run"),), expect=())
    # sabotage after validation: an unknown preset fails in the worker
    object.__setattr__(spec, "preset", "warp-speed")
    plan = ShardPlan.partition([spec], 1)
    payload = run_shard(plan, 1)
    assert "run" in payload["scenarios"]["sh-broken"]["errors"]
