"""Tests for gateways and the compilation governor (paper §4)."""

import pytest

from repro.config import GatewayConfig, ThrottleConfig, default_gateways
from repro.errors import ConfigurationError, GatewayTimeoutError
from repro.sim import Environment
from repro.throttle import CompilationGovernor, Gateway, ThrottleTicket
from repro.units import KiB, MiB


# ------------------------------------------------------------------ gateway
def test_gateway_admits_up_to_capacity(env):
    gw = Gateway(env, "small", capacity=2, timeout=100)
    granted = []

    def worker(env, name):
        req = yield from gw.acquire()
        granted.append((name, env.now))
        yield env.timeout(10)
        gw.release(req)

    for name in ("a", "b", "c"):
        env.process(worker(env, name))
    env.run()
    assert [g[0] for g in granted] == ["a", "b", "c"]
    assert granted[2][1] == pytest.approx(10.0)
    assert gw.stats.acquires == 3
    assert gw.stats.total_wait == pytest.approx(10.0)


def test_gateway_timeout_raises(env):
    gw = Gateway(env, "big", capacity=1, timeout=5)

    def holder(env):
        req = yield from gw.acquire()
        yield env.timeout(100)
        gw.release(req)

    def victim(env):
        try:
            yield from gw.acquire()
        except GatewayTimeoutError as exc:
            return (env.now, exc.gateway_name)

    env.process(holder(env))
    p = env.process(victim(env))
    env.run()
    assert p.value == (5.0, "big")
    assert gw.stats.timeouts == 1


def test_gateway_timeout_scaled(env):
    gw = Gateway(env, "g", capacity=1, timeout=100, time_scale=10)

    def holder(env):
        req = yield from gw.acquire()
        yield env.timeout(1000)
        gw.release(req)

    def victim(env):
        try:
            yield from gw.acquire()
        except GatewayTimeoutError:
            return env.now

    env.process(holder(env))
    p = env.process(victim(env))
    env.run()
    assert p.value == pytest.approx(10.0)


# ----------------------------------------------------------------- governor
def make_governor(env, enabled=True, dynamic=True, cpus=2):
    config = ThrottleConfig(enabled=enabled, dynamic_thresholds=dynamic)
    return CompilationGovernor(env, config, cpus=cpus)


def test_required_level_follows_thresholds(env):
    governor = make_governor(env)
    t0, t1, t2 = governor.thresholds
    assert governor.required_level(0) == 0
    assert governor.required_level(t0) == 0
    assert governor.required_level(t0 + 1) == 1
    assert governor.required_level(t1 + 1) == 2
    assert governor.required_level(t2 + 1) == 3


def test_capacities_follow_paper_ladder(env):
    governor = make_governor(env, cpus=8)
    assert [g.capacity for g in governor.gateways] == [32, 8, 1]


def test_ensure_acquires_in_order_and_release_reverses(env):
    governor = make_governor(env)
    ticket = ThrottleTicket("q")

    def compile_task(env):
        yield from governor.ensure(ticket, 50 * MiB)  # small + medium
        assert ticket.level == 2
        assert governor.gateways[0].active == 1
        assert governor.gateways[1].active == 1
        yield from governor.ensure(ticket, 200 * MiB)  # + big
        assert ticket.level == 3
        governor.release(ticket)
        assert ticket.level == 0
        assert all(g.active == 0 for g in governor.gateways)

    env.process(compile_task(env))
    env.run()


def test_disabled_governor_never_blocks(env):
    governor = make_governor(env, enabled=False)
    ticket = ThrottleTicket("q")

    def task(env):
        yield from governor.ensure(ticket, 500 * MiB)
        return ticket.level

    p = env.process(task(env))
    env.run()
    assert p.value == 0


def test_big_gateway_serializes(env):
    governor = make_governor(env, cpus=2)
    order = []

    def big_task(env, name, hold):
        ticket = ThrottleTicket(name)
        yield from governor.ensure(ticket, 200 * MiB)
        order.append((name, env.now))
        yield env.timeout(hold)
        governor.release(ticket)

    env.process(big_task(env, "q1", 10))
    env.process(big_task(env, "q2", 10))
    env.run()
    assert order[0][1] == 0.0
    assert order[1][1] == pytest.approx(10.0)


def test_census_counts_categories(env):
    governor = make_governor(env, cpus=4)

    def task(env, nbytes):
        ticket = ThrottleTicket()
        yield from governor.ensure(ticket, nbytes)
        yield env.timeout(100)
        governor.release(ticket)

    env.process(task(env, 10 * MiB))    # small
    env.process(task(env, 10 * MiB))    # small
    env.process(task(env, 100 * MiB))   # medium
    env.process(task(env, 300 * MiB))   # big
    env.run(until=1)
    census = governor.census()
    assert census == [2, 1, 1]


def test_dynamic_thresholds_formula(env):
    """threshold_medium = target * F_small / S_small (paper §4.1)."""
    governor = make_governor(env, cpus=4)

    def task(env, nbytes):
        ticket = ThrottleTicket()
        yield from governor.ensure(ticket, nbytes)
        yield env.timeout(100)
        governor.release(ticket)

    for _ in range(3):
        env.process(task(env, 10 * MiB))  # three small compilations
    env.run(until=1)
    # small target, so the formula is not clamped by the static ladder
    target = 200 * MiB
    governor.set_compile_target(target)
    expected_medium = int(target * governor.config.small_fraction / 3)
    assert governor.thresholds[1] == expected_medium
    assert governor.recomputations == 1


def test_dynamic_thresholds_only_tighten(env):
    governor = make_governor(env, cpus=2)
    governor.set_compile_target(100 * 1024 * MiB)  # absurdly large target
    assert governor.thresholds[1] <= governor.static_thresholds[1]
    assert governor.thresholds[2] <= governor.static_thresholds[2]


def test_dynamic_thresholds_respect_floor_and_order(env):
    governor = make_governor(env, cpus=2)
    governor.set_compile_target(1)  # absurdly small target
    t = governor.thresholds
    assert t[0] < t[1] < t[2]
    assert t[1] >= governor.config.min_dynamic_threshold


def test_none_target_restores_static_ladder(env):
    governor = make_governor(env, cpus=2)
    governor.set_compile_target(100 * MiB)
    governor.set_compile_target(None)
    assert governor.thresholds == list(governor.static_thresholds)


def test_dynamic_disabled_keeps_static(env):
    governor = make_governor(env, dynamic=False)
    governor.set_compile_target(10 * MiB)
    assert governor.thresholds == list(governor.static_thresholds)


def test_describe_mentions_all_gateways(env):
    governor = make_governor(env)
    text = governor.describe()
    for name in ("small", "medium", "big"):
        assert name in text


def test_threshold_order_validated():
    bad = (GatewayConfig(name="a", threshold=10 * MiB),
           GatewayConfig(name="b", threshold=5 * MiB))
    with pytest.raises(ConfigurationError):
        ThrottleConfig(gateways=bad)


def test_default_gateways_shape():
    gws = default_gateways()
    assert [g.name for g in gws] == ["small", "medium", "big"]
    assert gws[0].timeout < gws[1].timeout < gws[2].timeout
    assert gws[0].threshold < gws[1].threshold < gws[2].threshold
