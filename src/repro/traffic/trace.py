"""Streaming trace replay: timestamped query logs as arrival streams.

A trace is a timestamped query log — one event per line, JSONL
(``.jsonl``/``.ndjson``) or CSV (``.csv``) — replayed through the
open-loop admission path.  Readers **stream**: a multi-gigabyte log is
consumed line by line through a chain of composable generator
transforms (time-window slice, tenant filter, rate rescale, template
remap), never slurped.

The format contract is strict and errors name their line:

* every event needs a non-negative numeric ``t`` (paper seconds);
  ``template`` and ``tenant`` are optional strings
* unknown fields are a :class:`ConfigurationError` naming the line
* timestamps must be non-decreasing (a sorted log is what makes
  streaming replay possible)
* a malformed line raises — except that a *truncated trailing line*
  (the classic torn tail of a killed log writer) may be skipped with
  ``tolerate_tail=True``, mirroring the cell journal's tail repair

``synthesize_trace`` writes a log from any
:class:`~repro.traffic.arrivals.ArrivalProcess`, which is how the
``repro traces synth`` CLI builds fixtures and how the example trace in
``examples/`` was produced.
"""

from __future__ import annotations

import csv
import json
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traffic.arrivals import Arrival, ArrivalProcess

#: the complete field set a trace event may carry; ``outcome`` is
#: written by trace capture (what admission decided) and is pure
#: documentation on replay — it never influences arrivals
TRACE_FIELDS = ("t", "template", "tenant", "outcome")

#: valid ``outcome`` strings (the capture writer's vocabulary)
TRACE_OUTCOMES = ("queued", "admitted", "dropped_queue",
                  "dropped_timeout", "succeeded", "failed")


@dataclass(frozen=True)
class TraceEvent:
    """One parsed trace line (``line`` is 1-based, for diagnostics)."""

    at: float
    template: Optional[str] = None
    tenant: str = "default"
    outcome: Optional[str] = None
    line: int = 0


def _bad_line(path: str, line: int, why: str) -> ConfigurationError:
    return ConfigurationError(f"trace {path}: line {line}: {why}")


def _checked_time(raw, path: str, line: int,
                  previous: float) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise _bad_line(path, line,
                        f"'t' must be a number, got {raw!r}")
    at = float(raw)
    if at < 0:
        raise _bad_line(path, line, f"'t' must be >= 0, got {at!r}")
    if at < previous:
        raise _bad_line(
            path, line,
            f"out-of-order timestamp {at!r} (previous event was at "
            f"{previous!r}); traces must be sorted by 't'")
    return at


def _event_from_doc(doc: dict, path: str, line: int,
                    previous: float) -> TraceEvent:
    unknown = sorted(set(doc) - set(TRACE_FIELDS))
    if unknown:
        raise _bad_line(
            path, line,
            f"unknown field(s) {', '.join(unknown)}; valid fields: "
            f"{', '.join(TRACE_FIELDS)}")
    if "t" not in doc:
        raise _bad_line(path, line, "missing required field 't'")
    at = _checked_time(doc["t"], path, line, previous)
    template = doc.get("template")
    if template is not None and not isinstance(template, str):
        raise _bad_line(path, line,
                        f"'template' must be a string, got {template!r}")
    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise _bad_line(path, line,
                        f"'tenant' must be a non-empty string, got "
                        f"{tenant!r}")
    outcome = doc.get("outcome")
    if outcome is not None and outcome not in TRACE_OUTCOMES:
        raise _bad_line(path, line,
                        f"unknown 'outcome' {outcome!r}; valid "
                        f"outcomes: {', '.join(TRACE_OUTCOMES)}")
    return TraceEvent(at=at, template=template or None, tenant=tenant,
                      outcome=outcome, line=line)


def _read_jsonl(path: str, tolerate_tail: bool) -> Iterator[TraceEvent]:
    previous = 0.0
    pending: Optional[Tuple[int, str]] = None
    with open(path, encoding="utf-8", errors="replace") as fh:
        for number, raw in enumerate(fh, start=1):
            text = raw.strip()
            if not text:
                continue
            if pending is not None:
                # the malformed line was not the tail after all
                raise _bad_line(path, pending[0], pending[1])
            try:
                doc = json.loads(text)
            except ValueError:
                # hold the error: a torn *final* line may be tolerated
                pending = (number, "not valid JSON (truncated line?)")
                continue
            if not isinstance(doc, dict):
                raise _bad_line(path, number,
                                f"event must be a JSON object, got "
                                f"{type(doc).__name__}")
            event = _event_from_doc(doc, path, number, previous)
            previous = event.at
            yield event
    if pending is not None and not tolerate_tail:
        raise _bad_line(path, pending[0],
                        pending[1] + "; a truncated trailing line can "
                        "be skipped with tolerate_tail")


def _read_csv(path: str, tolerate_tail: bool) -> Iterator[TraceEvent]:
    previous = 0.0
    with open(path, encoding="utf-8", errors="replace", newline="") as fh:
        reader = csv.reader(fh)
        header: Optional[list] = None
        rows = ((reader.line_num, row) for row in reader)
        pending: Optional[Tuple[int, str]] = None
        for number, row in rows:
            if not row:
                continue
            if header is None:
                header = [cell.strip() for cell in row]
                unknown = sorted(set(header) - set(TRACE_FIELDS))
                if unknown:
                    raise _bad_line(
                        path, number,
                        f"unknown column(s) {', '.join(unknown)}; "
                        f"valid columns: {', '.join(TRACE_FIELDS)}")
                if "t" not in header:
                    raise _bad_line(path, number,
                                    "header must include a 't' column")
                continue
            if pending is not None:
                raise _bad_line(path, pending[0], pending[1])
            if len(row) != len(header):
                pending = (number,
                           f"expected {len(header)} column(s), got "
                           f"{len(row)} (truncated line?)")
                continue
            doc: Dict[str, object] = {}
            for key, cell in zip(header, row):
                cell = cell.strip()
                if key == "t":
                    try:
                        doc["t"] = float(cell)
                    except ValueError:
                        pending = (number,
                                   f"'t' must be a number, got {cell!r} "
                                   f"(truncated line?)")
                        break
                elif cell:
                    doc[key] = cell
            if pending is not None:
                continue
            event = _event_from_doc(doc, path, number, previous)
            previous = event.at
            yield event
        if header is None:
            raise ConfigurationError(f"trace {path}: empty trace (no "
                                     f"header row)")
        if pending is not None and not tolerate_tail:
            raise _bad_line(path, pending[0],
                            pending[1] + "; a truncated trailing line "
                            "can be skipped with tolerate_tail")


def read_trace(path: str,
               tolerate_tail: bool = False) -> Iterator[TraceEvent]:
    """Stream a trace file's events, validating as they are read.

    The reader is picked by extension (``.jsonl``/``.ndjson`` or
    ``.csv``).  Malformed content raises :class:`ConfigurationError`
    naming the offending line; ``tolerate_tail`` skips a truncated
    *final* line instead (torn tails only — a malformed line followed
    by more data always raises).
    """
    lowered = path.lower()
    if lowered.endswith((".jsonl", ".ndjson")):
        reader = _read_jsonl
    elif lowered.endswith(".csv"):
        reader = _read_csv
    else:
        raise ConfigurationError(
            f"trace {path!r} has an unsupported extension; expected "
            f".jsonl, .ndjson or .csv")
    try:
        yield from reader(path, tolerate_tail)
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path!r}: "
                                 f"{exc}") from None


# --------------------------------------------------------- transforms
def time_window(events: Iterable[TraceEvent], start: float,
                end: float) -> Iterator[TraceEvent]:
    """Keep events with ``start <= t < end``, rebased to start at 0."""
    for event in events:
        if event.at >= end:
            return  # sorted input: nothing later can match
        if event.at >= start:
            yield TraceEvent(at=event.at - start, template=event.template,
                             tenant=event.tenant, outcome=event.outcome,
                             line=event.line)


def tenant_filter(events: Iterable[TraceEvent],
                  tenants: Iterable[str]) -> Iterator[TraceEvent]:
    """Keep only events from the named tenants."""
    keep = frozenset(tenants)
    return (event for event in events if event.tenant in keep)


def rate_rescale(events: Iterable[TraceEvent],
                 factor: float) -> Iterator[TraceEvent]:
    """Compress (>1) or stretch (<1) the schedule by ``factor``."""
    if factor <= 0:
        raise ConfigurationError(f"rate_rescale factor must be "
                                 f"positive, got {factor!r}")
    for event in events:
        yield TraceEvent(at=event.at / factor, template=event.template,
                         tenant=event.tenant, outcome=event.outcome,
                         line=event.line)


def template_remap(events: Iterable[TraceEvent],
                   mapping: Dict[str, str]) -> Iterator[TraceEvent]:
    """Rename templates (unmapped names pass through untouched)."""
    for event in events:
        template = mapping.get(event.template, event.template) \
            if event.template is not None else None
        yield TraceEvent(at=event.at, template=template,
                         tenant=event.tenant, outcome=event.outcome,
                         line=event.line)


def trace_arrivals(spec, base: Optional[str] = None) -> Iterator[Arrival]:
    """A :class:`TrafficSpec`'s trace as a transformed arrival stream.

    Applies the spec's transforms in a fixed order — window slice,
    tenant filter, template remap, rate rescale — and yields plain
    :class:`~repro.traffic.arrivals.Arrival` values the open-loop
    generator consumes.  ``base`` resolves a relative trace path (the
    scenario loader passes the spec file's directory).
    """
    import os

    path = spec.trace
    if base is not None and not os.path.isabs(path):
        path = os.path.join(base, path)
    events: Iterable[TraceEvent] = read_trace(
        path, tolerate_tail=spec.tolerate_tail)
    if spec.window is not None:
        events = time_window(events, spec.window[0], spec.window[1])
    if spec.tenants is not None:
        events = tenant_filter(events, spec.tenants)
    if spec.remap:
        events = template_remap(events, dict(spec.remap))
    if spec.rate_scale != 1.0:
        events = rate_rescale(events, spec.rate_scale)
    for event in events:
        yield Arrival(at=event.at, tenant=event.tenant,
                      template=event.template)


# ---------------------------------------------------------- utilities
def summarize_trace(path: str, tolerate_tail: bool = False) -> dict:
    """One streaming pass over a trace: counts, span, mean rate."""
    events = 0
    first = last = None
    tenants: Dict[str, int] = {}
    templates: Dict[str, int] = {}
    outcomes: Dict[str, Dict[str, int]] = {}
    admitted = frozenset(("admitted", "succeeded", "failed"))
    dropped = frozenset(("dropped_queue", "dropped_timeout"))
    for event in read_trace(path, tolerate_tail=tolerate_tail):
        events += 1
        if first is None:
            first = event.at
        last = event.at
        tenants[event.tenant] = tenants.get(event.tenant, 0) + 1
        if event.template is not None:
            templates[event.template] = \
                templates.get(event.template, 0) + 1
        if event.outcome is not None:
            row = outcomes.setdefault(
                event.tenant, {"offered": 0, "admitted": 0, "dropped": 0})
            row["offered"] += 1
            if event.outcome in admitted:
                row["admitted"] += 1
            elif event.outcome in dropped:
                row["dropped"] += 1
    span = (last - first) if events else 0.0
    return {
        "events": events,
        "t_first": first,
        "t_last": last,
        "span_seconds": span,
        "mean_rate": (events / span) if span > 0 else None,
        "tenants": dict(sorted(tenants.items())),
        "templates": dict(sorted(templates.items())),
        # per-tenant admission breakdown of captured traces; empty
        # when no event carries an 'outcome'
        "tenant_outcomes": dict(sorted(outcomes.items())),
    }


def synthesize_trace(path: str, process: ArrivalProcess, duration: float,
                     seed: int = 3, workload=None,
                     tenant: str = "default") -> int:
    """Write a JSONL trace from an arrival process; returns the count.

    With a ``workload`` (anything exposing ``template_names()``) each
    event is stamped with a deterministically chosen template, so the
    replay exercises the workload's real query mix; without one the
    events carry no template and replay draws fresh queries.
    """
    if not path.lower().endswith((".jsonl", ".ndjson")):
        raise ConfigurationError(
            f"synthesized traces are JSONL; {path!r} should end in "
            f".jsonl or .ndjson")
    names = list(workload.template_names()) if workload is not None else []
    schedule_rng = random.Random(f"{seed}/synth/arrivals")
    template_rng = random.Random(f"{seed}/synth/templates")
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for arrival in process.arrivals(schedule_rng, duration):
            doc: Dict[str, object] = {"t": round(arrival.at, 6)}
            template = arrival.template
            if template is None and names:
                template = template_rng.choice(names)
            if template is not None:
                doc["template"] = template
            doc["tenant"] = arrival.tenant if arrival.tenant != "default" \
                else tenant
            if doc["tenant"] == "default":
                del doc["tenant"]
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
            count += 1
    return count
