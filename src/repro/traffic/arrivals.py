"""Seeded arrival processes for open-loop traffic.

An :class:`ArrivalProcess` turns a seeded RNG into a monotone stream of
:class:`Arrival` events — *when* sessions show up, decoupled from *what*
they run (the workload's query templates) and from *how fast* the server
drains them.  That decoupling is the whole point of open-loop load: a
closed-loop client politely waits out a slow server, so saturation
self-limits; an open-loop schedule keeps arriving and the overload has
to go somewhere (the admission queue, then the drop counters).

Every generator draws from the one ``random.Random`` it is handed and
yields arrivals in non-decreasing time order, so a (seed, process,
duration) triple fully determines the schedule — the determinism
contract the executor equivalence tests pin.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Arrival:
    """One scheduled session: when it arrives, who sent it, what it runs.

    ``template`` is optional: ``None`` lets the session draw a fresh
    query from the workload generator; a name replays that specific
    template (trace replay).  Times are in paper seconds from the start
    of the run.
    """

    at: float
    tenant: str = "default"
    template: Optional[str] = None


class ArrivalProcess:
    """Protocol: a named, seeded generator of arrival schedules.

    Subclasses validate their parameters in ``__init__`` (raising
    :class:`ConfigurationError`, so a bad scenario fails at definition
    time, not mid-run) and implement :meth:`arrivals`.
    """

    name = "arrivals"

    def arrivals(self, rng: random.Random,
                 duration: float) -> Iterator[Arrival]:
        """Yield arrivals with ``0 <= at < duration``, time-ordered."""
        raise NotImplementedError


def _positive(value: float, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{what} must be a positive number, "
                                 f"got {value!r}")
    return float(value)


def _non_negative(value: float, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{what} must be a non-negative number, "
                                 f"got {value!r}")
    return float(value)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` sessions per paper second."""

    name = "poisson"

    def __init__(self, rate: float = 0.01):
        self.rate = _positive(rate, "poisson rate")

    def arrivals(self, rng, duration):
        at = rng.expovariate(self.rate)
        while at < duration:
            yield Arrival(at=at)
            at += rng.expovariate(self.rate)


class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed inter-arrival gaps (Pareto with shape ``alpha``).

    The mean gap is ``1/rate`` — matched to a Poisson process of the
    same rate — but mass moves into long quiet stretches punctuated by
    tight bursts, the classic self-similar traffic shape.  ``alpha``
    must exceed 1 for the mean to exist; values near 1 are the
    burstiest.
    """

    name = "pareto"

    def __init__(self, rate: float = 0.01, alpha: float = 1.5):
        self.rate = _positive(rate, "pareto rate")
        self.alpha = _positive(alpha, "pareto alpha")
        if self.alpha <= 1.0:
            raise ConfigurationError(
                f"pareto alpha must be > 1 for a finite mean gap, "
                f"got {self.alpha!r}")
        #: scale chosen so the mean gap is exactly 1/rate
        self._scale = (self.alpha - 1.0) / (self.alpha * self.rate)

    def arrivals(self, rng, duration):
        at = self._scale * rng.paretovariate(self.alpha)
        while at < duration:
            yield Arrival(at=at)
            at += self._scale * rng.paretovariate(self.alpha)


class DiurnalArrivals(ArrivalProcess):
    """A day/night cycle: the rate swings between ``base_rate`` (the
    trough) and ``peak_rate`` over each ``period`` paper seconds.

    Implemented by thinning a ``peak_rate`` Poisson stream, which keeps
    the process exact for the sinusoidal rate curve rather than
    stair-stepping it.
    """

    name = "diurnal"

    def __init__(self, base_rate: float = 0.002, peak_rate: float = 0.02,
                 period: float = 3600.0):
        self.base_rate = _positive(base_rate, "diurnal base_rate")
        self.peak_rate = _positive(peak_rate, "diurnal peak_rate")
        self.period = _positive(period, "diurnal period")
        if self.peak_rate < self.base_rate:
            raise ConfigurationError(
                f"diurnal peak_rate ({self.peak_rate!r}) must be >= "
                f"base_rate ({self.base_rate!r})")

    def rate_at(self, at: float) -> float:
        swing = (self.peak_rate - self.base_rate) / 2.0
        midpoint = self.base_rate + swing
        return midpoint - swing * math.cos(2.0 * math.pi * at / self.period)

    def arrivals(self, rng, duration):
        at = 0.0
        while True:
            at += rng.expovariate(self.peak_rate)
            if at >= duration:
                return
            if rng.random() * self.peak_rate <= self.rate_at(at):
                yield Arrival(at=at)


class FlashCrowdArrivals(ArrivalProcess):
    """A steady trickle with one sudden spike (the flash crowd).

    ``base_rate`` sessions/s outside the spike (0 = quiet), jumping to
    ``spike_rate`` for ``spike_duration`` seconds starting at
    ``spike_at``.  Thinning against the piecewise-constant rate keeps
    the spike edges exact.
    """

    name = "flash_crowd"

    def __init__(self, base_rate: float = 0.005, spike_rate: float = 0.1,
                 spike_at: float = 600.0, spike_duration: float = 300.0):
        self.base_rate = _non_negative(base_rate, "flash_crowd base_rate")
        self.spike_rate = _positive(spike_rate, "flash_crowd spike_rate")
        self.spike_at = _non_negative(spike_at, "flash_crowd spike_at")
        self.spike_duration = _positive(spike_duration,
                                        "flash_crowd spike_duration")
        if self.spike_rate < self.base_rate:
            raise ConfigurationError(
                f"flash_crowd spike_rate ({self.spike_rate!r}) must be "
                f">= base_rate ({self.base_rate!r})")

    def rate_at(self, at: float) -> float:
        in_spike = self.spike_at <= at < self.spike_at + self.spike_duration
        return self.spike_rate if in_spike else self.base_rate

    def arrivals(self, rng, duration):
        at = 0.0
        while True:
            at += rng.expovariate(self.spike_rate)
            if at >= duration:
                return
            if rng.random() * self.spike_rate <= self.rate_at(at):
                yield Arrival(at=at)


class TenantMixArrivals(ArrivalProcess):
    """A noisy-neighbor mix: one named sub-process per tenant.

    ``tenants`` maps tenant name to a sub-process document (``process``
    naming the factory plus its parameters), e.g. a steady ``poisson``
    tenant sharing the server with a ``flash_crowd`` one.  Each tenant
    streams from its own derived RNG, so adding a tenant never perturbs
    another tenant's schedule; the merged stream is time-ordered with
    ties broken by tenant name.
    """

    name = "tenant_mix"

    def __init__(self, tenants: Optional[Dict[str, dict]] = None):
        if not isinstance(tenants, dict) or not tenants:
            raise ConfigurationError(
                "tenant_mix needs a non-empty 'tenants' mapping of "
                "tenant name -> {process, ...params}")
        self.tenants: Dict[str, ArrivalProcess] = {}
        for tenant in sorted(tenants):
            doc = tenants[tenant]
            if not isinstance(doc, dict) or "process" not in doc:
                raise ConfigurationError(
                    f"tenant {tenant!r} needs a 'process' key naming "
                    f"its arrival process")
            params = {key: value for key, value in doc.items()
                      if key != "process"}
            process = make_arrival_process(doc["process"], **params)
            if isinstance(process, TenantMixArrivals):
                raise ConfigurationError(
                    f"tenant {tenant!r} cannot nest another tenant_mix")
            self.tenants[tenant] = process

    @staticmethod
    def _labeled(process, tenant, child, duration):
        for a in process.arrivals(child, duration):
            yield Arrival(at=a.at, tenant=tenant, template=a.template)

    def arrivals(self, rng, duration):
        streams = []
        # one base draw, then a per-tenant child keyed by name — so a
        # tenant's schedule depends only on (seed, its own name), never
        # on which other tenants share the mix
        base = rng.random()
        for tenant in sorted(self.tenants):
            child = random.Random(f"{base}/{tenant}")
            streams.append(self._labeled(self.tenants[tenant], tenant,
                                         child, duration))
        merged = heapq.merge(*streams,
                             key=lambda a: (a.at, a.tenant))
        yield from merged


#: arrival-process factories by name (TrafficSpec validation and the
#: `repro traces synth` CLI use the key set as the list of valid names)
ARRIVAL_FACTORIES = {
    "poisson": PoissonArrivals,
    "pareto": ParetoArrivals,
    "diurnal": DiurnalArrivals,
    "flash_crowd": FlashCrowdArrivals,
    "tenant_mix": TenantMixArrivals,
}


def make_arrival_process(name: str, **params) -> ArrivalProcess:
    """Instantiate an arrival process by name."""
    try:
        factory = ARRIVAL_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown arrival process {name!r}; valid processes: "
            f"{', '.join(sorted(ARRIVAL_FACTORIES))}") from None
    try:
        return factory(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for arrival process {name!r}: {exc}") \
            from None
