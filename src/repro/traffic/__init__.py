"""Open-loop traffic: arrival processes, trace replay, open admission.

The traffic subsystem decouples *when sessions arrive* from the
workload's *what they run*:

* :mod:`repro.traffic.arrivals` — seeded, deterministic arrival
  processes (Poisson, heavy-tailed Pareto, diurnal cycles, flash-crowd
  spikes, multi-tenant noisy-neighbor mixes)
* :mod:`repro.traffic.trace` — streaming CSV/JSONL query-log replay
  through composable transforms (window / tenant filter / rate rescale
  / template remap), with strict line-numbered validation
* :mod:`repro.traffic.spec` — the frozen, round-trippable
  :class:`TrafficSpec` that puts either on a scenario as its
  ``traffic`` axis
* :mod:`repro.traffic.openloop` — the :class:`OpenLoopGenerator`
  driving open-loop session admission with explicit drop/queue
  accounting

See ``docs/traffic.md`` for the full model and the open-loop vs
closed-loop decision guide.
"""

from repro.traffic.arrivals import (
    ARRIVAL_FACTORIES,
    Arrival,
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    ParetoArrivals,
    PoissonArrivals,
    TenantMixArrivals,
    make_arrival_process,
)
from repro.traffic.openloop import (
    OpenLoopGenerator,
    OpenLoopStats,
    OpenLoopStatsView,
)
from repro.traffic.spec import TrafficSpec
from repro.traffic.trace import (
    TRACE_FIELDS,
    TRACE_OUTCOMES,
    TraceEvent,
    rate_rescale,
    read_trace,
    summarize_trace,
    synthesize_trace,
    template_remap,
    tenant_filter,
    time_window,
    trace_arrivals,
)

__all__ = [
    "ARRIVAL_FACTORIES",
    "Arrival",
    "ArrivalProcess",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "OpenLoopGenerator",
    "OpenLoopStats",
    "OpenLoopStatsView",
    "ParetoArrivals",
    "PoissonArrivals",
    "TRACE_FIELDS",
    "TRACE_OUTCOMES",
    "TenantMixArrivals",
    "TraceEvent",
    "TrafficSpec",
    "make_arrival_process",
    "rate_rescale",
    "read_trace",
    "summarize_trace",
    "synthesize_trace",
    "template_remap",
    "tenant_filter",
    "time_window",
    "trace_arrivals",
]
