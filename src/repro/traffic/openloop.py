"""Open-loop session admission: arrivals on a schedule, drops on record.

The closed-loop :class:`~repro.workload.loadgen.LoadGenerator` models N
patient users: when the server slows down, they wait, so offered load
self-limits at exactly the service rate.  The
:class:`OpenLoopGenerator` here removes that feedback: sessions arrive
whenever the :class:`~repro.traffic.arrivals.ArrivalProcess` (or a
replayed trace) says they do.  Each arrival asks for one of
``max_sessions`` admission slots; if the admission queue is already
``queue_limit`` deep it is **dropped on arrival**, and a queued session
that waits longer than ``queue_timeout`` is **dropped on timeout**.
Admitted sessions run exactly one query — an open-loop user does not
retry; the next arrival is already on its way.

Who wins a contended slot is delegated to a pluggable
:mod:`admission policy <repro.admission.policies>`; the default
(``fifo``, also used when no :class:`~repro.admission.spec.
AdmissionSpec` is given) is pinned byte-identical to the original
inline FIFO ``Resource`` grab.  With ``capture=True`` the generator
additionally records every offered arrival for
:mod:`replayable trace capture <repro.admission.capture>`.

That makes overload *visible*: offered vs admitted load, drop counts
and queue-wait percentiles are first-class facts
(:meth:`OpenLoopGenerator.facts`), summarized into artifacts as the
``open_loop`` block.  Every fact is a deterministic simulated number —
pinned, never volatile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.admission.capture import OUTCOME_NAMES, capture_event
from repro.admission.policies import make_policy
from repro.admission.spec import AdmissionSpec
from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.server.server import DatabaseServer
from repro.sim import state as session_state
from repro.sim.state import SessionTable
from repro.traffic.spec import TrafficSpec
from repro.workload.base import Workload, WorkloadQuery


@dataclass
class OpenLoopStats:
    """Offered/admitted/drop accounting, as a stand-alone record.

    The generator itself now keeps per-session facts in a
    struct-of-arrays :class:`~repro.sim.state.SessionTable` and exposes
    them through :class:`OpenLoopStatsView` (same attribute surface);
    this dataclass remains for callers assembling stats by hand.
    """

    offered: int = 0
    admitted: int = 0
    succeeded: int = 0
    failed: int = 0
    #: dropped on arrival: the admission queue was already full
    dropped_queue: int = 0
    #: dropped after queueing: no slot granted within queue_timeout
    dropped_timeout: int = 0
    #: sim-seconds each admitted session waited for its slot
    queue_waits: List[float] = field(default_factory=list)
    #: tenant -> offered count (only interesting for multi-tenant mixes)
    offered_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: tenant -> dropped count (both drop kinds)
    dropped_by_tenant: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return self.dropped_queue + self.dropped_timeout


class OpenLoopStatsView:
    """The :class:`OpenLoopStats` attribute surface over a
    :class:`~repro.sim.state.SessionTable`.

    Every value is derived from the table's outcome column on access,
    so the hot admission path writes one array cell per transition
    instead of bumping a handful of counters and growing a wait list.
    """

    __slots__ = ("_table",)

    def __init__(self, table: SessionTable):
        self._table = table

    @property
    def offered(self) -> int:
        return len(self._table)

    @property
    def admitted(self) -> int:
        return self._table.count(session_state.ADMITTED,
                                 session_state.SUCCEEDED,
                                 session_state.FAILED)

    @property
    def succeeded(self) -> int:
        return self._table.count(session_state.SUCCEEDED)

    @property
    def failed(self) -> int:
        return self._table.count(session_state.FAILED)

    @property
    def dropped_queue(self) -> int:
        return self._table.count(session_state.DROPPED_QUEUE)

    @property
    def dropped_timeout(self) -> int:
        return self._table.count(session_state.DROPPED_TIMEOUT)

    @property
    def dropped(self) -> int:
        return self._table.count(session_state.DROPPED_QUEUE,
                                 session_state.DROPPED_TIMEOUT)

    @property
    def queue_waits(self) -> List[float]:
        return self._table.admission_waits()

    @property
    def offered_by_tenant(self) -> Dict[str, int]:
        return self._table.by_tenant(
            session_state.QUEUED, session_state.ADMITTED,
            session_state.DROPPED_QUEUE, session_state.DROPPED_TIMEOUT,
            session_state.SUCCEEDED, session_state.FAILED)

    @property
    def dropped_by_tenant(self) -> Dict[str, int]:
        return self._table.by_tenant(session_state.DROPPED_QUEUE,
                                     session_state.DROPPED_TIMEOUT)


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of already-sorted ``values``."""
    if not values:
        return 0.0
    rank = max(1, int(round(fraction * len(values) + 0.5)))
    return values[min(rank, len(values)) - 1]


class OpenLoopGenerator:
    """Drives one server with open-loop, schedule-driven sessions.

    A drop-in sibling of the closed-loop ``LoadGenerator``: same
    constructor shape (server, workload, duration, metrics, seed), same
    ``run()``/``totals()`` surface, but sessions come from
    ``traffic`` — a :class:`~repro.traffic.spec.TrafficSpec` naming an
    arrival process or a trace — instead of think-time loops.
    ``clients`` only serves as the admission-cap default when the spec
    leaves ``max_sessions`` unset.

    Determinism: the arrival schedule streams from one dedicated RNG
    and every session derives its own RNG from its arrival index, so
    results never depend on event interleaving.
    """

    def __init__(self, server: DatabaseServer, workload: Workload,
                 traffic: TrafficSpec, duration: float,
                 metrics: Optional[MetricsCollector] = None,
                 seed: int = 1, clients: int = 30,
                 trace_base: Optional[str] = None,
                 admission: Optional[AdmissionSpec] = None,
                 capture: bool = False):
        self.server = server
        self.workload = workload
        self.traffic = traffic
        self.duration = duration
        self.metrics = metrics or server.metrics
        self.seed = seed
        self.trace_base = trace_base
        self.admission = admission
        self.max_sessions = (traffic.max_sessions
                             if traffic.max_sessions is not None
                             else clients)
        #: per-session admission ledger (struct-of-arrays; row = arrival
        #: index) — at 10^5+ sessions this is the state that must not
        #: be one Python object per session
        self.table = SessionTable()
        self.stats = OpenLoopStatsView(self.table)
        self._policy = make_policy(
            admission, server.env, capacity=self.max_sessions,
            queue_limit=traffic.queue_limit,
            time_scale=server.config.time_scale)
        #: offered arrivals on record for trace capture (index, arrival)
        self._capture: Optional[list] = [] if capture else None

    # ------------------------------------------------------- lifecycle
    def _arrival_stream(self):
        if self.traffic.trace is not None:
            from repro.traffic.trace import trace_arrivals

            return trace_arrivals(self.traffic, base=self.trace_base)
        process = self.traffic.build_arrivals()
        rng = random.Random(f"{self.seed}/arrivals")
        scale = self.server.config.time_scale
        # the schedule is authored in paper seconds; generate up to the
        # raw horizon whose rescaled times still land inside the run
        horizon = self.duration * scale * self.traffic.rate_scale
        arrivals = process.arrivals(rng, horizon)
        if self.traffic.rate_scale != 1.0:
            factor = self.traffic.rate_scale
            from repro.traffic.arrivals import Arrival

            arrivals = (Arrival(at=a.at / factor, tenant=a.tenant,
                                template=a.template) for a in arrivals)
        return arrivals

    def start(self) -> None:
        """Spawn the admission driver (call before ``env.run``)."""
        self.server.start()
        self.server.env.process(self._admit())

    def run(self) -> None:
        """Start the driver and run the simulation to ``duration``."""
        self.start()
        self.server.env.run(until=self.duration)

    # ------------------------------------------------------- processes
    def _admit(self):
        """The admission driver: one wakeup per distinct arrival time.

        Arrivals landing at the same instant (trace replays and burst
        scenarios produce these by the thousand) admit as one cohort
        from a single timer event, a tight loop over preassigned
        indices — instead of re-entering the scheduler per session.
        Cohort members were already processed back-to-back in the same
        callback chain before (an arrival at ``now`` never yielded), so
        batching cannot reorder a single event.
        """
        env = self.server.env
        scale = self.server.config.time_scale
        table = self.table
        policy = self._policy
        index = 0
        stream = iter(self._arrival_stream())
        pending = next(stream, None)
        while pending is not None:
            at = pending.at / scale  # paper seconds -> sim clock
            if at >= self.duration:
                break
            cohort = [pending]
            pending = next(stream, None)
            while pending is not None and pending.at / scale == at:
                cohort.append(pending)
                pending = next(stream, None)
            if at > env.now:
                yield env.timeout(at - env.now)
            for arrival in cohort:
                table.offered(index, env.now, arrival.tenant)
                if self._capture is not None:
                    self._capture.append((index, arrival))
                if policy.would_drop(arrival.tenant):
                    table.resolve(index, session_state.DROPPED_QUEUE)
                else:
                    rng = random.Random(f"{self.seed}/open/{index}")
                    env.process(self._session(index, arrival, rng))
                index += 1

    def _session(self, index: int, arrival, rng: random.Random):
        env = self.server.env
        scale = self.server.config.time_scale
        table = self.table
        queued_at = env.now
        request = self._policy.request(arrival.tenant)
        timeout = env.timeout(self.traffic.queue_timeout / scale)
        yield env.any_of([request, timeout])
        if not request.granted:
            self._policy.cancel(request)
            table.resolve(index, session_state.DROPPED_TIMEOUT,
                          finished=env.now)
            return
        wait = env.now - queued_at
        table.resolve(index, session_state.ADMITTED, wait=wait)
        try:
            query = self._query_for(arrival, rng)
            submitted = env.now
            label = f"{arrival.tenant}/{query.template}"
            outcome = yield from self.server.run_query(query.text, label)
            self.metrics.record_query(QueryRecord(
                client=index,
                template=query.template,
                submitted=submitted,
                finished=env.now,
                ok=outcome.ok,
                error_kind=outcome.error_kind,
                cached_plan=outcome.cached_plan,
                degraded_plan=outcome.degraded_plan,
                compile_time=outcome.compile_time,
                gateway_wait=outcome.gateway_wait,
                grant_wait=outcome.grant_wait,
                execution_time=outcome.execution_time,
                compile_peak_bytes=outcome.compile_peak_bytes,
                spilled=outcome.spilled,
            ))
            table.resolve(index,
                          session_state.SUCCEEDED if outcome.ok
                          else session_state.FAILED, wait=wait,
                          finished=env.now)
        finally:
            self._policy.release(request)

    def _query_for(self, arrival, rng: random.Random) -> WorkloadQuery:
        if arrival.template is not None:
            query = self.workload.generate_named(arrival.template, rng)
            if query is not None:
                return query
        return self.workload.generate(rng)

    # ------------------------------------------------------ summaries
    def totals(self):
        """Closed-loop-compatible totals (an open-loop run never
        retries, so ``retries`` is always 0)."""
        from repro.workload.loadgen import ClientStats

        return ClientStats(submitted=self.stats.admitted,
                           succeeded=self.stats.succeeded,
                           failed=self.stats.failed, retries=0)

    def facts(self, scale: float = 1.0) -> Dict[str, float]:
        """The ``open_loop`` fact block (waits in paper seconds).

        Every value is a deterministic function of (spec, seed) —
        pinned in artifacts, deliberately *not* volatile.
        """
        stats = self.stats
        waits = sorted(stats.queue_waits)
        sojourns = sorted(self.table.sojourns())
        facts: Dict[str, float] = {
            "offered": float(stats.offered),
            "admitted": float(stats.admitted),
            "dropped": float(stats.dropped),
            "dropped_queue": float(stats.dropped_queue),
            "dropped_timeout": float(stats.dropped_timeout),
            "max_sessions": float(self.max_sessions),
            "queue_wait_p50": _percentile(waits, 0.50) * scale,
            "queue_wait_p90": _percentile(waits, 0.90) * scale,
            "queue_wait_p99": _percentile(waits, 0.99) * scale,
            "queue_wait_max": (waits[-1] if waits else 0.0) * scale,
            "sojourn_p50": _percentile(sojourns, 0.50) * scale,
            "sojourn_p90": _percentile(sojourns, 0.90) * scale,
            "sojourn_p99": _percentile(sojourns, 0.99) * scale,
            "sojourn_max": (sojourns[-1] if sojourns else 0.0) * scale,
        }
        if len(stats.offered_by_tenant) > 1:
            tenant_waits = self.table.admission_waits_by_tenant()
            for tenant in sorted(stats.offered_by_tenant):
                facts[f"tenant.{tenant}.offered"] = \
                    float(stats.offered_by_tenant[tenant])
                facts[f"tenant.{tenant}.dropped"] = \
                    float(stats.dropped_by_tenant.get(tenant, 0))
                per_tenant = sorted(tenant_waits.get(tenant, []))
                for point, fraction in (("p50", 0.50), ("p90", 0.90),
                                        ("p99", 0.99)):
                    facts[f"tenant.{tenant}.queue_wait_{point}"] = \
                        _percentile(per_tenant, fraction) * scale
        return facts

    def captured_events(self):
        """The capture-trace documents of every offered arrival, in
        offered order, with admission outcomes merged from the ledger
        (requires ``capture=True`` at construction)."""
        if self._capture is None:
            raise RuntimeError("trace capture was not enabled on this "
                               "generator")
        for index, arrival in self._capture:
            outcome = OUTCOME_NAMES[self.table.outcome_of(index)]
            yield capture_event(arrival.at, tenant=arrival.tenant,
                                template=arrival.template,
                                outcome=outcome)
