"""The declarative traffic axis: how sessions arrive at the server.

A :class:`TrafficSpec` rides on a
:class:`~repro.scenarios.spec.ScenarioSpec` (and on
:class:`~repro.experiments.runner.ExperimentConfig`) and switches an
experiment from the default closed-loop think-time clients to
**open-loop admission**: sessions arrive on a schedule — either a
synthetic :mod:`arrival process <repro.traffic.arrivals>` or a replayed
:mod:`trace <repro.traffic.trace>` — and queue or drop when admission
saturates.  ``None`` (the default everywhere) means closed-loop, which
is what keeps every pre-existing scenario byte-identical.

Like the rest of the spec layer it is frozen, structurally comparable
and JSON round-trippable; nested parameter documents are canonicalized
to sorted tuples so specs stay hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.errors import ConfigurationError


def _freeze(value):
    """Deep-freeze JSON-shaped values into hashable equivalents."""
    if isinstance(value, dict):
        return tuple(sorted((str(key), _freeze(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value):
    """Invert :func:`_freeze` back into JSON-shaped values."""
    if isinstance(value, tuple):
        if all(isinstance(item, tuple) and len(item) == 2
               and isinstance(item[0], str) for item in value):
            return {key: _thaw(item) for key, item in value}
        return [_thaw(item) for item in value]
    return value


#: the trace-transform fields: only meaningful when replaying a trace
_TRACE_ONLY = ("window", "tenants", "remap", "tolerate_tail")


@dataclass(frozen=True)
class TrafficSpec:
    """One fully-described open-loop traffic shape.

    Exactly one of ``arrivals`` (a registered arrival-process name) or
    ``trace`` (a CSV/JSONL query-log path) must be set.  The transform
    fields (``window`` / ``tenants`` / ``rate_scale`` / ``remap``)
    compose over a trace stream; ``rate_scale`` also rescales synthetic
    arrivals.  ``max_sessions`` caps concurrently admitted sessions
    (``None`` = the experiment's client count), ``queue_limit`` bounds
    the admission queue and ``queue_timeout`` (paper seconds) bounds
    how long a queued session waits before it is dropped.
    """

    #: arrival-process name (see ``repro.traffic.arrivals``)
    arrivals: Optional[str] = None
    #: arrival-process parameters, deep-frozen to sorted pairs
    params: Tuple[Tuple[str, object], ...] = ()
    #: path to a timestamped query log (.jsonl/.ndjson/.csv)
    trace: Optional[str] = None
    #: skip a truncated trailing trace line instead of raising
    tolerate_tail: bool = False
    #: [start, end) slice of trace time, rebased to start at 0
    window: Optional[Tuple[float, float]] = None
    #: keep only these tenants of a trace
    tenants: Optional[Tuple[str, ...]] = None
    #: >1 compresses gaps (more load), <1 stretches them
    rate_scale: float = 1.0
    #: template renames applied to trace events, as sorted pairs
    remap: Tuple[Tuple[str, str], ...] = ()
    #: concurrent-session admission cap (None = experiment clients)
    max_sessions: Optional[int] = None
    #: sessions allowed to wait for admission before drops start
    queue_limit: int = 64
    #: longest admission wait before a queued session is dropped
    queue_timeout: float = 120.0

    def __post_init__(self):
        params = self.params
        if isinstance(params, dict):
            params = params.items()
        object.__setattr__(
            self, "params",
            tuple(sorted((str(key), _freeze(value))
                         for key, value in params)))
        if self.window is not None:
            window = tuple(self.window)
            if len(window) != 2:
                raise ConfigurationError(
                    f"traffic window must be [start, end], got "
                    f"{list(window)!r}")
            object.__setattr__(
                self, "window", (float(window[0]), float(window[1])))
        if self.tenants is not None:
            object.__setattr__(self, "tenants",
                               tuple(str(t) for t in self.tenants))
        remap = self.remap
        if isinstance(remap, dict):
            remap = remap.items()
        object.__setattr__(
            self, "remap",
            tuple(sorted((str(old), str(new)) for old, new in remap)))
        self._validate()

    def _validate(self) -> None:
        if (self.arrivals is None) == (self.trace is None):
            raise ConfigurationError(
                "traffic needs exactly one source: an 'arrivals' "
                "process name or a 'trace' file path")
        if self.arrivals is not None:
            # instantiating the factory validates name and parameters
            # at definition time, not after an expensive run
            self.build_arrivals()
        if self.trace is not None and not self.trace:
            raise ConfigurationError("traffic trace path must be non-empty")
        if self.arrivals is not None:
            for name in _TRACE_ONLY:
                value = getattr(self, name)
                if value not in (None, (), False):
                    raise ConfigurationError(
                        f"traffic field {name!r} transforms a trace; it "
                        f"does not apply to the {self.arrivals!r} "
                        f"arrival process")
        if self.window is not None and self.window[0] >= self.window[1]:
            raise ConfigurationError(
                f"traffic window start must be before its end, got "
                f"{list(self.window)!r}")
        if not isinstance(self.rate_scale, (int, float)) \
                or isinstance(self.rate_scale, bool) \
                or self.rate_scale <= 0:
            raise ConfigurationError(
                f"traffic rate_scale must be positive, got "
                f"{self.rate_scale!r}")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ConfigurationError("traffic max_sessions must be >= 1")
        if self.queue_limit < 0:
            raise ConfigurationError("traffic queue_limit must be >= 0")
        if self.queue_timeout <= 0:
            raise ConfigurationError("traffic queue_timeout must be "
                                     "positive")

    # ------------------------------------------------------------ API
    def build_arrivals(self):
        """Instantiate the configured arrival process (arrivals mode)."""
        from repro.traffic.arrivals import make_arrival_process

        if self.arrivals is None:
            raise ConfigurationError(
                "this traffic spec replays a trace; it has no arrival "
                "process to build")
        return make_arrival_process(
            self.arrivals,
            **{key: _thaw(value) for key, value in self.params})

    def to_dict(self) -> dict:
        """The JSON-ready document form (defaults omitted)."""
        doc: dict = {}
        if self.arrivals is not None:
            doc["arrivals"] = self.arrivals
            if self.params:
                doc["params"] = {key: _thaw(value)
                                 for key, value in self.params}
        if self.trace is not None:
            doc["trace"] = self.trace
            if self.tolerate_tail:
                doc["tolerate_tail"] = True
            if self.window is not None:
                doc["window"] = list(self.window)
            if self.tenants is not None:
                doc["tenants"] = list(self.tenants)
            if self.remap:
                doc["remap"] = dict(self.remap)
        if self.rate_scale != 1.0:
            doc["rate_scale"] = self.rate_scale
        if self.max_sessions is not None:
            doc["max_sessions"] = self.max_sessions
        if self.queue_limit != 64:
            doc["queue_limit"] = self.queue_limit
        if self.queue_timeout != 120.0:
            doc["queue_timeout"] = self.queue_timeout
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "TrafficSpec":
        """Parse a traffic document, rejecting unknown fields."""
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"traffic must be a JSON object, got "
                f"{type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown traffic field(s) {', '.join(unknown)}; valid "
                f"fields: {', '.join(sorted(known))}")
        kwargs = dict(doc)
        params = kwargs.get("params")
        if isinstance(params, dict):
            kwargs["params"] = tuple(sorted(
                (str(key), _freeze(value))
                for key, value in params.items()))
        window = kwargs.get("window")
        if isinstance(window, list):
            kwargs["window"] = tuple(window)
        tenants = kwargs.get("tenants")
        if isinstance(tenants, list):
            kwargs["tenants"] = tuple(tenants)
        remap = kwargs.get("remap")
        if isinstance(remap, dict):
            kwargs["remap"] = tuple(sorted(remap.items()))
        return cls(**kwargs)
