"""The machine-wide memory budget.

Every byte any subcomponent uses comes out of one
:class:`MemoryManager`.  When an allocation does not fit, the manager
first asks *shrinkable* clerks (caches: buffer pool, plan cache) to give
memory back, largest consumer first; only if that fails does it raise
:class:`~repro.errors.OutOfMemoryError`.  This is the substrate on which
the paper's contention loop plays out.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.memory.clerk import MemoryClerk

#: a shrink callback: given a byte goal, release what you can and
#: return the number of bytes actually released
ShrinkCallback = Callable[[int], int]


class MemoryManager:
    """Tracks physical memory and arbitrates allocations between clerks."""

    def __init__(self, physical_memory: int):
        if physical_memory <= 0:
            raise ConfigurationError("physical_memory must be positive")
        self.physical_memory = int(physical_memory)
        self._used = 0
        self._clerks: Dict[str, MemoryClerk] = {}
        self._shrinkers: Dict[str, ShrinkCallback] = {}
        #: callbacks invoked after memory is freed (grant queues use
        #: this to retry when physical memory becomes available)
        self._release_listeners: List[Callable[[], None]] = []
        #: cumulative OOM failures (for the metrics collector)
        self.oom_count = 0
        #: bytes recovered from caches under pressure (diagnostics)
        self.reclaimed_bytes = 0

    # -- clerk registry ----------------------------------------------------
    def clerk(self, name: str) -> MemoryClerk:
        """Get or create the named clerk."""
        existing = self._clerks.get(name)
        if existing is not None:
            return existing
        clerk = MemoryClerk(name, self)
        self._clerks[name] = clerk
        return clerk

    def clerks(self) -> List[MemoryClerk]:
        """All registered clerks."""
        return list(self._clerks.values())

    def register_shrinker(self, name: str, callback: ShrinkCallback) -> None:
        """Register a cache's shrink callback under its clerk name."""
        self._shrinkers[name] = callback

    def add_release_listener(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback()`` whenever memory is freed."""
        self._release_listeners.append(callback)

    # -- accounting --------------------------------------------------------
    @property
    def used(self) -> int:
        """Total bytes currently allocated across all clerks."""
        return self._used

    @property
    def available(self) -> int:
        """Bytes not currently allocated."""
        return self.physical_memory - self._used

    def usage_by_clerk(self) -> Dict[str, int]:
        """Snapshot of per-clerk usage (what the broker samples)."""
        return {name: clerk.used for name, clerk in self._clerks.items()}

    # -- allocation paths (called by MemoryClerk) ---------------------------
    def _allocate(self, clerk: MemoryClerk, nbytes: int) -> None:
        """Allocate, reclaiming from caches if needed; raises OOM."""
        if nbytes < 0:
            raise ConfigurationError(f"negative allocation {nbytes}")
        if nbytes > self.available:
            self._reclaim(nbytes - self.available, requester=clerk.name)
        if nbytes > self.available:
            self.oom_count += 1
            raise OutOfMemoryError(clerk.name, nbytes, self.available)
        self._used += nbytes

    def try_allocate(self, clerk: MemoryClerk, nbytes: int) -> bool:
        """Allocate only if it fits *without* reclaiming; True on success.

        Caches use this path so that cache growth never forces other
        caches to shrink.
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative allocation {nbytes}")
        if nbytes > self.available:
            return False
        self._used += nbytes
        clerk._used += nbytes
        return True

    def _free(self, clerk: MemoryClerk, nbytes: int) -> None:
        if nbytes < 0:
            raise ConfigurationError(f"negative free {nbytes}")
        if nbytes > clerk.used:
            raise ConfigurationError(
                f"clerk {clerk.name!r} freeing {nbytes} > used {clerk.used}")
        self._used -= nbytes
        if nbytes:
            for listener in self._release_listeners:
                listener()

    def _reclaim(self, shortfall: int, requester: str) -> None:
        """Ask shrinkable clerks (largest first) to release ``shortfall``.

        A clerk never shrinks to satisfy its own request twice in the
        same pass; the requester's own shrinker *is* eligible (a cache
        may trade old entries for new ones).
        """
        remaining = shortfall
        donors = sorted(
            (name for name in self._shrinkers if name in self._clerks),
            key=lambda name: self._clerks[name].used,
            reverse=True,
        )
        for name in donors:
            if remaining <= 0:
                break
            released = self._shrinkers[name](remaining)
            if released > 0:
                self.reclaimed_bytes += released
                remaining -= released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MemoryManager used={self._used} "
                f"of {self.physical_memory} bytes>")
