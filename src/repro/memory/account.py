"""Per-task memory accounting.

A :class:`MemoryAccount` tracks the bytes one *task* (one query
compilation) has taken from its clerk.  The throttling governor hooks
the account's allocation path: §4.1 — "the blocking is tied to the
amount of memory allocated by the task instead of specific points during
the query compilation process."
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import AccountClosedError
from repro.memory.clerk import GrantOutcome, MemoryClerk

#: observer invoked *after* a successful allocation with the account
AllocationHook = Callable[["MemoryAccount", int], None]


class MemoryAccount:
    """Bytes charged to a single task, drawn from a shared clerk."""

    def __init__(self, clerk: MemoryClerk, label: str = ""):
        self.clerk = clerk
        self.label = label
        self._used = 0
        self.peak = 0
        self.total_allocated = 0
        self._closed = False
        self._hooks: List[AllocationHook] = []

    @property
    def used(self) -> int:
        """Bytes this task currently holds."""
        return self._used

    @property
    def closed(self) -> bool:
        return self._closed

    def add_hook(self, hook: AllocationHook) -> None:
        """Register an observer called after each successful allocation."""
        self._hooks.append(hook)

    def _commit(self, nbytes: int) -> None:
        """Shared success-path bookkeeping for allocate/request."""
        self._used += nbytes
        self.total_allocated += nbytes
        if self._used > self.peak:
            self.peak = self._used
        for hook in self._hooks:
            hook(self, nbytes)

    def allocate(self, nbytes: int) -> None:
        """Charge ``nbytes`` to this task (may raise OutOfMemoryError)."""
        if self._closed:
            raise AccountClosedError(f"account {self.label!r} is closed")
        self.clerk.allocate(nbytes)
        self._commit(nbytes)

    def request(self, nbytes: int, soft: bool = True) -> GrantOutcome:
        """Negotiated allocation (see :meth:`MemoryClerk.request_grant`).

        On a denial nothing is charged and no exception is raised; the
        caller decides whether to degrade, wait, or fail.
        """
        if self._closed:
            raise AccountClosedError(f"account {self.label!r} is closed")
        outcome = self.clerk.request_grant(nbytes, soft=soft)
        if outcome is GrantOutcome.GRANTED:
            self._commit(nbytes)
        return outcome

    def free(self, nbytes: int) -> None:
        """Return part of this task's memory."""
        if nbytes > self._used:
            raise AccountClosedError(
                f"account {self.label!r} freeing {nbytes} > used {self._used}")
        self.clerk.free(nbytes)
        self._used -= nbytes

    def close(self) -> int:
        """Release everything and refuse further allocations.

        Idempotent; returns the number of bytes released.
        """
        if self._closed:
            return 0
        released = self._used
        if released:
            self.clerk.free(released)
            self._used = 0
        self._closed = True
        return released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryAccount {self.label!r} used={self._used}>"
