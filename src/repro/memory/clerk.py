"""Per-subcomponent allocation interface (a SQL Server "memory clerk").

Each DBMS subcomponent — buffer pool, compilation, execution workspace,
plan cache — allocates through its own clerk, so the manager and the
Memory Broker always know *who* owns every byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.manager import MemoryManager


class MemoryClerk:
    """A named window onto the machine-wide :class:`MemoryManager`."""

    def __init__(self, name: str, manager: "MemoryManager"):
        self.name = name
        self.manager = manager
        self._used = 0
        #: lifetime bytes allocated (diagnostics)
        self.total_allocated = 0
        #: high-water mark of concurrent usage
        self.peak = 0

    @property
    def used(self) -> int:
        """Bytes this clerk currently holds."""
        return self._used

    def allocate(self, nbytes: int) -> None:
        """Take ``nbytes`` from physical memory; may trigger cache
        reclamation; raises :class:`~repro.errors.OutOfMemoryError`."""
        self.manager._allocate(self, nbytes)
        self._used += nbytes
        self.total_allocated += nbytes
        if self._used > self.peak:
            self.peak = self._used

    def try_allocate(self, nbytes: int) -> bool:
        """Take ``nbytes`` only if free memory covers it (no reclaim)."""
        ok = self.manager.try_allocate(self, nbytes)
        if ok:
            self.total_allocated += nbytes
            if self._used > self.peak:
                self.peak = self._used
        return ok

    def free(self, nbytes: int) -> None:
        """Return ``nbytes`` to physical memory."""
        self.manager._free(self, nbytes)
        self._used -= nbytes

    def free_all(self) -> int:
        """Return everything this clerk holds; returns the byte count."""
        released = self._used
        if released:
            self.free(released)
        return released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryClerk {self.name!r} used={self._used}>"
