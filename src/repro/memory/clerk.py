"""Per-subcomponent allocation interface (a SQL Server "memory clerk").

Each DBMS subcomponent — buffer pool, compilation, execution workspace,
plan cache — allocates through its own clerk, so the manager and the
Memory Broker always know *who* owns every byte.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError, OutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.manager import MemoryManager


class GrantOutcome(Enum):
    """Result of a negotiated (broker-advised) allocation request."""

    #: the bytes were allocated
    GRANTED = "granted"
    #: the broker declined the grant before any allocation was tried;
    #: nothing was allocated and no error was raised — the caller is
    #: expected to degrade gracefully (best-plan-so-far)
    DENIED_SOFT = "denied_soft"
    #: physical memory (after cache reclamation) could not cover the
    #: request; nothing was allocated
    DENIED_HARD = "denied_hard"


#: advisory callback consulted before a soft allocation: return False
#: to deny the grant without touching physical memory
GrantAdvisor = Callable[["MemoryClerk", int], bool]


class MemoryClerk:
    """A named window onto the machine-wide :class:`MemoryManager`."""

    def __init__(self, name: str, manager: "MemoryManager"):
        self.name = name
        self.manager = manager
        self._used = 0
        #: lifetime bytes allocated (diagnostics)
        self.total_allocated = 0
        #: high-water mark of concurrent usage
        self.peak = 0
        #: broker-installed advisor consulted by :meth:`request_grant`
        self.advisor: Optional[GrantAdvisor] = None
        #: grants the advisor declined (diagnostics)
        self.soft_denials = 0
        #: grants that hit physical OOM (diagnostics)
        self.hard_denials = 0
        #: the OutOfMemoryError behind the most recent hard denial, so
        #: callers of the no-raise grant path can still chain/report it
        self.last_oom: Optional[OutOfMemoryError] = None

    @property
    def used(self) -> int:
        """Bytes this clerk currently holds."""
        return self._used

    def allocate(self, nbytes: int) -> None:
        """Take ``nbytes`` from physical memory; may trigger cache
        reclamation; raises :class:`~repro.errors.OutOfMemoryError`."""
        self.manager._allocate(self, nbytes)
        self._used += nbytes
        self.total_allocated += nbytes
        if self._used > self.peak:
            self.peak = self._used

    def request_grant(self, nbytes: int, soft: bool = True) -> GrantOutcome:
        """Negotiated allocation: consult the broker, then allocate.

        With ``soft`` set, the clerk's advisor (the Memory Broker) is
        asked first; a denial returns :data:`GrantOutcome.DENIED_SOFT`
        without touching physical memory.  A request that passes the
        advisor but cannot be covered even after cache reclamation
        returns :data:`GrantOutcome.DENIED_HARD` instead of raising, so
        callers can fall back (e.g. to the best plan so far) without
        exception plumbing.
        """
        if soft and self.advisor is not None \
                and not self.advisor(self, nbytes):
            self.soft_denials += 1
            return GrantOutcome.DENIED_SOFT
        try:
            self.allocate(nbytes)
        except OutOfMemoryError as exc:
            self.hard_denials += 1
            self.last_oom = exc
            return GrantOutcome.DENIED_HARD
        return GrantOutcome.GRANTED

    def try_allocate(self, nbytes: int) -> bool:
        """Take ``nbytes`` only if free memory covers it (no reclaim)."""
        ok = self.manager.try_allocate(self, nbytes)
        if ok:
            self.total_allocated += nbytes
            if self._used > self.peak:
                self.peak = self._used
        return ok

    def free(self, nbytes: int) -> None:
        """Return ``nbytes`` to physical memory."""
        self.manager._free(self, nbytes)
        self._used -= nbytes

    def free_all(self) -> int:
        """Return everything this clerk holds; returns the byte count."""
        released = self._used
        if released:
            self.free(released)
        return released

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryClerk {self.name!r} used={self._used}>"
