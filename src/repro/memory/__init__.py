"""Physical-memory accounting.

The :class:`~repro.memory.manager.MemoryManager` owns the machine's byte
budget.  Subcomponents allocate through named
:class:`~repro.memory.clerk.MemoryClerk` objects (the SQL Server term),
which is what gives the Memory Broker a per-component breakdown to
monitor and steer.  Individual compilations track their own usage in a
:class:`~repro.memory.account.MemoryAccount`, which is what the
throttling gateways key off.
"""

from repro.memory.account import MemoryAccount
from repro.memory.clerk import MemoryClerk
from repro.memory.manager import MemoryManager

__all__ = ["MemoryAccount", "MemoryClerk", "MemoryManager"]
