"""The Memory Broker process.

Every ``interval`` seconds the broker samples per-clerk usage, fits
trends, and projects total usage ``horizon`` seconds ahead.  While the
projection fits in physical memory (minus headroom) it does nothing —
"the system behaves as if the Memory Broker was not there."  Under
projected pressure it computes per-component targets and notifies
subscribers, which in this server are:

* the buffer pool — gets a size target and shrinks toward it,
* the plan cache — gets shrink requests,
* the compilation governor — gets the compilation-memory target that
  drives the dynamic gateway thresholds (extension (a)),
* compilation tasks — can consult :meth:`MemoryBroker.pressure` to
  trigger the best-plan-so-far cutoff (extension (b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.config import BrokerConfig
from repro.broker.trend import TrendEstimator
from repro.memory.manager import MemoryManager
from repro.sim import Environment


class BrokerSignal(Enum):
    """What a component should do with its memory consumption."""

    GROW = "grow"       # may continue allocating freely
    STABLE = "stable"   # may allocate at its current rate, no faster
    SHRINK = "shrink"   # must release memory toward the target


@dataclass(frozen=True)
class BrokerNotification:
    """One per-component notification (paper §3: each subcomponent gets
    its predicted and target numbers plus a directive)."""

    clerk: str
    signal: BrokerSignal
    current: int
    predicted: int
    target: int
    at: float


#: subscriber callback type
NotificationHandler = Callable[[BrokerNotification], None]


class MemoryBroker:
    """Central accounting and arbitration for all memory clerks."""

    #: clerk names the broker treats as shrinkable caches
    CACHE_CLERKS = ("buffer_pool", "plan_cache")
    #: the compilation clerk name
    COMPILE_CLERK = "compilation"

    def __init__(self, env: Environment, manager: MemoryManager,
                 config: BrokerConfig, time_scale: float = 1.0):
        self.env = env
        self.manager = manager
        self.config = config
        self._time_scale = time_scale
        self._trends: Dict[str, TrendEstimator] = {}
        self._handlers: Dict[str, List[NotificationHandler]] = {}
        #: most recent notifications by clerk (observability)
        self.last_notifications: Dict[str, BrokerNotification] = {}
        #: True while the projected total exceeds the pressure limit
        self.under_pressure = False
        #: sweeps performed (diagnostics)
        self.sweeps = 0
        self._process = None

    # -- wiring ------------------------------------------------------------
    def subscribe(self, clerk_name: str,
                  handler: NotificationHandler) -> None:
        """Register a component to receive notifications for a clerk."""
        self._handlers.setdefault(clerk_name, []).append(handler)

    def start(self) -> None:
        """Launch the periodic broker process (no-op when disabled)."""
        if self.config.enabled and self._process is None:
            self._process = self.env.process(self._run())

    # -- policy ------------------------------------------------------------
    @property
    def pressure_limit(self) -> int:
        """Usable physical memory: total minus the headroom reserve."""
        return int(self.manager.physical_memory
                   * (1.0 - self.config.headroom_fraction))

    def compile_target(self) -> int:
        """Compilation memory offered under pressure (bytes)."""
        return int(self.pressure_limit * self.config.compile_target_fraction)

    def pressure(self) -> bool:
        """Cheap query for "will we run out of memory soon?" — used by
        compilations to decide a best-plan-so-far early cutoff."""
        return self.under_pressure

    def advise_compile_grant(self, clerk, nbytes: int) -> bool:
        """Soft-grant advisory installed on the compilation clerk.

        While the projection fits, every grant passes — the system
        behaves as if the broker was not there.  Under projected
        pressure, a grant that would push total usage past the usable
        limit (i.e. an imminent hard OOM) is declined *before* any
        physical allocation or cache reclamation happens, which is the
        handshake that lets the pipeline take its best plan so far
        instead of pushing the machine into a real out-of-memory error.
        Steering compilation toward its target share stays the job of
        the dynamic gateway thresholds, not of grant denial.
        """
        if not self.config.enabled or not self.under_pressure:
            return True
        return nbytes <= self.manager.available + self.reclaimable_bytes()

    def reclaimable_bytes(self) -> int:
        """Cache memory the manager could still take back: the plan
        cache entirely, the buffer pool down to its floor — rounded to
        whole eviction chunks, because :meth:`BufferPool.shrink` stops
        before an eviction would cross the floor."""
        from repro.storage.pagemap import CHUNK_SIZE

        usage = self.manager.usage_by_clerk()
        floor = int(self.manager.physical_memory
                    * self.config.buffer_pool_floor_fraction)
        out = 0
        for name in self.CACHE_CLERKS:
            used = usage.get(name, 0)
            if name == "buffer_pool":
                used = max(0, used - floor) // CHUNK_SIZE * CHUNK_SIZE
            out += used
        return out

    # -- the periodic sweep ---------------------------------------------------
    def _run(self):
        interval = self.config.interval / self._time_scale
        while True:
            yield self.env.timeout(interval)
            self.sweep()

    def sweep(self) -> None:
        """One accounting pass: sample, predict, notify."""
        self.sweeps += 1
        now = self.env.now
        usage = self.manager.usage_by_clerk()
        predicted: Dict[str, int] = {}
        for name, used in usage.items():
            trend = self._trends.get(name)
            if trend is None:
                trend = TrendEstimator(window=self.config.window)
                self._trends[name] = trend
            trend.add(now, used)
            predicted[name] = int(trend.predict(self.config.horizon))

        total_predicted = sum(predicted.values())
        limit = self.pressure_limit
        self.under_pressure = total_predicted > limit
        if not self.under_pressure:
            # no action: the system behaves as if the broker was absent,
            # but notify anyone previously told to shrink that it may grow
            self._notify_all_grow(usage, predicted, now)
            return

        targets = self._compute_targets(usage, predicted, limit)
        for name in usage:
            target = targets.get(name, predicted[name])
            signal = self._signal_for(usage[name], predicted[name], target)
            note = BrokerNotification(
                clerk=name, signal=signal, current=usage[name],
                predicted=predicted[name], target=target, at=now)
            self._dispatch(note)

    def _compute_targets(self, usage: Dict[str, int],
                         predicted: Dict[str, int],
                         limit: int) -> Dict[str, int]:
        """Split the usable memory between components under pressure.

        Non-cache, non-compilation consumers (execution grants, system
        overhead) cannot be forcibly shrunk, so they keep their
        prediction; compilation is capped at its configured share of
        the limit; the caches split whatever remains, with the buffer
        pool guaranteed its floor.
        """
        targets: Dict[str, int] = {}
        compile_cap = self.compile_target()
        fixed = 0
        for name, value in predicted.items():
            if name == self.COMPILE_CLERK:
                targets[name] = min(value, compile_cap)
            elif name not in self.CACHE_CLERKS:
                targets[name] = value
                fixed += value
        remaining = max(0, limit - fixed
                        - targets.get(self.COMPILE_CLERK, 0))
        floor = int(self.manager.physical_memory
                    * self.config.buffer_pool_floor_fraction)
        cache_usage = sum(usage.get(c, 0) for c in self.CACHE_CLERKS)
        for name in self.CACHE_CLERKS:
            if name not in usage:
                continue
            share = (usage[name] / cache_usage) if cache_usage else 0.5
            target = int(remaining * share)
            if name == "buffer_pool":
                target = max(target, floor)
            targets[name] = target
        return targets

    @staticmethod
    def _signal_for(current: int, predicted: int,
                    target: int) -> BrokerSignal:
        if target < current:
            return BrokerSignal.SHRINK
        if target < predicted:
            return BrokerSignal.STABLE
        return BrokerSignal.GROW

    def _notify_all_grow(self, usage: Dict[str, int],
                         predicted: Dict[str, int], now: float) -> None:
        for name, used in usage.items():
            previous = self.last_notifications.get(name)
            if previous is not None and previous.signal is BrokerSignal.GROW:
                continue  # already unconstrained; stay quiet
            note = BrokerNotification(
                clerk=name, signal=BrokerSignal.GROW, current=used,
                predicted=predicted[name],
                target=self.manager.physical_memory, at=now)
            self._dispatch(note)

    def _dispatch(self, note: BrokerNotification) -> None:
        self.last_notifications[note.clerk] = note
        for handler in self._handlers.get(note.clerk, []):
            handler(note)
