"""★ Core contribution: the Memory Broker (paper §3).

The broker "accounts for the memory allocated by each subcomponent,
recognizes trends in allocation patterns, and provides the mechanisms
to enforce policies for resolving contention both within and among
subcomponents."  Concretely: a periodic process samples per-clerk
usage, fits a short linear trend, projects usage over a horizon, and —
only when the projected total exceeds physical memory — computes
per-component targets and sends GROW/STABLE/SHRINK notifications.
When memory is plentiful the broker takes no action at all, exactly as
the paper specifies.
"""

from repro.broker.trend import LinearTrend, TrendEstimator
from repro.broker.broker import (
    BrokerNotification,
    BrokerSignal,
    MemoryBroker,
)

__all__ = [
    "BrokerNotification",
    "BrokerSignal",
    "LinearTrend",
    "MemoryBroker",
    "TrendEstimator",
]
