"""Trend estimation over short usage windows.

The broker needs to *predict* near-future memory usage, not just react
to the present, so that components are notified before the machine is
actually exhausted.  A sliding-window least-squares slope is robust to
the sawtooth allocation patterns compilations produce; an EWMA variant
is provided for comparison in the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple


@dataclass
class LinearTrend:
    """Least-squares fit result: ``value ≈ level + slope * (t - t_last)``."""

    level: float
    slope: float

    def predict(self, horizon: float) -> float:
        """Projected value ``horizon`` seconds past the last sample
        (clamped at zero — memory usage cannot go negative)."""
        return max(0.0, self.level + self.slope * horizon)


class TrendEstimator:
    """Sliding-window trend tracker for one component's usage."""

    def __init__(self, window: int = 10):
        if window < 2:
            raise ValueError("trend window must hold at least 2 samples")
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)

    def add(self, t: float, value: float) -> None:
        """Record one (time, usage) sample."""
        self._samples.append((t, float(value)))

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def last_value(self) -> float:
        return self._samples[-1][1] if self._samples else 0.0

    def fit(self) -> LinearTrend:
        """Least-squares line through the window, anchored at the last
        sample time.  With fewer than 2 samples the slope is zero."""
        n = len(self._samples)
        if n == 0:
            return LinearTrend(level=0.0, slope=0.0)
        if n == 1:
            return LinearTrend(level=self._samples[0][1], slope=0.0)
        t_last = self._samples[-1][0]
        xs = [t - t_last for t, _ in self._samples]
        ys = [v for _, v in self._samples]
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        if sxx <= 0:
            return LinearTrend(level=ys[-1], slope=0.0)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        slope = sxy / sxx
        level = mean_y + slope * (0.0 - mean_x)
        return LinearTrend(level=level, slope=slope)

    def predict(self, horizon: float) -> float:
        """Projected usage ``horizon`` seconds from the last sample."""
        return self.fit().predict(horizon)


class EwmaEstimator:
    """Exponentially-weighted alternative predictor (ablation use).

    Tracks level and rate-of-change with the same ``add``/``predict``
    interface as :class:`TrendEstimator`.
    """

    def __init__(self, alpha: float = 0.4):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level: float | None = None
        self._rate = 0.0
        self._last_t: float | None = None

    def add(self, t: float, value: float) -> None:
        value = float(value)
        if self._level is None or self._last_t is None:
            self._level, self._last_t = value, t
            return
        dt = max(1e-9, t - self._last_t)
        instantaneous_rate = (value - self._level) / dt
        self._rate = (self.alpha * instantaneous_rate
                      + (1.0 - self.alpha) * self._rate)
        self._level = (self.alpha * value
                       + (1.0 - self.alpha) * self._level)
        self._last_t = t

    @property
    def last_value(self) -> float:
        return self._level or 0.0

    def predict(self, horizon: float) -> float:
        if self._level is None:
            return 0.0
        return max(0.0, self._level + self._rate * horizon)
