"""An OLTP-like small-query workload.

"Typically, most OLTP-class queries would fall into [the small
monitor] category" (§4.1) — these queries compile in well under the
medium threshold and exist to verify that the ladder leaves small
work essentially unthrottled while heavy DSS compilations queue.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.catalog import Catalog, Column, ColumnType, Index, Table
from repro.workload.base import Workload, WorkloadQuery

INT = ColumnType.INTEGER
DEC = ColumnType.DECIMAL
STR = ColumnType.VARCHAR


class OltpWorkload(Workload):
    """A small banking-style schema with point and 2-join lookups."""

    name = "oltp"

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self._templates: List[Tuple[str, Callable[[random.Random], str]]] = [
            ("o01_account_lookup", self._o01),
            ("o02_branch_balance", self._o02),
            ("o03_recent_activity", self._o03),
        ]

    def build_catalog(self) -> Catalog:
        cat = Catalog()
        r = self.rows
        accounts = r(10_000_000)
        branches = r(1_000)
        tellers = r(10_000)
        history = r(100_000_000)
        cat.create_table(Table(
            name="accounts",
            columns=(Column("account_id", INT, ndv=accounts, low=0,
                            high=max(1, accounts - 1)),
                     Column("branch_id", INT, ndv=branches, low=0,
                            high=max(1, branches - 1)),
                     Column("balance", DEC, ndv=100_000, low=0,
                            high=99_999),
                     Column("holder", STR)),
            row_count=accounts,
            indexes=(Index("pk_accounts", ("account_id",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="branches",
            columns=(Column("branch_id", INT, ndv=branches, low=0,
                            high=max(1, branches - 1)),
                     Column("city", STR)),
            row_count=branches,
            indexes=(Index("pk_branches", ("branch_id",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="tellers",
            columns=(Column("teller_id", INT, ndv=tellers, low=0,
                            high=max(1, tellers - 1)),
                     Column("branch_id", INT, ndv=branches, low=0,
                            high=max(1, branches - 1))),
            row_count=tellers,
            indexes=(Index("pk_tellers", ("teller_id",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="history",
            columns=(Column("hist_id", INT, ndv=history, low=0,
                            high=max(1, history - 1)),
                     Column("account_id", INT, ndv=accounts, low=0,
                            high=max(1, accounts - 1)),
                     Column("teller_id", INT, ndv=tellers, low=0,
                            high=max(1, tellers - 1)),
                     Column("delta", DEC, ndv=10_000, low=0, high=9_999)),
            row_count=history,
            indexes=(Index("cix_history", ("hist_id",), clustered=True),)))
        return cat

    def generate(self, rng: random.Random) -> WorkloadQuery:
        name, template = self._templates[rng.randrange(len(self._templates))]
        return WorkloadQuery(text=template(rng), template=name)

    def _o01(self, rng: random.Random) -> str:
        acct = rng.randrange(self.rows(10_000_000))
        return (f"SELECT a.balance FROM accounts a "
                f"WHERE a.account_id = {acct}")

    def _o02(self, rng: random.Random) -> str:
        branch = rng.randrange(self.rows(1_000))
        return (f"SELECT b.city, SUM(a.balance) AS total "
                f"FROM accounts a, branches b "
                f"WHERE a.branch_id = b.branch_id "
                f"AND b.branch_id = {branch} GROUP BY b.city")

    def _o03(self, rng: random.Random) -> str:
        acct = rng.randrange(self.rows(10_000_000))
        lo = rng.randrange(self.rows(100_000_000))
        return (f"SELECT h.delta FROM history h, accounts a "
                f"WHERE h.account_id = a.account_id "
                f"AND a.account_id = {acct} AND h.hist_id >= {lo}")
