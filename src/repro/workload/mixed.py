"""A mixed OLTP + TPC-H workload.

The paper's production motivation is a server that serves small
transactional queries *while* heavy analytic compilations are in
flight — the ladder exists precisely so the small class stays
responsive.  This workload reproduces that co-location directly: one
catalog holding both schemas, with each generated query drawn from the
OLTP mix or the TPC-H mix by a configurable fraction.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.catalog.catalog import Catalog
from repro.workload.base import Workload, WorkloadQuery
from repro.workload.oltp import OltpWorkload
from repro.workload.tpch import TpchWorkload


class MixedWorkload(Workload):
    """OLTP point lookups interleaved with ad-hoc TPC-H analytics."""

    name = "mixed"

    def __init__(self, scale: float = 1.0, tpch_fraction: float = 0.3):
        super().__init__(scale)
        if not 0.0 <= tpch_fraction <= 1.0:
            raise ValueError("tpch_fraction must be in [0, 1]")
        self.tpch_fraction = float(tpch_fraction)
        self._oltp = OltpWorkload(scale=scale)
        # analytic queries arrive ad hoc (uniquified text), like SALES
        self._tpch = TpchWorkload(scale=scale, adhoc=True)

    def build_catalog(self) -> Catalog:
        catalog = self._oltp.build_catalog()
        catalog.merge_from(self._tpch.build_catalog())
        return catalog

    def generate(self, rng: random.Random) -> WorkloadQuery:
        if rng.random() < self.tpch_fraction:
            return self._tpch.generate(rng)
        return self._oltp.generate(rng)

    def template_names(self) -> List[str]:
        return self._oltp.template_names() + self._tpch.template_names()

    def generate_named(self, template: str,
                       rng: random.Random) -> Optional[WorkloadQuery]:
        return (self._oltp.generate_named(template, rng)
                or self._tpch.generate_named(template, rng))
