"""The SALES benchmark (paper §5.1).

A product-sales data warehouse: several large fact tables (the largest
over 400 million rows), ~15 dimension tables in a snowflake around
them, a total footprint around 524 GB, and ten ad-hoc query templates
that join 15–20 tables, filter a date window skewed toward recent
activity, and aggregate over the join result.  Every generated query is
textually unique (varying literals plus an ad-hoc comment tag), so the
plan cache never hits — exactly how the paper's load generator defeats
plan caching.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.catalog import Catalog, Column, ColumnType, Index, Table
from repro.workload.base import Workload, WorkloadQuery, adhoc_tag

#: days in the date dimension (seven years)
DATE_DAYS = 2555

INT = ColumnType.INTEGER
DEC = ColumnType.DECIMAL
STR = ColumnType.VARCHAR
DATE = ColumnType.DATE


class SalesWorkload(Workload):
    """Schema + ten ad-hoc templates of the SALES benchmark."""

    name = "sales"

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self._templates: List[Tuple[str, Callable[[random.Random], str]]] = [
            ("q01_revenue_by_region", self._q01),
            ("q02_promo_effect", self._q02),
            ("q03_supplier_share", self._q03),
            ("q04_channel_mix", self._q04),
            ("q05_returns_analysis", self._q05),
            ("q06_shipment_lag", self._q06),
            ("q07_basket_value", self._q07),
            ("q08_web_funnel", self._q08),
            ("q09_inventory_turns", self._q09),
            ("q10_employee_perf", self._q10),
        ]

    # ------------------------------------------------------------- schema
    def build_catalog(self) -> Catalog:
        cat = Catalog()
        r = self.rows

        # -- dimensions ---------------------------------------------------
        def dim(name: str, key: str, rows: int, *extra: Column) -> Table:
            nrows = r(rows)
            cols = (Column(key, INT, ndv=nrows, low=0,
                           high=max(1, nrows - 1)),) + extra
            table = Table(name=name, columns=cols, row_count=nrows,
                          indexes=(Index(f"pk_{name}", (key,),
                                         clustered=True, unique=True),))
            cat.create_table(table)
            return table

        dim("dates", "date_id", DATE_DAYS,
            Column("month_id", INT, ndv=84, low=0, high=83),
            Column("quarter_id", INT, ndv=28, low=0, high=27),
            Column("year_id", INT, ndv=7, low=0, high=6))
        dim("customers", "customer_id", 8_000_000,
            Column("segment_id", INT, ndv=50, low=0, high=49),
            Column("country_id", INT, ndv=200, low=0, high=199),
            Column("cname", STR), Column("address", STR),
            Column("cphone", STR))
        dim("segments", "segment_id", 50, Column("segment_name", STR))
        dim("countries", "country_id", 200,
            Column("region_id", INT, ndv=20, low=0, high=19),
            Column("country_name", STR))
        dim("regions", "region_id", 20, Column("region_name", STR))
        dim("products", "product_id", 500_000,
            Column("brand_id", INT, ndv=2000, low=0, high=1999),
            Column("supplier_id", INT, ndv=50_000, low=0, high=49_999),
            Column("pname", STR), Column("list_price", DEC,
                                         ndv=10_000, low=1, high=9_999))
        dim("brands", "brand_id", 2_000,
            Column("category_id", INT, ndv=250, low=0, high=249),
            Column("brand_name", STR))
        dim("categories", "category_id", 250,
            Column("department_id", INT, ndv=25, low=0, high=24),
            Column("category_name", STR))
        dim("departments", "department_id", 25,
            Column("department_name", STR))
        dim("suppliers", "supplier_id", 50_000,
            Column("supplier_country_id", INT, ndv=200, low=0, high=199),
            Column("sname", STR))
        dim("stores", "store_id", 5_000,
            Column("store_country_id", INT, ndv=200, low=0, high=199),
            Column("format_id", INT, ndv=10, low=0, high=9),
            Column("store_name", STR))
        dim("promotions", "promo_id", 10_000,
            Column("promo_type_id", INT, ndv=30, low=0, high=29),
            Column("promo_name", STR))
        dim("promo_types", "promo_type_id", 30, Column("type_name", STR))
        dim("channels", "channel_id", 20, Column("channel_name", STR))
        dim("employees", "employee_id", 100_000,
            Column("role_id", INT, ndv=40, low=0, high=39),
            Column("ename", STR))
        dim("roles", "role_id", 40, Column("role_name", STR))
        dim("warehouses", "warehouse_id", 300,
            Column("wh_country_id", INT, ndv=200, low=0, high=199))
        dim("carriers", "carrier_id", 100, Column("carrier_name", STR))

        # -- facts ----------------------------------------------------------
        def fact(name: str, rows: int, cols: Tuple[Column, ...]) -> None:
            base = (
                Column("date_id", DATE, ndv=DATE_DAYS, low=0,
                       high=DATE_DAYS - 1),
            )
            table = Table(
                name=name, columns=base + cols, row_count=r(rows),
                indexes=(Index(f"cix_{name}", ("date_id",),
                               clustered=True),))
            cat.create_table(table, skew=0.3)

        def measure(name: str) -> Column:
            return Column(name, DEC, ndv=100_000, low=0, high=99_999)

        padding = tuple(Column(f"attr{i}", STR) for i in range(4))

        fact("sales", 400_000_000, (
            Column("customer_id", INT, ndv=r(8_000_000), low=0,
                   high=max(1, r(8_000_000) - 1)),
            Column("product_id", INT, ndv=r(500_000), low=0,
                   high=max(1, r(500_000) - 1)),
            Column("store_id", INT, ndv=r(5_000), low=0,
                   high=max(1, r(5_000) - 1)),
            Column("promo_id", INT, ndv=r(10_000), low=0,
                   high=max(1, r(10_000) - 1)),
            Column("channel_id", INT, ndv=r(20), low=0,
                   high=max(1, r(20) - 1)),
            Column("employee_id", INT, ndv=r(100_000), low=0,
                   high=max(1, r(100_000) - 1)),
            measure("amount"), measure("quantity"), measure("discount"),
            measure("net_cost"),
        ) + padding)
        fact("order_lines", 700_000_000, (
            Column("customer_id", INT, ndv=r(8_000_000), low=0,
                   high=max(1, r(8_000_000) - 1)),
            Column("product_id", INT, ndv=r(500_000), low=0,
                   high=max(1, r(500_000) - 1)),
            Column("store_id", INT, ndv=r(5_000), low=0,
                   high=max(1, r(5_000) - 1)),
            Column("promo_id", INT, ndv=r(10_000), low=0,
                   high=max(1, r(10_000) - 1)),
            measure("line_amount"), measure("line_quantity"),
        ) + padding)
        fact("shipments", 350_000_000, (
            Column("product_id", INT, ndv=r(500_000), low=0,
                   high=max(1, r(500_000) - 1)),
            Column("warehouse_id", INT, ndv=r(300), low=0,
                   high=max(1, r(300) - 1)),
            Column("carrier_id", INT, ndv=r(100), low=0,
                   high=max(1, r(100) - 1)),
            Column("store_id", INT, ndv=r(5_000), low=0,
                   high=max(1, r(5_000) - 1)),
            measure("ship_cost"), measure("units"), measure("lag_days"),
        ) + padding)
        fact("web_events", 900_000_000, (
            Column("customer_id", INT, ndv=r(8_000_000), low=0,
                   high=max(1, r(8_000_000) - 1)),
            Column("product_id", INT, ndv=r(500_000), low=0,
                   high=max(1, r(500_000) - 1)),
            Column("channel_id", INT, ndv=r(20), low=0,
                   high=max(1, r(20) - 1)),
            measure("dwell_time"), measure("clicks"),
        ) + padding[:2])
        fact("returns", 80_000_000, (
            Column("customer_id", INT, ndv=r(8_000_000), low=0,
                   high=max(1, r(8_000_000) - 1)),
            Column("product_id", INT, ndv=r(500_000), low=0,
                   high=max(1, r(500_000) - 1)),
            Column("store_id", INT, ndv=r(5_000), low=0,
                   high=max(1, r(5_000) - 1)),
            Column("reason_id", INT, ndv=r(50), low=0,
                   high=max(1, r(50) - 1)),
            measure("refund_amount"), measure("return_quantity"),
        ) + padding[:2])
        fact("inventory", 600_000_000, (
            Column("product_id", INT, ndv=r(500_000), low=0,
                   high=max(1, r(500_000) - 1)),
            Column("warehouse_id", INT, ndv=r(300), low=0,
                   high=max(1, r(300) - 1)),
            measure("on_hand"), measure("on_order"),
        ) + padding[:2])
        return cat

    # ------------------------------------------------------------- queries
    def generate(self, rng: random.Random) -> WorkloadQuery:
        name, template = self._templates[rng.randrange(len(self._templates))]
        return WorkloadQuery(text=template(rng), template=name)

    # template_names()/generate_named() come from the Workload base,
    # reading the _templates list above

    # each template returns unique text: varied literals + ad-hoc tag ----
    def _date_window(self, rng: random.Random,
                     min_days: int = 30, max_days: int = 150) -> Tuple[int, int]:
        """A recent-skewed date window (hot region near the table end)."""
        length = rng.randint(min_days, max_days)
        recency = abs(rng.gauss(0.0, 0.22))
        start = int((DATE_DAYS - length) * max(0.0, 1.0 - recency))
        return start, start + length

    #: the snowflake arms shared by most templates
    _PRODUCT_ARM = (
        " JOIN products p ON f.product_id = p.product_id"
        " JOIN brands b ON p.brand_id = b.brand_id"
        " JOIN categories cg ON b.category_id = cg.category_id"
        " JOIN departments dp ON cg.department_id = dp.department_id"
        " JOIN suppliers su ON p.supplier_id = su.supplier_id")
    _CUSTOMER_ARM = (
        " JOIN customers c ON f.customer_id = c.customer_id"
        " JOIN segments sg ON c.segment_id = sg.segment_id"
        " JOIN countries cn ON c.country_id = cn.country_id"
        " JOIN regions rg ON cn.region_id = rg.region_id")
    _STORE_ARM = (
        " JOIN stores st ON f.store_id = st.store_id"
        " JOIN countries scn ON st.store_country_id = scn.country_id"
        " JOIN regions srg ON scn.region_id = srg.region_id")
    _PROMO_ARM = (
        " JOIN promotions pr ON f.promo_id = pr.promo_id"
        " JOIN promo_types pt ON pr.promo_type_id = pt.promo_type_id")
    _EMPLOYEE_ARM = (
        " JOIN employees e ON f.employee_id = e.employee_id"
        " JOIN roles rl ON e.role_id = rl.role_id")

    def _q01(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng)
        seg = rng.randrange(50)
        return (
            f"{adhoc_tag(rng)} SELECT rg.region_id, cg.category_id, "
            f"SUM(f.amount) AS revenue, SUM(f.quantity) AS units, "
            f"COUNT(*) AS n "
            f"FROM sales f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f"{self._PRODUCT_ARM}{self._CUSTOMER_ARM}{self._STORE_ARM}"
            f"{self._PROMO_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND c.segment_id = {seg}"
            f" GROUP BY rg.region_id, cg.category_id"
            f" ORDER BY revenue DESC")

    def _q02(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 20, 90)
        ptype = rng.randrange(30)
        return (
            f"{adhoc_tag(rng)} SELECT pt.promo_type_id, dp.department_id, "
            f"SUM(f.amount - f.discount) AS net_revenue, AVG(f.discount) AS avg_disc "
            f"FROM sales f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f"{self._PROMO_ARM}{self._PRODUCT_ARM}{self._STORE_ARM}"
            f"{self._CUSTOMER_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND pt.promo_type_id = {ptype}"
            f" GROUP BY pt.promo_type_id, dp.department_id")

    def _q03(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 45, 180)
        country = rng.randrange(200)
        return (
            f"{adhoc_tag(rng)} SELECT su.supplier_id, cg.category_id, "
            f"SUM(f.line_amount) AS volume, COUNT(*) AS lines "
            f"FROM order_lines f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f"{self._PRODUCT_ARM}{self._CUSTOMER_ARM}{self._STORE_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND su.supplier_country_id = {country}"
            f" GROUP BY su.supplier_id, cg.category_id"
            f" ORDER BY volume DESC")

    def _q04(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng)
        fmt = rng.randrange(10)
        return (
            f"{adhoc_tag(rng)} SELECT f.channel_id, rg.region_id, sg.segment_id, "
            f"SUM(f.amount) AS revenue "
            f"FROM sales f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f" JOIN channels ch ON f.channel_id = ch.channel_id"
            f"{self._CUSTOMER_ARM}{self._STORE_ARM}{self._PRODUCT_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND st.format_id = {fmt}"
            f" GROUP BY f.channel_id, rg.region_id, sg.segment_id")

    def _q05(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 45, 180)
        reason = rng.randrange(50)
        return (
            f"{adhoc_tag(rng)} SELECT cg.category_id, rg.region_id, "
            f"SUM(f.refund_amount) AS refunds, COUNT(*) AS cases "
            f"FROM returns f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f"{self._PRODUCT_ARM}{self._CUSTOMER_ARM}{self._STORE_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND f.reason_id = {reason}"
            f" GROUP BY cg.category_id, rg.region_id"
            f" ORDER BY refunds DESC")

    def _q06(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 30, 120)
        carrier = rng.randrange(100)
        return (
            f"{adhoc_tag(rng)} SELECT w.warehouse_id, cg.category_id, "
            f"AVG(f.lag_days) AS avg_lag, SUM(f.ship_cost) AS cost "
            f"FROM shipments f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f" JOIN warehouses w ON f.warehouse_id = w.warehouse_id"
            f" JOIN carriers ca ON f.carrier_id = ca.carrier_id"
            f"{self._PRODUCT_ARM}{self._STORE_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND f.carrier_id = {carrier}"
            f" GROUP BY w.warehouse_id, cg.category_id")

    def _q07(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 20, 80)
        dept = rng.randrange(25)
        return (
            f"{adhoc_tag(rng)} SELECT sg.segment_id, st.format_id, "
            f"SUM(f.line_amount) AS basket, AVG(f.line_quantity) AS avg_q "
            f"FROM order_lines f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f"{self._CUSTOMER_ARM}{self._PRODUCT_ARM}{self._STORE_ARM}"
            f"{self._PROMO_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND dp.department_id = {dept}"
            f" GROUP BY sg.segment_id, st.format_id")

    def _q08(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 15, 60)
        chan = rng.randrange(20)
        return (
            f"{adhoc_tag(rng)} SELECT cg.category_id, rg.region_id, "
            f"SUM(f.clicks) AS clicks, AVG(f.dwell_time) AS dwell "
            f"FROM web_events f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f" JOIN channels ch ON f.channel_id = ch.channel_id"
            f"{self._PRODUCT_ARM}{self._CUSTOMER_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND f.channel_id = {chan}"
            f" GROUP BY cg.category_id, rg.region_id"
            f" ORDER BY clicks DESC")

    def _q09(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 45, 150)
        country = rng.randrange(200)
        return (
            f"{adhoc_tag(rng)} SELECT w.warehouse_id, b.brand_id, "
            f"AVG(f.on_hand) AS stock, SUM(f.on_order) AS ordered "
            f"FROM inventory f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f" JOIN warehouses w ON f.warehouse_id = w.warehouse_id"
            f"{self._PRODUCT_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND w.wh_country_id = {country}"
            f" GROUP BY w.warehouse_id, b.brand_id")

    def _q10(self, rng: random.Random) -> str:
        lo, hi = self._date_window(rng, 30, 120)
        role = rng.randrange(40)
        return (
            f"{adhoc_tag(rng)} SELECT e.employee_id, st.store_id, "
            f"SUM(f.amount) AS revenue, COUNT(*) AS transactions "
            f"FROM sales f"
            f" JOIN dates d ON f.date_id = d.date_id"
            f"{self._EMPLOYEE_ARM}{self._STORE_ARM}{self._PRODUCT_ARM}"
            f"{self._CUSTOMER_ARM}"
            f" WHERE f.date_id BETWEEN {lo} AND {hi}"
            f" AND e.role_id = {role}"
            f" GROUP BY e.employee_id, st.store_id"
            f" ORDER BY revenue DESC")
