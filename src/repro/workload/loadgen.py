"""The client load generator.

Simulates N concurrent database users (paper §5.2): each client thinks
briefly, submits a freshly generated query, waits for the outcome, and
*resubmits on failure* — the paper's observation that "the cost of each
failure is also high (as the work will be retried)" is what makes
resource errors so expensive for un-throttled servers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.server.server import DatabaseServer
from repro.workload.base import Workload


@dataclass
class ClientStats:
    """Per-client counters."""

    submitted: int = 0
    succeeded: int = 0
    failed: int = 0
    retries: int = 0


class LoadGenerator:
    """Drives one server with ``clients`` concurrent simulated users."""

    def __init__(self, server: DatabaseServer, workload: Workload,
                 clients: int, duration: float,
                 metrics: Optional[MetricsCollector] = None,
                 seed: int = 1, think_time: float = 15.0,
                 retry_delay: float = 10.0, max_retries: int = 10,
                 capture: bool = False):
        self.server = server
        self.workload = workload
        self.clients = clients
        self.duration = duration
        self.metrics = metrics or server.metrics
        self.seed = seed
        self.think_time = think_time
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self.stats: List[ClientStats] = [ClientStats()
                                         for _ in range(clients)]
        self._processes = []
        #: submissions on record for trace capture (submission order,
        #: which is sim-time order; outcomes patched in on completion)
        self._capture: Optional[List[dict]] = [] if capture else None

    def start(self) -> None:
        """Spawn all client processes (call before ``env.run``)."""
        self.server.start()
        for client_id in range(self.clients):
            rng = random.Random(f"{self.seed}/{client_id}")
            process = self.server.env.process(self._client(client_id, rng))
            self._processes.append(process)

    def run(self) -> None:
        """Start clients and run the simulation to ``duration``."""
        self.start()
        self.server.env.run(until=self.duration)

    # -- client behaviour ----------------------------------------------------
    def _client(self, client_id: int, rng: random.Random):
        env = self.server.env
        scale = self.server.config.time_scale
        stats = self.stats[client_id]
        # stagger arrivals so 30 compiles do not start at t=0 exactly
        yield env.timeout(rng.uniform(0.0, self.think_time) / scale)
        while env.now < self.duration:
            think = rng.expovariate(1.0 / self.think_time) / scale
            yield env.timeout(think)
            if env.now >= self.duration:
                break
            query = self.workload.generate(rng)
            attempts = 0
            while True:
                stats.submitted += 1
                submitted = env.now
                entry = None
                if self._capture is not None:
                    # record paper-second time at submission; the
                    # outcome is patched in when the query resolves
                    entry = {"t": submitted * scale,
                             "template": query.template}
                    self._capture.append(entry)
                label = f"c{client_id}/{query.template}"
                outcome = yield from self.server.run_query(
                    query.text, label)
                if entry is not None:
                    entry["outcome"] = ("succeeded" if outcome.ok
                                        else "failed")
                self.metrics.record_query(QueryRecord(
                    client=client_id,
                    template=query.template,
                    submitted=submitted,
                    finished=env.now,
                    ok=outcome.ok,
                    error_kind=outcome.error_kind,
                    cached_plan=outcome.cached_plan,
                    degraded_plan=outcome.degraded_plan,
                    compile_time=outcome.compile_time,
                    gateway_wait=outcome.gateway_wait,
                    grant_wait=outcome.grant_wait,
                    execution_time=outcome.execution_time,
                    compile_peak_bytes=outcome.compile_peak_bytes,
                    spilled=outcome.spilled,
                ))
                if outcome.ok:
                    stats.succeeded += 1
                    break
                stats.failed += 1
                attempts += 1
                if attempts > self.max_retries or env.now >= self.duration:
                    break
                stats.retries += 1
                backoff = (self.retry_delay
                           * rng.uniform(0.5, 1.5)) / scale
                yield env.timeout(backoff)

    def captured_events(self):
        """The capture-trace documents of every submission, in
        submission order (requires ``capture=True`` at construction).

        A closed-loop capture is a *what-if* replay source — feed it to
        an open-loop ``traffic`` spec to re-offer the same schedule
        without the think-time feedback loop; unlike an open-loop
        capture it does not carry a byte-identity replay pin.
        """
        if self._capture is None:
            raise RuntimeError("trace capture was not enabled on this "
                               "generator")
        for entry in self._capture:
            yield dict(entry)

    # -- summaries ----------------------------------------------------------
    def totals(self) -> ClientStats:
        out = ClientStats()
        for s in self.stats:
            out.submitted += s.submitted
            out.succeeded += s.succeeded
            out.failed += s.failed
            out.retries += s.retries
        return out
