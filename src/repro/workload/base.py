"""Common workload interface."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.catalog.catalog import Catalog


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query: SQL text plus its template name."""

    text: str
    template: str


class Workload:
    """A schema plus a query generator.

    Subclasses define ``name``, build their catalog in
    :meth:`build_catalog` and produce queries in :meth:`generate`.
    ``scale`` shrinks row counts uniformly so tests can run against a
    miniature copy of the same shape.
    """

    name = "workload"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def rows(self, full_scale_rows: int) -> int:
        """Scaled row count (at least 1)."""
        return max(1, int(full_scale_rows * self.scale))

    def build_catalog(self) -> Catalog:
        raise NotImplementedError

    def generate(self, rng: random.Random) -> WorkloadQuery:
        raise NotImplementedError

    def template_names(self) -> List[str]:
        """The replayable template names this workload understands.

        The default reads the ``_templates`` (name, builder) list the
        concrete workloads keep; workloads without one replay nothing.
        """
        templates = getattr(self, "_templates", None)
        return [name for name, _ in templates] if templates else []

    def generate_named(self, template: str,
                       rng: random.Random) -> Optional[WorkloadQuery]:
        """Generate a fresh instance of one named template.

        The trace-replay hook: a trace event naming a template gets a
        new uniquified query of that shape (literals and the ad-hoc tag
        still come from ``rng``).  Returns ``None`` for unknown names
        so replay can fall back to :meth:`generate`.
        """
        templates = getattr(self, "_templates", None) or ()
        for name, builder in templates:
            if name == template:
                return WorkloadQuery(text=builder(rng), template=name)
        return None


def adhoc_tag(rng: random.Random) -> str:
    """The uniquifier: a comment tag making query text unique.

    The paper (§5.1, citing Gray's Benchmark Handbook) modifies each
    base query "to make it appear unique and to defeat plan-caching
    features in the DBMS"; a nonce comment plus the literal variation
    in the templates achieves exactly that against a text-hash cache.
    """
    return f"/* adhoc {rng.getrandbits(48):012x} */"
