"""A TPC-H-like moderate analytic workload.

The paper positions TPC-H as the *moderate* compilation class: "queries
contain between 0 and 8 joins" and "use one to two orders of magnitude
[less] memory than [SALES] queries of similar scale".  This module
provides that comparison class: the classic supplier/part/order schema
at roughly scale factor 10, with templates of 0–6 joins.  Literals vary
but the query *shape* repeats, so the plan cache gets hits unless the
caller opts into ad-hoc tagging.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.catalog import Catalog, Column, ColumnType, Index, Table
from repro.workload.base import Workload, WorkloadQuery, adhoc_tag

INT = ColumnType.INTEGER
DEC = ColumnType.DECIMAL
STR = ColumnType.VARCHAR
DATE = ColumnType.DATE

#: days spanned by order/shipping dates
TPCH_DAYS = 2405


class TpchWorkload(Workload):
    """Schema + query mix in the spirit of TPC-H (scale ~10)."""

    name = "tpch"

    def __init__(self, scale: float = 1.0, adhoc: bool = False):
        super().__init__(scale)
        #: when True, uniquify text so the plan cache never hits
        self.adhoc = adhoc
        self._templates: List[Tuple[str, Callable[[random.Random], str]]] = [
            ("t01_pricing_summary", self._t01),
            ("t03_shipping_priority", self._t03),
            ("t05_local_supplier", self._t05),
            ("t06_forecast_revenue", self._t06),
            ("t10_returned_items", self._t10),
            ("t12_shipmode", self._t12),
        ]

    def build_catalog(self) -> Catalog:
        cat = Catalog()
        r = self.rows
        region_rows = r(5)
        nation_rows = r(25)
        supplier_rows = r(100_000)
        customer_rows = r(1_500_000)
        part_rows = r(2_000_000)
        orders_rows = r(15_000_000)
        lineitem_rows = r(60_000_000)

        cat.create_table(Table(
            name="region",
            columns=(Column("r_regionkey", INT, ndv=region_rows, low=0,
                            high=max(1, region_rows - 1)),
                     Column("r_name", STR)),
            row_count=region_rows,
            indexes=(Index("pk_region", ("r_regionkey",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="nation",
            columns=(Column("n_nationkey", INT, ndv=nation_rows, low=0,
                            high=max(1, nation_rows - 1)),
                     Column("n_regionkey", INT, ndv=region_rows, low=0,
                            high=max(1, region_rows - 1)),
                     Column("n_name", STR)),
            row_count=nation_rows,
            indexes=(Index("pk_nation", ("n_nationkey",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="supplier",
            columns=(Column("s_suppkey", INT, ndv=supplier_rows, low=0,
                            high=max(1, supplier_rows - 1)),
                     Column("s_nationkey", INT, ndv=nation_rows, low=0,
                            high=max(1, nation_rows - 1)),
                     Column("s_name", STR), Column("s_acctbal", DEC,
                                                   ndv=10_000, low=0,
                                                   high=9_999)),
            row_count=supplier_rows,
            indexes=(Index("pk_supplier", ("s_suppkey",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="customer",
            columns=(Column("c_custkey", INT, ndv=customer_rows, low=0,
                            high=max(1, customer_rows - 1)),
                     Column("c_nationkey", INT, ndv=nation_rows, low=0,
                            high=max(1, nation_rows - 1)),
                     Column("c_mktsegment", INT, ndv=5, low=0, high=4),
                     Column("c_name", STR), Column("c_address", STR)),
            row_count=customer_rows,
            indexes=(Index("pk_customer", ("c_custkey",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="part",
            columns=(Column("p_partkey", INT, ndv=part_rows, low=0,
                            high=max(1, part_rows - 1)),
                     Column("p_brand", INT, ndv=25, low=0, high=24),
                     Column("p_type", INT, ndv=150, low=0, high=149),
                     Column("p_size", INT, ndv=50, low=1, high=50),
                     Column("p_name", STR)),
            row_count=part_rows,
            indexes=(Index("pk_part", ("p_partkey",), clustered=True,
                           unique=True),)))
        cat.create_table(Table(
            name="orders",
            columns=(Column("o_orderkey", INT, ndv=orders_rows, low=0,
                            high=max(1, orders_rows - 1)),
                     Column("o_custkey", INT, ndv=customer_rows, low=0,
                            high=max(1, customer_rows - 1)),
                     Column("o_orderdate", DATE, ndv=TPCH_DAYS, low=0,
                            high=TPCH_DAYS - 1),
                     Column("o_orderpriority", INT, ndv=5, low=0, high=4),
                     Column("o_totalprice", DEC, ndv=100_000, low=0,
                            high=99_999)),
            row_count=orders_rows,
            indexes=(Index("cix_orders", ("o_orderdate",),
                           clustered=True),)))
        cat.create_table(Table(
            name="lineitem",
            columns=(Column("l_orderkey", INT, ndv=orders_rows, low=0,
                            high=max(1, orders_rows - 1)),
                     Column("l_partkey", INT, ndv=part_rows, low=0,
                            high=max(1, part_rows - 1)),
                     Column("l_suppkey", INT, ndv=supplier_rows, low=0,
                            high=max(1, supplier_rows - 1)),
                     Column("l_shipdate", DATE, ndv=TPCH_DAYS, low=0,
                            high=TPCH_DAYS - 1),
                     Column("l_shipmode", INT, ndv=7, low=0, high=6),
                     Column("l_returnflag", INT, ndv=3, low=0, high=2),
                     Column("l_quantity", DEC, ndv=50, low=1, high=50),
                     Column("l_extendedprice", DEC, ndv=100_000, low=0,
                            high=99_999),
                     Column("l_discount", DEC, ndv=11, low=0, high=10)),
            row_count=lineitem_rows,
            indexes=(Index("cix_lineitem", ("l_shipdate",),
                           clustered=True),)))
        return cat

    def generate(self, rng: random.Random) -> WorkloadQuery:
        name, template = self._templates[rng.randrange(len(self._templates))]
        text = template(rng)
        if self.adhoc:
            text = f"{adhoc_tag(rng)} {text}"
        return WorkloadQuery(text=text, template=name)

    def _window(self, rng: random.Random, days: int) -> Tuple[int, int]:
        start = rng.randint(0, TPCH_DAYS - days - 1)
        return start, start + days

    def _t01(self, rng: random.Random) -> str:
        lo = rng.randint(TPCH_DAYS - 120, TPCH_DAYS - 60)
        return (f"SELECT l.l_returnflag, SUM(l.l_quantity) AS sum_qty, "
                f"SUM(l.l_extendedprice) AS sum_price, COUNT(*) AS n "
                f"FROM lineitem l WHERE l.l_shipdate <= {lo} "
                f"GROUP BY l.l_returnflag")

    def _t03(self, rng: random.Random) -> str:
        seg = rng.randrange(5)
        lo, hi = self._window(rng, 30)
        return (f"SELECT o.o_orderkey, SUM(l.l_extendedprice) AS revenue "
                f"FROM customer c, orders o, lineitem l "
                f"WHERE c.c_custkey = o.o_custkey "
                f"AND l.l_orderkey = o.o_orderkey "
                f"AND c.c_mktsegment = {seg} "
                f"AND o.o_orderdate BETWEEN {lo} AND {hi} "
                f"GROUP BY o.o_orderkey ORDER BY revenue DESC")

    def _t05(self, rng: random.Random) -> str:
        region = rng.randrange(5)
        lo, hi = self._window(rng, 365)
        return (f"SELECT n.n_nationkey, SUM(l.l_extendedprice) AS revenue "
                f"FROM customer c, orders o, lineitem l, supplier s, "
                f"nation n, region r "
                f"WHERE c.c_custkey = o.o_custkey "
                f"AND l.l_orderkey = o.o_orderkey "
                f"AND l.l_suppkey = s.s_suppkey "
                f"AND s.s_nationkey = n.n_nationkey "
                f"AND n.n_regionkey = r.r_regionkey "
                f"AND r.r_regionkey = {region} "
                f"AND o.o_orderdate BETWEEN {lo} AND {hi} "
                f"GROUP BY n.n_nationkey ORDER BY revenue DESC")

    def _t06(self, rng: random.Random) -> str:
        lo, hi = self._window(rng, 365)
        disc = rng.randint(2, 8)
        return (f"SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue "
                f"FROM lineitem l "
                f"WHERE l.l_shipdate BETWEEN {lo} AND {hi} "
                f"AND l.l_discount = {disc} AND l.l_quantity < 24")

    def _t10(self, rng: random.Random) -> str:
        lo, hi = self._window(rng, 90)
        return (f"SELECT c.c_custkey, SUM(l.l_extendedprice) AS revenue "
                f"FROM customer c, orders o, lineitem l, nation n "
                f"WHERE c.c_custkey = o.o_custkey "
                f"AND l.l_orderkey = o.o_orderkey "
                f"AND c.c_nationkey = n.n_nationkey "
                f"AND l.l_returnflag = 1 "
                f"AND o.o_orderdate BETWEEN {lo} AND {hi} "
                f"GROUP BY c.c_custkey ORDER BY revenue DESC")

    def _t12(self, rng: random.Random) -> str:
        mode = rng.randrange(7)
        lo, hi = self._window(rng, 365)
        return (f"SELECT l.l_shipmode, COUNT(*) AS n "
                f"FROM orders o, lineitem l "
                f"WHERE o.o_orderkey = l.l_orderkey "
                f"AND l.l_shipmode = {mode} "
                f"AND l.l_shipdate BETWEEN {lo} AND {hi} "
                f"GROUP BY l.l_shipmode")
