"""Workload generators and the client load driver.

``sales`` is the paper's SALES benchmark (§5.1): a product-sales data
warehouse of ~524 GB with a 400 M-row fact table, queried almost
exclusively ad hoc with 15–20 join queries whose text is uniquified
before submission to defeat plan caching.  ``tpch`` and ``oltp``
provide the moderate and small comparison classes the paper positions
SALES against.
"""

from repro.workload.base import Workload, WorkloadQuery
from repro.workload.sales import SalesWorkload
from repro.workload.tpch import TpchWorkload
from repro.workload.oltp import OltpWorkload
from repro.workload.mixed import MixedWorkload
from repro.workload.loadgen import ClientStats, LoadGenerator

__all__ = [
    "ClientStats",
    "LoadGenerator",
    "MixedWorkload",
    "OltpWorkload",
    "SalesWorkload",
    "TpchWorkload",
    "Workload",
    "WorkloadQuery",
]
