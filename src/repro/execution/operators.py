"""Deriving an execution work profile from a physical plan.

The executor does not interpret rows; it derives, from the plan's
compile-time estimates, the *work* the query performs — CPU seconds,
table-scan windows (which become buffer-pool reads), and the workspace
memory the hash tables and sorts want.  The same
:class:`~repro.optimizer.cost.CostModel` constants are used, so the
optimizer's cost and the simulated reality agree except for runtime
effects (cache hits, queueing, spills).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.catalog.catalog import Catalog
from repro.optimizer.cost import CostModel
from repro.plans import physical as ph
from repro.units import MiB

#: a grant smaller than desired multiplies work; spills are capped at
#: this factor (multi-pass hash / sort)
MAX_SPILL_FACTOR = 3.0


@dataclass
class ScanWork:
    """One table-scan window the query must read through the pool."""

    table: str
    offset_fraction: float
    length_fraction: float


@dataclass
class ExecutionProfile:
    """Everything the executor needs to run one query."""

    cpu_seconds: float = 0.0
    scans: List[ScanWork] = field(default_factory=list)
    #: workspace the plan ideally wants (bytes)
    desired_memory: int = 0
    #: rows returned to the client
    output_rows: float = 0.0

    def spill_bytes(self, granted: int) -> int:
        """Extra bytes written+read when granted less than desired.

        Grace-hash style: the overflow partition is written once and
        read once; shortfalls deeper than 4x need a second recursion
        level (capped — :data:`MAX_SPILL_FACTOR` passes over the
        overflow in total).
        """
        if granted >= self.desired_memory or self.desired_memory == 0:
            return 0
        overflow = self.desired_memory - granted
        ratio = self.desired_memory / max(granted, 1)
        passes = 1.0 if ratio <= 4.0 else min(MAX_SPILL_FACTOR, ratio / 4.0 + 1.0)
        return int(2 * overflow * passes)

    def spill_cpu(self, granted: int) -> float:
        """Extra CPU for re-partitioning when spilling."""
        if granted >= self.desired_memory or self.desired_memory == 0:
            return 0.0
        shortfall = 1.0 - granted / self.desired_memory
        return self.cpu_seconds * 0.3 * shortfall


def build_profile(plan: ph.PhysicalNode, catalog: Catalog,
                  cost_model: CostModel | None = None) -> ExecutionProfile:
    """Walk a physical plan and accumulate its work profile."""
    cm = cost_model or CostModel()
    profile = ExecutionProfile()
    profile.output_rows = plan.estimates.rows
    for node in plan.walk():
        _accumulate(node, profile, cm, catalog)
    profile.desired_memory = int(plan.total_memory())
    return profile


def _accumulate(node: ph.PhysicalNode, profile: ExecutionProfile,
                cm: CostModel, catalog: Catalog) -> None:
    est = node.estimates
    if isinstance(node, ph.TableScan):
        profile.scans.append(ScanWork(
            table=node.table,
            offset_fraction=node.scan_offset,
            length_fraction=node.scan_fraction,
        ))
        profile.cpu_seconds += est.rows * cm.params.cpu_per_row
        return
    if isinstance(node, ph.HashJoin):
        build = node.build.estimates.rows
        probe = node.probe.estimates.rows
        profile.cpu_seconds += cm.hash_join_cost(build, probe, est.rows)
        return
    if isinstance(node, ph.NestedLoopsJoin):
        outer = node.outer.estimates.rows
        inner = node.inner.estimates.rows
        profile.cpu_seconds += cm.nl_join_cost(outer, inner, est.rows)
        return
    if isinstance(node, ph.HashAggregate):
        profile.cpu_seconds += cm.hash_agg_cost(
            node.child.estimates.rows, est.rows)
        return
    if isinstance(node, ph.StreamAggregate):
        profile.cpu_seconds += cm.stream_agg_cost(node.child.estimates.rows)
        return
    if isinstance(node, ph.Sort):
        profile.cpu_seconds += cm.sort_cost(node.child.estimates.rows)
        return
    if isinstance(node, ph.Filter):
        profile.cpu_seconds += cm.filter_cost(node.child.estimates.rows)
        return
    if isinstance(node, ph.Project):
        profile.cpu_seconds += cm.project_cost(node.child.estimates.rows)
        return
