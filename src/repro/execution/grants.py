"""The execution-workspace memory-grant queue.

Modeled on SQL Server's resource semaphore: a byte-counted FIFO queue.
A query computes its desired grant from compile-time estimates, waits
until that many bytes of workspace are free, holds them for the whole
execution and releases them at the end.  Grant bytes are charged to the
``workspace`` clerk, so taking a grant can force the buffer pool to
shrink — and a machine full of compilation memory makes grants slow or
impossible, which is the paper's contention loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.errors import OutOfMemoryError, SimulationError
from repro.memory.clerk import MemoryClerk
from repro.sim import Environment, Event


class MemoryGrant(Event):
    """A pending or granted workspace reservation."""

    def __init__(self, semaphore: "ResourceSemaphore", nbytes: int):
        super().__init__(semaphore.env)
        self.semaphore = semaphore
        self.nbytes = nbytes
        self.granted = False
        self.requested_at = semaphore.env.now


@dataclass
class GrantStats:
    """Cumulative counters for the grant queue."""

    grants: int = 0
    timeouts: int = 0
    oom_failures: int = 0
    total_wait: float = 0.0
    peak_queue: int = 0

    def mean_wait(self) -> float:
        return self.total_wait / self.grants if self.grants else 0.0


class ResourceSemaphore:
    """FIFO byte-counted semaphore for execution workspace memory."""

    def __init__(self, env: Environment, clerk: MemoryClerk,
                 capacity_bytes: int):
        if capacity_bytes <= 0:
            raise SimulationError("workspace capacity must be positive")
        self.env = env
        self.clerk = clerk
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[MemoryGrant] = deque()
        self._outstanding = 0
        self._pumping = False
        self._blocked_on_memory = False
        self.stats = GrantStats()
        # retry queued grants whenever any component frees memory
        clerk.manager.add_release_listener(self._on_memory_released)

    @property
    def outstanding_bytes(self) -> int:
        """Bytes currently granted."""
        return self._outstanding

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self._outstanding

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self, nbytes: int) -> MemoryGrant:
        """Queue a grant request; the returned event fires when granted
        (or fails with :class:`OutOfMemoryError` if physical memory
        cannot back the grant even after cache reclamation)."""
        if nbytes <= 0:
            raise SimulationError(f"grant of {nbytes} bytes")
        nbytes = min(nbytes, self.capacity_bytes)
        grant = MemoryGrant(self, nbytes)
        self._queue.append(grant)
        self.stats.peak_queue = max(self.stats.peak_queue, len(self._queue))
        self._pump()
        return grant

    def release(self, grant: MemoryGrant) -> None:
        """Return a granted reservation (or withdraw a queued one)."""
        if grant.granted:
            self._outstanding -= grant.nbytes
            self.clerk.free(grant.nbytes)
            grant.granted = False
            self._pump()
        else:
            self.cancel(grant)

    def cancel(self, grant: MemoryGrant) -> None:
        """Withdraw a request that has not been granted."""
        try:
            self._queue.remove(grant)
        except ValueError:
            pass

    def _pump(self) -> None:
        """Grant from the head of the queue while capacity allows (FIFO:
        a big request at the head blocks smaller ones behind it, exactly
        like the real resource semaphore).

        If physical memory cannot back the head grant right now, the
        request stays queued and retried when any component frees
        memory — like the real semaphore, queries *wait* for memory and
        only fail via the grant timeout."""
        if self._pumping:
            return  # re-entrant call via a shrink-induced free
        self._pumping = True
        try:
            while self._queue:
                head = self._queue[0]
                if self._outstanding + head.nbytes > self.capacity_bytes:
                    return
                # physical backing: may force the buffer pool to give
                # pages up
                try:
                    self.clerk.allocate(head.nbytes)
                except OutOfMemoryError:
                    self.stats.oom_failures += 1
                    self._blocked_on_memory = True
                    return
                self._queue.popleft()
                head.granted = True
                self._outstanding += head.nbytes
                self.stats.grants += 1
                self.stats.total_wait += self.env.now - head.requested_at
                head.succeed(head)
        finally:
            self._pumping = False

    def _on_memory_released(self) -> None:
        if self._blocked_on_memory and not self._pumping:
            self._blocked_on_memory = False
            self._pump()
