"""The executor: runs one compiled plan as a simulation process.

Lifecycle: size the grant from compile-time estimates → wait in the
grant queue (timeout ⇒ :class:`~repro.errors.GrantTimeoutError`) →
perform the plan's scans through the buffer pool → burn the plan's CPU
through the scheduler → pay spill I/O if the grant was smaller than
desired → release everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ExecutionConfig
from repro.errors import (
    ExecutionOutOfMemoryError,
    GrantTimeoutError,
    OutOfMemoryError,
)
from repro.execution.grants import MemoryGrant, ResourceSemaphore
from repro.execution.operators import ExecutionProfile
from repro.sim import Environment
from repro.storage.bufferpool import BufferPool
from repro.server.scheduler import CpuScheduler
from repro.units import MiB


@dataclass
class ExecutionOutcome:
    """Timing breakdown of one successful execution."""

    grant_wait: float = 0.0
    io_time: float = 0.0
    cpu_time: float = 0.0
    spill_time: float = 0.0
    granted_bytes: int = 0
    desired_bytes: int = 0
    spilled: bool = False
    buffer_hits: int = 0
    buffer_misses: int = 0

    @property
    def elapsed(self) -> float:
        return self.grant_wait + self.io_time + self.cpu_time + self.spill_time


class QueryExecutor:
    """Executes profiles against the shared server substrate."""

    #: grants below this are pointless; queries always ask for at least it
    MIN_GRANT = 4 * MiB

    def __init__(self, env: Environment, scheduler: CpuScheduler,
                 bufferpool: BufferPool, semaphore: ResourceSemaphore,
                 config: ExecutionConfig, time_scale: float = 1.0):
        self.env = env
        self.scheduler = scheduler
        self.bufferpool = bufferpool
        self.semaphore = semaphore
        self.config = config
        self._time_scale = time_scale

    def desired_grant(self, profile: ExecutionProfile) -> int:
        """Clamp the plan's ideal workspace to the per-query maximum."""
        cap = int(self.semaphore.capacity_bytes
                  * self.config.max_grant_fraction)
        return max(self.MIN_GRANT, min(int(profile.desired_memory), cap))

    def execute(self, profile: ExecutionProfile, catalog):
        """Process generator: run one query; returns ExecutionOutcome.

        Raises :class:`GrantTimeoutError` if the workspace queue stalls
        and :class:`OutOfMemoryError` if physical memory cannot back
        the grant.
        """
        outcome = ExecutionOutcome()
        outcome.desired_bytes = int(profile.desired_memory)
        ask = self.desired_grant(profile)

        # -- memory grant ------------------------------------------------
        started = self.env.now
        grant = self.semaphore.request(ask)
        timeout = self.env.timeout(
            self.config.grant_timeout / self._time_scale)
        try:
            yield self.env.any_of([grant, timeout])
        except OutOfMemoryError as exc:
            # the semaphore failed the grant: physical memory could not
            # back it even after cache reclamation
            raise ExecutionOutOfMemoryError(str(exc)) from exc
        if not grant.granted:
            self.semaphore.cancel(grant)
            if grant.triggered and not grant.ok:
                raise ExecutionOutOfMemoryError(str(grant.value))
            raise GrantTimeoutError(ask, self.env.now - started)
        outcome.grant_wait = self.env.now - started
        outcome.granted_bytes = grant.nbytes

        try:
            # -- physical reads through the buffer pool --------------------
            io_started = self.env.now
            for scan in profile.scans:
                crange = catalog.chunk_range(scan.table)
                window = crange.slice(scan.offset_fraction,
                                      scan.length_fraction)
                result = yield from self.bufferpool.read_range(window)
                outcome.buffer_hits += result.hits
                outcome.buffer_misses += result.misses
            outcome.io_time = self.env.now - io_started

            # -- CPU work ---------------------------------------------------
            # (the scheduler applies the simulation time scale itself)
            cpu_started = self.env.now
            yield from self.scheduler.consume(profile.cpu_seconds)
            outcome.cpu_time = self.env.now - cpu_started

            # -- spill penalty ---------------------------------------------
            spill = profile.spill_bytes(grant.nbytes)
            if spill:
                outcome.spilled = True
                spill_started = self.env.now
                yield from self.bufferpool.disk.read(spill)
                yield from self.scheduler.consume(
                    profile.spill_cpu(grant.nbytes))
                outcome.spill_time = self.env.now - spill_started
        finally:
            self.semaphore.release(grant)
        return outcome
