"""Query execution: memory grants, operator work model, executor.

Execution memory is "usually predictable [from] early, high-level
decisions at the start of the execution of a query" (paper §3): the
executor asks the :class:`~repro.execution.grants.ResourceSemaphore`
for a grant sized from the optimizer's estimates, holds it for the
whole execution, and spills (extra I/O passes) when granted less than
it wanted — which is how compilation-memory pressure degrades
execution times in this reproduction.
"""

from repro.execution.grants import MemoryGrant, ResourceSemaphore
from repro.execution.operators import ExecutionProfile, build_profile
from repro.execution.executor import ExecutionOutcome, QueryExecutor

__all__ = [
    "ExecutionOutcome",
    "ExecutionProfile",
    "MemoryGrant",
    "QueryExecutor",
    "ResourceSemaphore",
    "build_profile",
]
