"""parse → bind → optimize as a throttled simulation process."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.compilation.compiled import CompiledPlan
from repro.errors import CompileOutOfMemoryError
from repro.memory.account import MemoryAccount
from repro.memory.clerk import GrantOutcome, MemoryClerk
from repro.optimizer.optimizer import Optimizer
from repro.sim import Environment
from repro.server.scheduler import CpuScheduler
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.throttle.governor import CompilationGovernor, ThrottleTicket

#: CPU seconds for parsing (fixed) and binding (per referenced table)
PARSE_CPU = 0.15
BIND_CPU_PER_TABLE = 0.05


class _SearchRecording:
    """The deterministic step trace of one optimizer search.

    The optimizer search for a given query text is a pure function of
    the catalog and optimizer configuration — only the *interleaving*
    of its memory/CPU charges with the rest of the server varies
    between compiles.  Recording the step sequence once lets retries of
    the same text replay it with identical simulated charges and none
    of the Python search cost.

    A compile that stops early (OOM abort, gateway timeout, best-plan
    cutoff) leaves a *partial* trace plus the suspended search; replays
    step through the recorded prefix by index and only advance the
    suspended search — pure Python, no simulation charges — when a
    consumer actually gets past what was recorded.  A retry that dies
    at the same point as the original never computes the tail at all.
    """

    __slots__ = ("table_count", "steps", "bests", "result",
                 "_task", "_iter", "_record_bests")

    def __init__(self, table_count: int, record_bests: bool):
        self.table_count = table_count
        self.steps: List = []
        #: best-plan-so-far snapshot *after* each step (extension (b))
        self.bests: List = []
        self.result = None
        self._task = None
        self._iter = None
        self._record_bests = record_bests

    def live_append(self, step, task) -> None:
        self.steps.append(step)
        self.bests.append(
            task.best_plan_so_far() if self._record_bests else None)

    def suspend(self, task, steps_iter) -> None:
        """Keep the in-flight search for on-demand continuation.

        A search that already ran to exhaustion is finalized right away
        so the cache does not pin its memo.
        """
        if task.result is not None:
            self.result = task.result
            return
        self._task = task
        self._iter = steps_iter

    def usable(self) -> bool:
        return self.result is not None or self._iter is not None

    def advance(self) -> bool:
        """Record one more step of the suspended search; False at end."""
        it = self._iter
        if it is None:
            return False
        try:
            step = next(it)
        except StopIteration:
            self.result = self._task.result
            self._task = None
            self._iter = None
            return False
        except Exception:  # pragma: no cover - defensive: drop the tail
            self._task = None
            self._iter = None
            return False
        self.live_append(step, self._task)
        return True


class _ReplayTask:
    """Duck-type of :class:`OptimizationTask` driven by a recording.

    Several consumers may stream the same recording concurrently; each
    keeps its own index, and whoever outruns the recorded prefix pulls
    the suspended search forward for everyone.
    """

    __slots__ = ("_rec", "_idx", "result")

    def __init__(self, recording: _SearchRecording):
        self._rec = recording
        self._idx = 0
        self.result = None

    def steps(self):
        rec = self._rec
        steps = rec.steps
        i = 0
        while True:
            if i >= len(steps) and not rec.advance():
                break
            step = steps[i]
            i += 1
            self._idx = i
            yield step
        self.result = rec.result

    def has_best_plan(self) -> bool:
        idx = self._idx
        return bool(idx) and self._rec.bests[idx - 1] is not None

    def best_plan_so_far(self):
        idx = self._idx
        return self._rec.bests[idx - 1] if idx else None


class CompilationPipeline:
    """Compiles query text into :class:`CompiledPlan` under throttling."""

    #: wait between retries of an *essential* allocation (one that has
    #: no fallback plan yet), in paper seconds
    OOM_RETRY_DELAY = 5.0
    #: retries before an essential allocation gives up; the combined
    #: wait budget is comparable to the small-monitor timeout, so a
    #: stalled stage-0 compilation fails no later than a throttled one
    OOM_RETRY_LIMIT = 60
    #: recorded searches kept per server (LRU); retried/evicted query
    #: texts replay their search instead of re-running it
    SEARCH_CACHE_SIZE = 512
    #: tighter bound on *suspended* recordings — each pins a live memo
    #: and exploration frontier in real memory until its tail is needed
    SUSPENDED_CACHE_SIZE = 128

    def __init__(self, env: Environment, scheduler: CpuScheduler,
                 governor: CompilationGovernor, optimizer: Optimizer,
                 binder: Binder, clerk: MemoryClerk,
                 broker=None, best_plan_so_far: bool = True,
                 time_scale: float = 1.0):
        self.env = env
        self.scheduler = scheduler
        self.governor = governor
        self.optimizer = optimizer
        self.binder = binder
        self.clerk = clerk
        self.broker = broker
        self.best_plan_so_far = best_plan_so_far
        self._time_scale = time_scale
        #: compilations currently in flight (used for fair-share cutoffs)
        self.active = 0
        #: label -> MemoryAccount of in-flight compilations (tracing:
        #: the Figure 2 reproduction samples these)
        self.live_accounts: dict = {}
        #: lifetime counters (metrics)
        self.compilations = 0
        self.degraded_plans = 0
        self.oom_failures = 0
        #: broker soft denials that triggered a degraded plan
        self.soft_denials = 0
        #: waits spent retrying essential allocations under OOM
        self.oom_waits = 0
        #: query text -> recorded search trace (LRU)
        self._search_cache: "OrderedDict[str, _SearchRecording]" = \
            OrderedDict()
        #: texts compiled once already; a second compile of the same
        #: text (a retry, or a plan-cache eviction) starts recording —
        #: first-time compiles pay zero recording overhead
        self._search_seen: set = set()
        #: when True every first-sighting search is recorded too; the
        #: experiment engine enables this so recordings can be shared
        #: across the worker pool (see export_recorded_searches)
        self.record_all_searches = False
        #: compiles served by replaying a recorded search
        self.search_replays = 0

    def compile(self, text: str, label: str = ""):
        """Process generator: compile ``text``; returns CompiledPlan.

        Raises :class:`~repro.errors.GatewayTimeoutError` on monitor
        timeout and :class:`~repro.errors.CompileOutOfMemoryError` when
        memory runs out with no fallback plan available.
        """
        started = self.env.now
        account = MemoryAccount(self.clerk, label)
        ticket = ThrottleTicket(label)
        gateway_wait = 0.0
        self.active += 1
        self.live_accounts[label or id(account)] = account
        try:
            recording = None
            cached = self._search_cache.get(text)
            if cached is not None and not cached.usable():
                del self._search_cache[text]
                cached = None
            if cached is not None:
                self._search_cache.move_to_end(text)
                self.search_replays += 1
                table_count = cached.table_count
                task = _ReplayTask(cached)
            else:
                stmt = parse(text)
                bound = self.binder.bind(stmt)
                table_count = bound.table_count
                task = self.optimizer.task(bound)
                # best-plan servers rarely fail a compile, so recording
                # only starts on a text's second sighting (a retry or a
                # plan-cache eviction); hard-OOM servers fail and retry
                # constantly and record cheaply (no best snapshots), so
                # they record every search up front
                if (self.record_all_searches or not self.best_plan_so_far
                        or text in self._search_seen):
                    recording = _SearchRecording(
                        table_count, record_bests=self.best_plan_so_far)
                else:
                    if len(self._search_seen) > 100_000:
                        self._search_seen.clear()
                    self._search_seen.add(text)
            yield from self.scheduler.consume(
                PARSE_CPU + BIND_CPU_PER_TABLE * table_count)

            result = None
            degraded = False
            steps_iter = task.steps()
            try:
                for step in steps_iter:
                    if recording is not None:
                        recording.live_append(step, task)
                    if step.alloc_bytes:
                        result = yield from self._charge(
                            account, task, step.alloc_bytes)
                        if result is not None:
                            degraded = True
                            break
                    yield from self.scheduler.consume(step.cpu_seconds)
                    # broker-predicted OOM is checked *before* queueing at
                    # the next monitor: an outsized compilation under
                    # pressure takes its best plan so far instead of
                    # camping on a monitor slot while waiting to grow
                    if self._should_cut_short(task, account):
                        result = self._fallback(task)
                        if result is not None:
                            degraded = True
                            break
                    before_wait = self.env.now
                    yield from self.governor.ensure(ticket, account.used)
                    gateway_wait += self.env.now - before_wait
            finally:
                if recording is not None:
                    recording.suspend(task, steps_iter)
                    self._search_cache[text] = recording
                    while len(self._search_cache) > self.SEARCH_CACHE_SIZE:
                        self._search_cache.popitem(last=False)
                    if recording._iter is not None:
                        self._evict_suspended()
            if result is None:
                result = task.result
            if result is None:  # pragma: no cover - steps always yield one
                raise CompileOutOfMemoryError("optimization produced no plan")
            self.compilations += 1
            if degraded:
                self.degraded_plans += 1
            return CompiledPlan(
                plan=result.plan,
                estimated_cost=result.cost,
                peak_memory=account.peak,
                work_units=result.work_units,
                degraded=degraded,
                compile_time=self.env.now - started,
                gateway_wait=gateway_wait,
            )
        finally:
            self.active -= 1
            self.live_accounts.pop(label or id(account), None)
            self.governor.release(ticket)
            account.close()

    # -- search replay housekeeping ----------------------------------------
    def export_recorded_searches(self, limit: Optional[int] = None
                                 ) -> "OrderedDict[str, _SearchRecording]":
        """Completed recordings, oldest first (for cross-run seeding).

        Only *completed* recordings travel: suspended ones pin a live
        memo and an in-flight generator, neither of which can cross a
        process boundary.  ``limit`` keeps the newest N entries.
        """
        out: "OrderedDict[str, _SearchRecording]" = OrderedDict()
        for text, rec in self._search_cache.items():
            if rec.result is not None and rec._iter is None:
                out[text] = rec
        if limit is not None:
            while len(out) > limit:
                out.popitem(last=False)
        return out

    def seed_recorded_searches(self, recordings) -> int:
        """Adopt completed recordings from another server's pipeline.

        Replaying a recording produces the same simulated CPU/memory
        charges as re-running the search (the search is a pure function
        of catalog and optimizer configuration), so seeding changes
        wall-clock time only — never simulated results.  Returns the
        number of entries adopted.
        """
        adopted = 0
        for text, rec in recordings.items():
            if rec.result is None or text in self._search_cache:
                continue
            self._search_cache[text] = rec
            adopted += 1
        while len(self._search_cache) > self.SEARCH_CACHE_SIZE:
            self._search_cache.popitem(last=False)
        return adopted

    def _evict_suspended(self) -> None:
        """Drop the oldest suspended recordings beyond the bound.

        Suspended recordings hold a live memo each (real interpreter
        memory, invisible to the simulated accounting), so they get a
        tighter cap than completed traces.
        """
        suspended = [t for t, rec in self._search_cache.items()
                     if rec._iter is not None]
        for text in suspended[:-self.SUSPENDED_CACHE_SIZE]:
            del self._search_cache[text]

    # -- extension (b): best-plan-so-far cutoffs ---------------------------
    def _charge(self, account: MemoryAccount, task, nbytes: int):
        """Process generator: secure ``nbytes`` for an optimizer step.

        Returns ``None`` once the bytes are granted, or a degraded
        fallback :class:`OptimizationResult` when the grant was denied
        (by the broker's soft-grant advisory or by physical OOM) and a
        best plan so far exists.  A denial with no fallback plan yet is
        an *essential* allocation: the task waits for memory to be
        freed and retries, raising CompileOutOfMemoryError only when
        its wait budget runs out — or immediately when the
        best-plan-so-far extension is disabled (the paper's baseline).
        """
        waits = 0
        while True:
            # only consult the broker when a denial has somewhere to
            # land; essential allocations go straight to physical memory
            can_fall_back = self.best_plan_so_far and task.has_best_plan()
            outcome = account.request(nbytes, soft=can_fall_back)
            if outcome is GrantOutcome.GRANTED:
                return None
            if can_fall_back:
                if outcome is GrantOutcome.DENIED_SOFT:
                    self.soft_denials += 1
                return task.best_plan_so_far()
            if not self.best_plan_so_far or waits >= self.OOM_RETRY_LIMIT:
                self.oom_failures += 1
                cause = self.clerk.last_oom
                raise CompileOutOfMemoryError(
                    f"optimizer allocation of {nbytes} bytes failed with "
                    f"no fallback plan after {waits} waits: {cause}"
                ) from cause
            waits += 1
            self.oom_waits += 1
            yield self.env.timeout(self.OOM_RETRY_DELAY / self._time_scale)

    def _fallback(self, task):
        if not self.best_plan_so_far:
            return None
        return task.best_plan_so_far()

    def _should_cut_short(self, task, account: MemoryAccount) -> bool:
        """Broker-predicted OOM: stop exploring and take the best plan.

        Fires when the broker projects memory exhaustion and this task
        already uses more than twice its fair share of the compilation
        target — the paper's "the system will likely run out of memory
        before compilation completes."
        """
        if not self.best_plan_so_far or self.broker is None:
            return False
        if not self.broker.pressure():
            return False
        fair_share = self.broker.compile_target() / max(1, self.active)
        # only outsized compilations are cut short: beyond three times
        # their fair share and well past the big-monitor threshold
        cutoff = max(3.0 * fair_share,
                     1.25 * float(self.governor.static_thresholds[-1]))
        return account.used > cutoff
