"""parse → bind → optimize as a throttled simulation process."""

from __future__ import annotations

from typing import Optional

from repro.compilation.compiled import CompiledPlan
from repro.errors import (
    CompileOutOfMemoryError,
    OutOfMemoryError,
)
from repro.memory.account import MemoryAccount
from repro.memory.clerk import MemoryClerk
from repro.optimizer.optimizer import Optimizer
from repro.sim import Environment
from repro.server.scheduler import CpuScheduler
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.throttle.governor import CompilationGovernor, ThrottleTicket

#: CPU seconds for parsing (fixed) and binding (per referenced table)
PARSE_CPU = 0.15
BIND_CPU_PER_TABLE = 0.05


class CompilationPipeline:
    """Compiles query text into :class:`CompiledPlan` under throttling."""

    def __init__(self, env: Environment, scheduler: CpuScheduler,
                 governor: CompilationGovernor, optimizer: Optimizer,
                 binder: Binder, clerk: MemoryClerk,
                 broker=None, best_plan_so_far: bool = True):
        self.env = env
        self.scheduler = scheduler
        self.governor = governor
        self.optimizer = optimizer
        self.binder = binder
        self.clerk = clerk
        self.broker = broker
        self.best_plan_so_far = best_plan_so_far
        #: compilations currently in flight (used for fair-share cutoffs)
        self.active = 0
        #: label -> MemoryAccount of in-flight compilations (tracing:
        #: the Figure 2 reproduction samples these)
        self.live_accounts: dict = {}
        #: lifetime counters (metrics)
        self.compilations = 0
        self.degraded_plans = 0
        self.oom_failures = 0

    def compile(self, text: str, label: str = ""):
        """Process generator: compile ``text``; returns CompiledPlan.

        Raises :class:`~repro.errors.GatewayTimeoutError` on monitor
        timeout and :class:`~repro.errors.CompileOutOfMemoryError` when
        memory runs out with no fallback plan available.
        """
        started = self.env.now
        account = MemoryAccount(self.clerk, label)
        ticket = ThrottleTicket(label)
        gateway_wait = 0.0
        self.active += 1
        self.live_accounts[label or id(account)] = account
        try:
            stmt = parse(text)
            bound = self.binder.bind(stmt)
            yield from self.scheduler.consume(
                PARSE_CPU + BIND_CPU_PER_TABLE * bound.table_count)

            task = self.optimizer.task(bound)
            result = None
            degraded = False
            for step in task.steps():
                if step.alloc_bytes:
                    try:
                        account.allocate(step.alloc_bytes)
                    except OutOfMemoryError as exc:
                        result = self._fallback(task)
                        if result is None:
                            self.oom_failures += 1
                            raise CompileOutOfMemoryError(str(exc)) from exc
                        degraded = True
                        break
                yield from self.scheduler.consume(step.cpu_seconds)
                # broker-predicted OOM is checked *before* queueing at
                # the next monitor: an outsized compilation under
                # pressure takes its best plan so far instead of
                # camping on a monitor slot while waiting to grow
                if self._should_cut_short(task, account):
                    result = self._fallback(task)
                    if result is not None:
                        degraded = True
                        break
                before_wait = self.env.now
                yield from self.governor.ensure(ticket, account.used)
                gateway_wait += self.env.now - before_wait
            if result is None:
                result = task.result
            if result is None:  # pragma: no cover - steps always yield one
                raise CompileOutOfMemoryError("optimization produced no plan")
            self.compilations += 1
            if degraded:
                self.degraded_plans += 1
            return CompiledPlan(
                plan=result.plan,
                estimated_cost=result.cost,
                peak_memory=account.peak,
                work_units=result.work_units,
                degraded=degraded,
                compile_time=self.env.now - started,
                gateway_wait=gateway_wait,
            )
        finally:
            self.active -= 1
            self.live_accounts.pop(label or id(account), None)
            self.governor.release(ticket)
            account.close()

    # -- extension (b): best-plan-so-far cutoffs ---------------------------
    def _fallback(self, task):
        if not self.best_plan_so_far:
            return None
        return task.best_plan_so_far()

    def _should_cut_short(self, task, account: MemoryAccount) -> bool:
        """Broker-predicted OOM: stop exploring and take the best plan.

        Fires when the broker projects memory exhaustion and this task
        already uses more than twice its fair share of the compilation
        target — the paper's "the system will likely run out of memory
        before compilation completes."
        """
        if not self.best_plan_so_far or self.broker is None:
            return False
        if not self.broker.pressure():
            return False
        fair_share = self.broker.compile_target() / max(1, self.active)
        # only outsized compilations are cut short: beyond three times
        # their fair share and well past the big-monitor threshold
        cutoff = max(3.0 * fair_share,
                     1.25 * float(self.governor.static_thresholds[-1]))
        return account.used > cutoff
