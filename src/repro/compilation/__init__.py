"""The query-compilation pipeline.

``compile_query`` runs parse → bind → staged optimization as one
simulation process, charging every optimizer allocation to the task's
memory account and checking the throttling governor after each
increment — so a compilation blocks at whichever monitor its *own
memory use* requires, precisely the paper's §4.1 mechanism.
"""

from repro.compilation.compiled import CompiledPlan
from repro.compilation.pipeline import CompilationPipeline

__all__ = ["CompilationPipeline", "CompiledPlan"]
