"""The artifact a compilation produces."""

from __future__ import annotations

from dataclasses import dataclass

from repro.plans.physical import PhysicalNode
from repro.units import KiB


@dataclass
class CompiledPlan:
    """A compiled, executable plan plus compile-time facts."""

    plan: PhysicalNode
    #: optimizer's cost estimate (seconds-equivalent units)
    estimated_cost: float
    #: peak compilation memory of the producing task (bytes)
    peak_memory: int
    #: total optimizer work units spent
    work_units: int
    #: True when this plan is a best-plan-so-far fallback
    degraded: bool = False
    #: wall-clock (simulated) seconds compilation took, incl. blocking
    compile_time: float = 0.0
    #: seconds spent blocked at gateways
    gateway_wait: float = 0.0

    @property
    def cache_bytes(self) -> int:
        """Plan-cache footprint of this plan (header + per-operator)."""
        operators = sum(1 for _ in self.plan.walk())
        return 64 * KiB + operators * 16 * KiB
