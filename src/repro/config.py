"""Configuration objects for the repro DBMS.

All tunables live here as frozen dataclasses so an experiment is fully
described by one :class:`ServerConfig` value.  Defaults reproduce the
paper's testbed: 8 CPUs, 4 GiB of RAM, an 8-disk RAID-0 array, and the
SQL Server 2005 gateway ladder (4/CPU small, 1/CPU medium, 1 big).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import GiB, KiB, MiB

if TYPE_CHECKING:  # import would cycle through catalog/storage at runtime
    from repro.optimizer.spec import OptimizerSpec


@dataclass(frozen=True)
class HardwareConfig:
    """The machine the simulated server runs on (paper §5.2)."""

    #: number of CPUs (paper: 8x Intel Xeon 700 MHz)
    cpus: int = 8
    #: relative CPU speed multiplier (1.0 = paper's 700 MHz Xeon)
    cpu_speed: float = 1.0
    #: bytes of physical memory available to the DBMS (paper: 4 GB)
    physical_memory: int = 4 * GiB
    #: number of disks in the RAID-0 array (paper: 8x SCSI-II 72 GB)
    disks: int = 8
    #: sequential bandwidth of one disk, bytes/second (~40 MB/s Ultra3 era)
    disk_bandwidth: int = 40 * MiB
    #: average positioning latency per I/O request, seconds
    disk_seek_time: float = 0.008

    def __post_init__(self):
        if self.cpus <= 0:
            raise ConfigurationError("cpus must be positive")
        if self.physical_memory <= 0:
            raise ConfigurationError("physical_memory must be positive")
        if self.disks <= 0:
            raise ConfigurationError("disks must be positive")
        if self.cpu_speed <= 0:
            raise ConfigurationError("cpu_speed must be positive")

    @property
    def total_disk_bandwidth(self) -> int:
        """Aggregate sequential bandwidth of the RAID-0 array."""
        return self.disks * self.disk_bandwidth


@dataclass(frozen=True)
class GatewayConfig:
    """One memory monitor of the throttling ladder (paper Figure 1)."""

    #: human-readable monitor name ("small", "medium", "big")
    name: str = "small"
    #: a compilation must hold this monitor once its own memory exceeds
    #: this many bytes (the *static* threshold; may be overridden
    #: dynamically by the broker)
    threshold: int = 512 * KiB
    #: concurrent compilations admitted per CPU (None = absolute count)
    per_cpu: Optional[int] = 4
    #: absolute concurrent compilations admitted (used when per_cpu is None)
    absolute: Optional[int] = None
    #: seconds a compilation may wait at this monitor before a
    #: "timeout" error is returned to the client (paper: timeouts
    #: increase for later monitors)
    timeout: float = 360.0

    def capacity(self, cpus: int) -> int:
        """Admission limit for a machine with ``cpus`` processors."""
        if self.per_cpu is not None:
            return self.per_cpu * cpus
        if self.absolute is not None:
            return self.absolute
        raise ConfigurationError(f"gateway {self.name!r} has no capacity rule")


def default_gateways() -> Tuple[GatewayConfig, ...]:
    """The SQL Server 2005 ladder described in §4.1.

    Queries below the *small* threshold run unthrottled (that is what
    keeps diagnostic queries alive on an overloaded server); the small
    monitor admits 4 compiles per CPU, the medium monitor 1 per CPU and
    the big monitor exactly one compilation in the whole server.
    """
    return (
        GatewayConfig(name="small", threshold=512 * KiB,
                      per_cpu=4, absolute=None, timeout=360.0),
        GatewayConfig(name="medium", threshold=40 * MiB,
                      per_cpu=1, absolute=None, timeout=600.0),
        GatewayConfig(name="big", threshold=180 * MiB,
                      per_cpu=None, absolute=1, timeout=1200.0),
    )


@dataclass(frozen=True)
class ThrottleConfig:
    """Compilation-throttling policy (paper §4)."""

    #: master switch — False reproduces the paper's baseline server
    enabled: bool = True
    #: the monitor ladder, ordered by increasing threshold
    gateways: Tuple[GatewayConfig, ...] = field(default_factory=default_gateways)
    #: extension (a): derive medium/big thresholds from the broker's
    #: compilation target via  threshold = target * F / S
    dynamic_thresholds: bool = True
    #: F — fraction of the compilation target allotted to small compiles
    small_fraction: float = 0.45
    #: fraction of the target allotted to medium compiles
    medium_fraction: float = 0.35
    #: extension (b): return the best already-explored plan instead of
    #: failing when memory runs out mid-optimization
    best_plan_so_far: bool = True
    #: floor for dynamically computed thresholds, bytes
    min_dynamic_threshold: int = 512 * KiB

    def __post_init__(self):
        thresholds = [g.threshold for g in self.gateways]
        if thresholds != sorted(thresholds):
            raise ConfigurationError("gateway thresholds must be increasing")
        if not 0.0 < self.small_fraction < 1.0:
            raise ConfigurationError("small_fraction must be in (0, 1)")
        if not 0.0 < self.medium_fraction < 1.0:
            raise ConfigurationError("medium_fraction must be in (0, 1)")


@dataclass(frozen=True)
class BrokerConfig:
    """Memory Broker policy (paper §3)."""

    #: master switch (disabling also disables dynamic gateway thresholds)
    enabled: bool = True
    #: seconds between broker accounting sweeps
    interval: float = 1.0
    #: samples in the sliding window used for trend estimation
    window: int = 10
    #: how far ahead (seconds) the broker projects usage
    horizon: float = 5.0
    #: fraction of physical memory the broker tries to keep free as
    #: headroom against allocation bursts
    headroom_fraction: float = 0.05
    #: steady-state fraction of physical memory offered to compilation
    #: when the system is under pressure
    compile_target_fraction: float = 0.25
    #: floor on the buffer-pool target (fraction of physical memory) —
    #: the broker never asks the pool to shrink below this
    buffer_pool_floor_fraction: float = 0.15


@dataclass(frozen=True)
class ExecutionConfig:
    """Query-execution workspace (memory grant) policy."""

    #: fraction of physical memory usable as execution workspace
    workspace_fraction: float = 0.55
    #: largest single grant as a fraction of the workspace
    max_grant_fraction: float = 0.20
    #: smallest grant worth running with, as a fraction of the ideal
    #: grant; below this the query waits rather than thrash
    min_grant_fraction: float = 0.25
    #: seconds a query may wait for a grant before a timeout error
    grant_timeout: float = 600.0


@dataclass(frozen=True)
class PlanCacheConfig:
    """Compiled-plan cache policy."""

    #: cap on cache size, bytes (elastic below this; broker can shrink)
    max_bytes: int = 512 * MiB
    #: per-sweep fraction evicted when the broker demands shrinking
    shrink_step: float = 0.25


@dataclass(frozen=True)
class ServerConfig:
    """Everything needed to boot a :class:`repro.server.DatabaseServer`."""

    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    throttle: ThrottleConfig = field(default_factory=ThrottleConfig)
    broker: BrokerConfig = field(default_factory=BrokerConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    plan_cache: PlanCacheConfig = field(default_factory=PlanCacheConfig)
    #: master random seed for the server's internal randomness
    seed: int = 20070107  # CIDR'07 opening day
    #: global time-scale divisor: 1.0 = paper scale; 10.0 runs every
    #: duration (compiles, executions, timeouts) 10x faster, keeping
    #: every ratio intact.  Benchmarks use scaled configs.
    time_scale: float = 1.0
    #: optimizer search-effort multiplier (scales exploration budgets);
    #: CPU-per-unit scales inversely so simulated compile *times* hold
    optimizer_effort: float = 1.0
    #: scales simulated memo bytes; pairing effort=1/k with memory
    #: multiplier=k preserves the full-effort compile-memory profile
    #: while doing 1/k of the Python work (used by the benchmarks)
    optimizer_memory_multiplier: float = 1.0
    #: optimizer pipeline stage strategies; None selects the default
    #: pipeline (basic/memo/cost/estimates), byte-identical to the
    #: pre-pipeline optimizer
    optimizer: Optional["OptimizerSpec"] = None

    def fast(self, factor: float = 4.0) -> "ServerConfig":
        """A cheaper-to-simulate copy with the same memory behaviour:
        optimizer effort divided by ``factor``, simulated memo bytes
        multiplied by it."""
        if factor <= 0:
            raise ConfigurationError("fast factor must be positive")
        return replace(
            self,
            optimizer_effort=self.optimizer_effort / factor,
            optimizer_memory_multiplier=(
                self.optimizer_memory_multiplier * factor),
        )

    def scaled(self, factor: float) -> "ServerConfig":
        """A copy of this config with time compressed by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("time scale factor must be positive")
        return replace(self, time_scale=self.time_scale * factor)

    def with_throttling(self, enabled: bool) -> "ServerConfig":
        """A copy with compilation throttling switched on or off."""
        return replace(self, throttle=replace(self.throttle, enabled=enabled))


def paper_server_config(throttling: bool = True) -> ServerConfig:
    """The configuration of the paper's testbed (§5.2)."""
    return ServerConfig().with_throttling(throttling)
