"""Exception hierarchy for the repro DBMS.

Every failure a client can observe maps onto one of these exception
types.  The taxonomy mirrors the paper's discussion of failure modes:
out-of-memory errors (allocation beyond the physical budget), gateway
timeouts (a throttled compilation that made no progress for too long),
and memory-grant timeouts on the execution side.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro DBMS."""


class ConfigurationError(ReproError):
    """An invalid server, workload or experiment configuration."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (programming error)."""


class MemoryError_(ReproError):
    """Base class for memory-subsystem failures."""


class OutOfMemoryError(MemoryError_):
    """An allocation could not be satisfied from physical memory.

    Corresponds to the "out-of-memory errors" the paper's throttling
    mechanism is designed to trade away (section 4.1).
    """

    def __init__(self, clerk_name: str, requested: int, available: int):
        self.clerk_name = clerk_name
        self.requested = requested
        self.available = available
        super().__init__(
            f"out of memory: clerk {clerk_name!r} requested {requested} bytes, "
            f"only {available} available"
        )


class AccountClosedError(MemoryError_):
    """An allocation was attempted against a closed memory account."""


class QueryError(ReproError):
    """Base class for per-query failures returned to a client."""

    #: short tag used by the metrics collector to build error taxonomies
    kind: str = "query_error"


class GatewayTimeoutError(QueryError):
    """A compilation waited too long at a memory monitor (paper section 4).

    The paper: "If the compilation of a query remains blocked for an
    excessively long period of time, its transaction is aborted with a
    'timeout' error returned to the client."
    """

    kind = "gateway_timeout"

    def __init__(self, gateway_name: str, waited: float):
        self.gateway_name = gateway_name
        self.waited = waited
        super().__init__(
            f"compilation timed out after waiting {waited:.1f}s at the "
            f"{gateway_name} memory monitor"
        )


class CompileOutOfMemoryError(QueryError):
    """Compilation failed because an optimizer allocation hit OOM."""

    kind = "compile_oom"


class GrantTimeoutError(QueryError):
    """A query waited too long for an execution memory grant."""

    kind = "grant_timeout"

    def __init__(self, requested: int, waited: float):
        self.requested = requested
        self.waited = waited
        super().__init__(
            f"memory grant of {requested} bytes not available after "
            f"{waited:.1f}s"
        )


class ExecutionOutOfMemoryError(QueryError):
    """Query execution failed because a runtime allocation hit OOM."""

    kind = "execution_oom"


class SqlError(QueryError):
    """Base class for front-end (parse/bind) failures."""

    kind = "sql_error"


class SqlSyntaxError(SqlError):
    """The query text could not be parsed."""

    kind = "sql_syntax_error"

    def __init__(self, message: str, position: int = -1):
        self.position = position
        super().__init__(message)


class BindError(SqlError):
    """A name in the query could not be resolved against the catalog."""

    kind = "bind_error"


class CatalogError(ReproError):
    """Catalog misuse: duplicate/unknown tables, bad DDL."""
