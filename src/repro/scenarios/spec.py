"""The declarative scenario specification.

A :class:`ScenarioSpec` is the one currency every experiment surface
consumes: the CLI (``repro scenarios …`` and the legacy ``figure`` /
``sweep`` / ``ablation`` commands), the parallel experiment engine, the
benchmark suite and user-authored JSON files all describe a run as one
frozen, validated, round-trippable value.  Adding a scenario is a data
change, not a code change.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Tuple

from repro.admission.spec import AdmissionSpec, SloSpec
from repro.config import ServerConfig, default_gateways, paper_server_config
from repro.errors import ConfigurationError
from repro.optimizer.spec import OptimizerSpec
from repro.traffic.spec import TrafficSpec

#: version of the JSON spec format.  ``ScenarioSpec.to_dict`` stamps
#: it; ``from_dict`` accepts documents of this and every older version
#: (a missing version means version 1, predating versioning) and
#: rejects versions from the future so an old build never silently
#: misreads a newer spec file.
#: History: 1 = the PR 2 format; 2 = cross-variant expectations
#: (``than_variant``, ``value`` optional); 3 = the open-loop
#: ``traffic`` axis; 4 = the ``kernel`` knob (simulation scheduler
#: core selection); 5 = the ``admission`` / ``slo`` axes (policy-driven
#: admission control and latency objectives); 6 = the ``optimizer``
#: axis (pipeline stage strategies).
#: Documents are stamped with the *minimal* version able to read them
#: (a spec without a traffic axis is still a version-2 document; one
#: on the default legacy kernel needs at most version 3; one without
#: admission policies or SLOs needs at most version 4; one without an
#: optimizer axis needs at most version 5), so pre-existing scenarios
#: keep producing byte-identical artifacts and stay readable by older
#: builds.
SPEC_FORMAT_VERSION = 6

#: comparison operators an Expectation may use
EXPECTATION_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

#: what a scenario *is*: an engine batch, a configuration rendering
#: (Figure 1's monitor ladder) or a compilation-memory trace (Figure 2)
SCENARIO_KINDS = ("experiment", "monitors", "trace")

#: how an experiment scenario renders its batch
RENDER_STYLES = ("table", "comparison", "monitors", "trace")


def _valid_workloads() -> Tuple[str, ...]:
    from repro.experiments.runner import WORKLOAD_FACTORIES

    return tuple(sorted(WORKLOAD_FACTORIES))


def _valid_presets() -> Tuple[str, ...]:
    from repro.experiments.runner import PRESETS

    return tuple(sorted(PRESETS))


@dataclass(frozen=True)
class Expectation:
    """One metric assertion checked after a scenario runs.

    ``variant`` names the run the metric comes from; ``None`` reads the
    scenario-level aggregate metrics (``total_completed``,
    ``improvement``, …).  ``errors.<kind>`` metrics default to 0 when
    the error kind never occurred.

    Cross-variant form: with ``than_variant`` set, the assertion
    compares the *same metric* between two variants instead of against
    a literal ``value`` — e.g. ``{"metric": "failed", "op": "<",
    "variant": "soft", "than_variant": "hard"}`` asserts that the
    ``soft`` variant failed less than the ``hard`` one.  ``value``
    must be omitted in that form (and ``variant`` is required).
    """

    metric: str
    op: str
    value: Optional[float] = None
    variant: Optional[str] = None
    than_variant: Optional[str] = None

    def __post_init__(self):
        if not self.metric:
            raise ConfigurationError("expectation metric must be non-empty")
        if self.op not in EXPECTATION_OPS:
            raise ConfigurationError(
                f"unknown expectation op {self.op!r}; valid ops: "
                f"{', '.join(EXPECTATION_OPS)}")
        if self.than_variant is not None:
            if self.value is not None:
                raise ConfigurationError(
                    f"cross-variant expectation on {self.metric!r} takes "
                    f"either a value or a than_variant, not both")
            if self.variant is None:
                raise ConfigurationError(
                    f"cross-variant expectation on {self.metric!r} needs "
                    f"a variant to compare from")
            if self.variant == self.than_variant:
                raise ConfigurationError(
                    f"cross-variant expectation on {self.metric!r} "
                    f"compares variant {self.variant!r} against itself")
        elif isinstance(self.value, bool) \
                or not isinstance(self.value, (int, float)):
            raise ConfigurationError(
                f"expectation value must be a number, "
                f"got {self.value!r}")

    def holds(self, actual: float,
              reference: Optional[float] = None) -> bool:
        """Whether ``actual`` satisfies the assertion.

        For cross-variant expectations the caller supplies
        ``reference`` (the ``than_variant``'s metric); plain
        expectations compare against the literal ``value``.
        """
        threshold = reference if self.than_variant is not None \
            else self.value
        if threshold is None:
            return False
        return EXPECTATION_OPS[self.op](actual, threshold)

    def describe(self) -> str:
        where = f"{self.variant}." if self.variant else ""
        if self.than_variant is not None:
            return (f"{where}{self.metric} {self.op} "
                    f"{self.than_variant}.{self.metric}")
        return f"{where}{self.metric} {self.op} {self.value:g}"

    def to_dict(self) -> dict:
        doc = {"metric": self.metric, "op": self.op}
        if self.value is not None:
            doc["value"] = self.value
        if self.variant is not None:
            doc["variant"] = self.variant
        if self.than_variant is not None:
            doc["than_variant"] = self.than_variant
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Expectation":
        return cls(**_checked_kwargs(cls, doc, "expectation"))


@dataclass(frozen=True)
class ConfigOverrides:
    """Server-config deltas a variant applies on top of the paper config.

    Every field defaults to ``None`` (= keep the paper value), so a
    spec only states what it changes — the ablation toggles, hardware
    shrinks and broker switches the paper reports tuning.
    """

    throttling: Optional[bool] = None
    #: restrict the ladder to its first N monitors (0 = throttle off)
    gateway_count: Optional[int] = None
    dynamic_thresholds: Optional[bool] = None
    best_plan_so_far: Optional[bool] = None
    broker_enabled: Optional[bool] = None
    physical_memory: Optional[int] = None
    cpus: Optional[int] = None

    def __post_init__(self):
        if self.gateway_count is not None \
                and not 0 <= self.gateway_count <= 3:
            raise ConfigurationError("gateway_count must be 0..3")
        if self.physical_memory is not None and self.physical_memory <= 0:
            raise ConfigurationError("physical_memory must be positive")
        if self.cpus is not None and self.cpus <= 0:
            raise ConfigurationError("cpus must be positive")

    def is_noop(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))

    def only_toggles_throttling(self) -> bool:
        """True when the delta is expressible by the ``throttling`` flag
        alone (such variants need no ServerConfig override object)."""
        return all(getattr(self, f.name) is None for f in fields(self)
                   if f.name != "throttling")

    def apply(self, base: Optional[ServerConfig] = None) -> ServerConfig:
        cfg = base if base is not None else paper_server_config()
        if self.physical_memory is not None or self.cpus is not None:
            hardware = cfg.hardware
            if self.physical_memory is not None:
                hardware = replace(hardware,
                                   physical_memory=self.physical_memory)
            if self.cpus is not None:
                hardware = replace(hardware, cpus=self.cpus)
            cfg = replace(cfg, hardware=hardware)
        if self.gateway_count is not None:
            if self.gateway_count == 0:
                cfg = cfg.with_throttling(False)
            else:
                cfg = replace(cfg, throttle=replace(
                    cfg.throttle, enabled=True,
                    gateways=default_gateways()[:self.gateway_count]))
        if self.dynamic_thresholds is not None:
            cfg = replace(cfg, throttle=replace(
                cfg.throttle, dynamic_thresholds=self.dynamic_thresholds))
        if self.best_plan_so_far is not None:
            cfg = replace(cfg, throttle=replace(
                cfg.throttle, best_plan_so_far=self.best_plan_so_far))
        if self.broker_enabled is not None:
            cfg = replace(cfg, broker=replace(
                cfg.broker, enabled=self.broker_enabled))
        if self.throttling is not None:
            cfg = cfg.with_throttling(self.throttling)
        return cfg

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if getattr(self, f.name) is not None}

    @classmethod
    def from_dict(cls, doc: dict) -> "ConfigOverrides":
        return cls(**_checked_kwargs(cls, doc, "overrides"))


@dataclass(frozen=True)
class VariantSpec:
    """One named run of a scenario (a point of its sweep/comparison)."""

    name: str
    overrides: ConfigOverrides = field(default_factory=ConfigOverrides)
    #: per-variant client count (None = the scenario's)
    clients: Optional[int] = None
    #: per-variant think time (None = the scenario's)
    think_time: Optional[float] = None
    #: per-variant admission policy (None = the scenario's) — what lets
    #: one scenario compare `fifo` vs `weighted_fair` across variants
    admission: Optional[AdmissionSpec] = None
    #: per-variant optimizer pipeline (None = the scenario's) — what
    #: lets one scenario compare `memo` vs `ues` across variants
    optimizer: Optional[OptimizerSpec] = None

    def __post_init__(self):
        if not self.name or any(c.isspace() for c in self.name):
            raise ConfigurationError(
                f"variant name {self.name!r} must be non-empty with no "
                f"whitespace")
        if self.clients is not None and self.clients < 1:
            raise ConfigurationError("variant clients must be >= 1")

    def to_dict(self) -> dict:
        doc: dict = {"name": self.name}
        overrides = self.overrides.to_dict()
        if overrides:
            doc["overrides"] = overrides
        if self.clients is not None:
            doc["clients"] = self.clients
        if self.think_time is not None:
            doc["think_time"] = self.think_time
        if self.admission is not None:
            doc["admission"] = self.admission.to_dict()
        if self.optimizer is not None:
            doc["optimizer"] = self.optimizer.to_dict()
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "VariantSpec":
        kwargs = _checked_kwargs(cls, doc, "variant")
        overrides = kwargs.get("overrides")
        if isinstance(overrides, dict):
            kwargs["overrides"] = ConfigOverrides.from_dict(overrides)
        admission = kwargs.get("admission")
        if isinstance(admission, dict):
            kwargs["admission"] = AdmissionSpec.from_dict(admission)
        optimizer = kwargs.get("optimizer")
        if isinstance(optimizer, dict):
            kwargs["optimizer"] = OptimizerSpec.from_dict(optimizer)
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described scenario (see module docstring)."""

    scenario_id: str
    title: str
    family: str
    kind: str = "experiment"
    workload: str = "sales"
    #: kind-dependent parameters, canonicalized to a sorted tuple of
    #: pairs so specs stay hashable and round-trippable: for
    #: ``experiment`` scenarios these are extra workload-factory
    #: keyword arguments (validated at construction); ``monitors`` /
    #: ``trace`` scenarios pass them to the figure renderer instead
    workload_params: Tuple[Tuple[str, object], ...] = ()
    clients: int = 30
    preset: str = "smoke"
    seed: int = 3
    think_time: float = 15.0
    #: open-loop traffic shape (arrival process or trace replay);
    #: ``None`` = the default closed-loop think-time clients
    traffic: Optional[TrafficSpec] = None
    #: simulation scheduler core (``legacy`` heap or the calendar-queue
    #: ``wheel``); kernels pop events in the identical order, so this
    #: knob trades wall clock, never simulated numbers
    kernel: str = "legacy"
    #: admission policy arbitrating the open-loop slots (``None`` =
    #: FIFO, pinned byte-identical to the pre-policy behavior);
    #: variants may override it
    admission: Optional[AdmissionSpec] = None
    #: latency objectives evaluated against the ``open_loop`` facts
    #: into pinned ``slo.*`` metrics
    slo: Optional[SloSpec] = None
    #: optimizer pipeline stage strategies (``None`` = the default
    #: pipeline, pinned byte-identical to the pre-pipeline optimizer);
    #: variants may override it
    optimizer: Optional[OptimizerSpec] = None
    variants: Tuple[VariantSpec, ...] = (VariantSpec("run"),)
    expect: Tuple[Expectation, ...] = ()
    render: str = "table"
    description: str = ""

    def __post_init__(self):
        # canonicalize collection fields so equality is structural
        object.__setattr__(self, "variants", tuple(self.variants))
        object.__setattr__(self, "expect", tuple(self.expect))
        params = self.workload_params
        if isinstance(params, dict):
            params = params.items()
        object.__setattr__(self, "workload_params",
                           tuple(sorted((str(k), v) for k, v in params)))
        self._validate()

    def _validate(self) -> None:
        if not self.scenario_id or any(c.isspace() for c in self.scenario_id):
            raise ConfigurationError(
                f"scenario_id {self.scenario_id!r} must be non-empty with "
                f"no whitespace")
        if not self.title:
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} needs a title")
        if not self.family:
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} needs a family")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; valid kinds: "
                f"{', '.join(SCENARIO_KINDS)}")
        if self.render not in RENDER_STYLES:
            raise ConfigurationError(
                f"unknown render style {self.render!r}; valid styles: "
                f"{', '.join(RENDER_STYLES)}")
        workloads = _valid_workloads()
        if self.workload not in workloads:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; valid workloads: "
                f"{', '.join(workloads)}")
        if self.kind == "experiment" and self.workload_params:
            # fail at definition time, not after an expensive run:
            # instantiating the factory validates the parameter names
            from repro.experiments.runner import make_workload

            make_workload(self.workload, **dict(self.workload_params))
        presets = _valid_presets()
        if self.preset not in presets:
            raise ConfigurationError(
                f"unknown preset {self.preset!r}; valid presets: "
                f"{', '.join(presets)}")
        if self.clients < 1:
            raise ConfigurationError("clients must be >= 1")
        if self.traffic is not None and self.kind != "experiment":
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} is a {self.kind!r} "
                f"scenario; the traffic axis only applies to "
                f"experiment scenarios")
        from repro.sim.environment import KERNEL_NAMES

        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; valid kernels: "
                f"{', '.join(KERNEL_NAMES)}")
        if self.kernel != "legacy" and self.kind != "experiment":
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} is a {self.kind!r} "
                f"scenario; the kernel knob only applies to "
                f"experiment scenarios")
        if self.traffic is None:
            if self.admission is not None or self.slo is not None \
                    or any(v.admission is not None
                           for v in self.variants):
                raise ConfigurationError(
                    f"scenario {self.scenario_id!r} has no traffic "
                    f"axis; admission policies and SLOs govern "
                    f"open-loop admission and require one")
        if self.kind != "experiment" \
                and (self.optimizer is not None
                     or any(v.optimizer is not None
                            for v in self.variants)):
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} is a {self.kind!r} "
                f"scenario; the optimizer axis only applies to "
                f"experiment scenarios")
        if not self.variants:
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} needs at least one variant")
        if self.kind != "experiment" and len(self.variants) != 1:
            # variants only vary experiment configs; a monitors/trace
            # scenario is a single unit of work (one shard cell)
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} is a {self.kind!r} "
                f"scenario and takes exactly one variant")
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"scenario {self.scenario_id!r} has duplicate variant "
                f"names: {names}")
        for expectation in self.expect:
            for referenced in (expectation.variant,
                               expectation.than_variant):
                if referenced is not None and referenced not in names:
                    raise ConfigurationError(
                        f"expectation {expectation.describe()!r} "
                        f"references unknown variant {referenced!r} "
                        f"(variants: {', '.join(names)})")

    # ------------------------------------------------------------ API
    def customized(self, preset: Optional[str] = None,
                   seed: Optional[int] = None,
                   clients: Optional[int] = None,
                   kernel: Optional[str] = None,
                   optimizer: Optional[str] = None) -> "ScenarioSpec":
        """A copy with CLI-style overrides applied (and re-validated).

        A ``clients`` override takes effect for every variant,
        including those carrying their own per-variant count; an
        ``optimizer`` override (a join-enumerator name) likewise
        replaces per-variant optimizer pipelines so every variant runs
        the requested enumerator.
        """
        spec = self
        if clients is not None and any(v.clients is not None
                                       for v in spec.variants):
            spec = replace(spec, variants=tuple(
                replace(v, clients=None) for v in spec.variants))
        if optimizer is not None and any(v.optimizer is not None
                                         for v in spec.variants):
            spec = replace(spec, variants=tuple(
                replace(v, optimizer=None) for v in spec.variants))
        updates: Dict[str, object] = {}
        if preset is not None:
            updates["preset"] = preset
        if seed is not None:
            updates["seed"] = seed
        if clients is not None:
            updates["clients"] = clients
        if kernel is not None:
            updates["kernel"] = kernel
        if optimizer is not None:
            updates["optimizer"] = replace(
                self.optimizer or OptimizerSpec(), enumerator=optimizer)
        return replace(spec, **updates) if updates else spec

    def variant_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.variants)

    def document_version(self) -> int:
        """The minimal spec-format version able to read this spec.

        Only the optimizer axis needs version 6, only admission
        policies and SLOs need version 5, only a non-default kernel
        needs version 4 and only the traffic axis needs version 3;
        everything else has been expressible since version 2.  Minimal
        stamping is what keeps pre-existing scenarios byte-identical
        in artifacts across format bumps.
        """
        if self.optimizer is not None \
                or any(v.optimizer is not None for v in self.variants):
            return 6
        if self.admission is not None or self.slo is not None \
                or any(v.admission is not None for v in self.variants):
            return 5
        if self.kernel != "legacy":
            return 4
        if self.traffic is not None:
            return 3
        return 2

    def to_dict(self) -> dict:
        """The JSON-ready document form of this spec.

        Stamped with the spec-format ``version`` (the minimal one able
        to read it, see :meth:`document_version`) so files written
        today stay readable (or fail loudly) as the format evolves.
        """
        doc = {
            "version": self.document_version(),
            "scenario_id": self.scenario_id,
            "title": self.title,
            "family": self.family,
            "kind": self.kind,
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "clients": self.clients,
            "preset": self.preset,
            "seed": self.seed,
            "think_time": self.think_time,
        }
        if self.traffic is not None:
            doc["traffic"] = self.traffic.to_dict()
        if self.kernel != "legacy":
            doc["kernel"] = self.kernel
        if self.admission is not None:
            doc["admission"] = self.admission.to_dict()
        if self.slo is not None:
            doc["slo"] = self.slo.to_dict()
        if self.optimizer is not None:
            doc["optimizer"] = self.optimizer.to_dict()
        doc.update({
            "variants": [v.to_dict() for v in self.variants],
            "expect": [e.to_dict() for e in self.expect],
            "render": self.render,
            "description": self.description,
        })
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ScenarioSpec":
        """Parse a spec document, rejecting unknown fields and versions.

        Unknown top-level keys raise :class:`ConfigurationError` naming
        the valid ones; a ``version`` newer than this build understands
        is rejected instead of being misread.
        """
        doc = _checked_version(doc, "scenario")
        kwargs = _checked_kwargs(cls, doc, "scenario")
        traffic = kwargs.get("traffic")
        if isinstance(traffic, dict):
            kwargs["traffic"] = TrafficSpec.from_dict(traffic)
        admission = kwargs.get("admission")
        if isinstance(admission, dict):
            kwargs["admission"] = AdmissionSpec.from_dict(admission)
        slo = kwargs.get("slo")
        if isinstance(slo, dict):
            kwargs["slo"] = SloSpec.from_dict(slo)
        optimizer = kwargs.get("optimizer")
        if isinstance(optimizer, dict):
            kwargs["optimizer"] = OptimizerSpec.from_dict(optimizer)
        variants = kwargs.get("variants")
        if variants is not None:
            kwargs["variants"] = tuple(
                VariantSpec.from_dict(v) if isinstance(v, dict) else v
                for v in variants)
        expectations = kwargs.get("expect")
        if expectations is not None:
            kwargs["expect"] = tuple(
                Expectation.from_dict(e) if isinstance(e, dict) else e
                for e in expectations)
        return cls(**kwargs)


def _checked_version(doc: dict, what: str) -> dict:
    """Strip and validate the spec-format ``version`` key.

    Returns a copy of ``doc`` without the key; a missing version means
    version 1 (documents written before versioning existed).
    """
    if not isinstance(doc, dict):
        raise ConfigurationError(f"{what} must be a JSON object, "
                                 f"got {type(doc).__name__}")
    doc = dict(doc)
    version = doc.pop("version", SPEC_FORMAT_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ConfigurationError(
            f"{what} version must be an integer, got {version!r}")
    if not 1 <= version <= SPEC_FORMAT_VERSION:
        raise ConfigurationError(
            f"{what} format version {version} is not supported by this "
            f"build (understands versions 1..{SPEC_FORMAT_VERSION}); "
            f"re-export the spec or upgrade")
    return doc


def _checked_kwargs(cls, doc: dict, what: str) -> dict:
    """Reject unknown keys with a ConfigurationError naming them."""
    if not isinstance(doc, dict):
        raise ConfigurationError(f"{what} must be a JSON object, "
                                 f"got {type(doc).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} field(s) {', '.join(unknown)}; valid "
            f"fields: {', '.join(sorted(known))}")
    return dict(doc)
