"""Declarative scenarios: one spec type for every experiment surface.

``ScenarioSpec`` (spec), the registry (``register_scenario`` /
``get_scenario`` / ``list_scenarios``) and the ``run_scenario`` facade
are the public API; importing this package also registers the built-in
scenario catalogue (``repro.scenarios.library``).
"""

from repro.scenarios.spec import (
    SPEC_FORMAT_VERSION,
    ConfigOverrides,
    Expectation,
    ScenarioSpec,
    VariantSpec,
)
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_families,
    scenario_ids,
    unregister_scenario,
)
from repro.scenarios.facade import (
    CheckOutcome,
    ScenarioResult,
    evaluate_expectations,
    jobs_for_scenario,
    load_scenario_file,
    metrics_from_summary,
    rebuild_scenario_payload,
    result_from_summary,
    result_metrics,
    run_cell_scenario,
    run_scenario,
    run_scenarios,
    scenario_artifact_name,
    scenario_payload,
    scenario_result_from_cells,
    write_scenario_artifact,
)
from repro.scenarios.library import (
    ABLATION_SCENARIOS,
    best_plan_ablation_scenario,
    dynamic_ablation_scenario,
    flash_crowd_scenario,
    gateway_ablation_scenario,
    noisy_neighbor_scenario,
    saturation_scenario,
    throughput_scenario,
)
from repro.traffic.spec import TrafficSpec

__all__ = [
    "ABLATION_SCENARIOS",
    "CheckOutcome",
    "ConfigOverrides",
    "Expectation",
    "SPEC_FORMAT_VERSION",
    "ScenarioResult",
    "ScenarioSpec",
    "TrafficSpec",
    "VariantSpec",
    "best_plan_ablation_scenario",
    "dynamic_ablation_scenario",
    "evaluate_expectations",
    "flash_crowd_scenario",
    "gateway_ablation_scenario",
    "noisy_neighbor_scenario",
    "get_scenario",
    "jobs_for_scenario",
    "list_scenarios",
    "load_scenario_file",
    "metrics_from_summary",
    "rebuild_scenario_payload",
    "register_scenario",
    "result_from_summary",
    "result_metrics",
    "run_cell_scenario",
    "run_scenario",
    "run_scenarios",
    "saturation_scenario",
    "scenario_artifact_name",
    "scenario_families",
    "scenario_ids",
    "scenario_payload",
    "scenario_result_from_cells",
    "throughput_scenario",
    "unregister_scenario",
    "write_scenario_artifact",
]
