"""The programmatic scenario facade.

``run_scenario(spec, workers=N)`` is the one entry point the CLI, the
legacy figure/ablation shims, the engine suite builders and the tests
all route through: it lowers a :class:`ScenarioSpec` to engine jobs,
fans them out, extracts a uniform metric namespace, evaluates the
spec's expectations and renders the scenario's artifact text.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments.engine import (
    BatchResult,
    ExperimentJob,
    run_jobs,
    write_bench_document,
)
from repro.experiments.runner import ExperimentConfig, ExperimentResult
from repro.metrics.report import render_table
from repro.scenarios.spec import Expectation, ScenarioSpec


# ------------------------------------------------------------ lowering
def jobs_for_scenario(spec: ScenarioSpec,
                      prefix: str = "") -> List[ExperimentJob]:
    """One engine job per variant of an experiment scenario.

    Variants whose overrides only toggle throttling lower to plain
    ``ExperimentConfig`` flags (exactly the configs the legacy
    harnesses built); anything richer carries a ServerConfig override.
    """
    if spec.kind != "experiment":
        raise ConfigurationError(
            f"scenario {spec.scenario_id!r} is a {spec.kind!r} scenario; "
            f"only experiment scenarios lower to engine jobs")
    jobs = []
    for variant in spec.variants:
        overrides = variant.overrides
        if overrides.only_toggles_throttling():
            server = None
            throttling = (overrides.throttling
                          if overrides.throttling is not None else True)
        else:
            server = overrides.apply(paper_server_config())
            throttling = server.throttle.enabled
        jobs.append(ExperimentJob(
            name=prefix + variant.name,
            config=ExperimentConfig(
                workload=spec.workload,
                workload_params=spec.workload_params,
                clients=(variant.clients if variant.clients is not None
                         else spec.clients),
                throttling=throttling,
                preset=spec.preset,
                seed=spec.seed,
                think_time=(variant.think_time
                            if variant.think_time is not None
                            else spec.think_time),
                server_overrides=server)))
    return jobs


# ------------------------------------------------------------- results
@dataclass
class CheckOutcome:
    """One evaluated expectation."""

    expectation: Expectation
    actual: Optional[float]
    passed: bool

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        actual = ("n/a" if self.actual is None
                  else f"{self.actual:g}")
        return (f"check {status}: {self.expectation.describe()} "
                f"(actual {actual})")


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    #: engine batch (experiment scenarios only)
    batch: Optional[BatchResult]
    #: variant name -> metric name -> value
    variant_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: scenario-level aggregates (total_completed, improvement, ...)
    scenario_metrics: Dict[str, float] = field(default_factory=dict)
    checks: List[CheckOutcome] = field(default_factory=list)
    #: the scenario's rendered artifact (figure text, table, ladder)
    body: str = ""
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every engine run and every expectation passed."""
        if self.batch is not None and self.batch.errors:
            return False
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        spec = self.spec
        lines = [
            f"== scenario {spec.scenario_id} — {spec.title}",
            f"   family={spec.family} kind={spec.kind} "
            f"workload={spec.workload} preset={spec.preset} "
            f"seed={spec.seed}",
        ]
        if self.body:
            lines.append(self.body)
        if self.batch is not None:
            for name, error in sorted(self.batch.errors.items()):
                lines.append(f"FAILED {name}: {error}")
        for check in self.checks:
            lines.append(check.describe())
        return "\n".join(lines)


# ------------------------------------------------------------- metrics
def result_metrics(result: ExperimentResult) -> Dict[str, float]:
    """The per-variant metric namespace expectations can reference.

    Defined as the summary round trip so the live path and the shard
    merge can never drift: a metric exists here exactly when it can be
    rebuilt from an artifact by :func:`metrics_from_summary`.
    """
    from repro.experiments.engine import summarize_result

    return metrics_from_summary(summarize_result(result))


def metrics_from_summary(summary: Dict) -> Dict[str, float]:
    """Rebuild the per-variant metric namespace from an artifact summary.

    The inverse of :func:`~repro.experiments.engine.summarize_result`
    for expectation purposes: feeding a run's JSON summary through here
    yields exactly ``result_metrics(result)`` of the result it
    summarized (JSON round-trips floats losslessly), which is what lets
    a shard merge re-evaluate expectations on the same numbers a
    single-machine run saw.
    """
    metrics: Dict[str, float] = {
        "completed": float(summary["completed"]),
        "failed": float(summary["failed"]),
        "degraded": float(summary["degraded"]),
        "retries": float(summary["retries"]),
        "mean_per_bucket": summary["mean_per_bucket"],
        "mean_compile_time": summary["mean_compile_time"],
        "mean_execution_time": summary["mean_execution_time"],
        "search_replays": float(summary["search_replays"]),
        "soft_denials": float(summary["soft_denials"]),
        "wall_seconds": summary["wall_seconds"],
    }
    for kind, count in summary["error_counts"].items():
        metrics[f"errors.{kind}"] = float(count)
    return metrics


def _aggregate_metrics(spec: ScenarioSpec,
                       variant_metrics: Dict[str, Dict[str, float]]
                       ) -> Dict[str, float]:
    aggregate = {
        "total_completed": sum(m.get("completed", 0.0)
                               for m in variant_metrics.values()),
        "total_failed": sum(m.get("failed", 0.0)
                            for m in variant_metrics.values()),
        "total_degraded": sum(m.get("degraded", 0.0)
                              for m in variant_metrics.values()),
        "variants_ok": float(len(variant_metrics)),
    }
    # scenario-level errors.<kind> = the sum across variants, so the
    # errors.* zero-default means "never occurred anywhere"
    for metrics in variant_metrics.values():
        for name, value in metrics.items():
            if name.startswith("errors."):
                aggregate[name] = aggregate.get(name, 0.0) + value
    throttled = variant_metrics.get("throttled")
    unthrottled = variant_metrics.get("unthrottled")
    if throttled is not None and unthrottled is not None:
        base = unthrottled.get("completed", 0.0)
        if base > 0:
            aggregate["improvement"] = \
                throttled.get("completed", 0.0) / base - 1.0
        else:
            aggregate["improvement"] = (
                math.inf if throttled.get("completed", 0.0) else 0.0)
    return aggregate


def _lookup_metric(expectation: Expectation,
                   variant_metrics: Dict[str, Dict[str, float]],
                   scenario_metrics: Dict[str, float]
                   ) -> Optional[float]:
    if expectation.variant is None:
        source: Optional[Dict[str, float]] = scenario_metrics
    else:
        source = variant_metrics.get(expectation.variant)
    if source is None:
        return None
    value = source.get(expectation.metric)
    if value is None and expectation.metric.startswith("errors."):
        # an error kind that never occurred counts as zero
        value = 0.0
    return value


def evaluate_expectations(spec: ScenarioSpec,
                          variant_metrics: Dict[str, Dict[str, float]],
                          scenario_metrics: Dict[str, float]
                          ) -> List[CheckOutcome]:
    """Evaluate every expectation of ``spec`` against the metrics.

    A metric that cannot be resolved (missing variant, unknown name)
    fails its check with ``actual=None`` rather than raising — a
    scenario whose runs errored still reports all its checks.
    """
    checks = []
    for expectation in spec.expect:
        actual = _lookup_metric(expectation, variant_metrics,
                                scenario_metrics)
        passed = actual is not None and expectation.holds(actual)
        checks.append(CheckOutcome(expectation=expectation,
                                   actual=actual, passed=passed))
    return checks


# ----------------------------------------------------------- rendering
def _render_experiment(spec: ScenarioSpec, batch: BatchResult) -> str:
    if spec.render == "comparison" \
            and {"throttled", "unthrottled"} <= set(batch.results):
        from repro.experiments.figures import ThroughputComparison

        comparison = ThroughputComparison(
            clients=spec.clients,
            throttled=batch.results["throttled"],
            unthrottled=batch.results["unthrottled"])
        return comparison.render()
    # no wall-clock column: identical runs must render identical bytes
    rows = [(name, result.completed, result.failed, result.degraded)
            for name, result in batch.results.items()]
    return render_table(
        ("variant", "completed", "errors", "degraded"), rows)


# ------------------------------------------------------------- running
def run_scenario(spec: ScenarioSpec, workers: int = 1,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> ScenarioResult:
    """Run one scenario and evaluate its expectations."""
    started = time.time()
    if spec.kind == "monitors":
        result = _run_monitors(spec)
    elif spec.kind == "trace":
        result = _run_trace(spec)
    else:
        result = _run_experiment_scenario(spec, workers, progress)
    result.wall_seconds = time.time() - started
    return result


def _run_experiment_scenario(spec: ScenarioSpec, workers: int,
                             progress) -> ScenarioResult:
    batch = run_jobs(jobs_for_scenario(spec), workers=workers,
                     progress=progress)
    variant_metrics = {name: result_metrics(result)
                       for name, result in batch.results.items()}
    scenario_metrics = _aggregate_metrics(spec, variant_metrics)
    checks = evaluate_expectations(spec, variant_metrics,
                                   scenario_metrics)
    return ScenarioResult(
        spec=spec, batch=batch,
        variant_metrics=variant_metrics,
        scenario_metrics=scenario_metrics,
        checks=checks,
        body=_render_experiment(spec, batch))


def _run_monitors(spec: ScenarioSpec) -> ScenarioResult:
    from repro.experiments.figures import figure1_monitors

    params = dict(spec.workload_params)
    body = figure1_monitors(bool(params.get("throttling", True)))
    # monitors scenarios have no metrics, but their expectations must
    # still be evaluated (to failure) — the shard merge re-evaluates
    # them the same way, keeping both paths byte-identical
    checks = evaluate_expectations(spec, {}, {})
    return ScenarioResult(spec=spec, batch=None, checks=checks, body=body)


def _run_trace(spec: ScenarioSpec) -> ScenarioResult:
    from repro.experiments.figures import figure2_trace

    params = dict(spec.workload_params)
    trace = figure2_trace(
        seed=spec.seed,
        fast_factor=float(params.get("fast_factor", 4.0)),
        background=int(params.get("background", 24)))
    scenario_metrics = {
        "traced_queries": float(len(trace.curves)),
        "plateau_total": float(sum(trace.plateau_count(label)
                                   for label in trace.curves)),
    }
    checks = evaluate_expectations(spec, {}, scenario_metrics)
    return ScenarioResult(spec=spec, batch=None,
                          scenario_metrics=scenario_metrics,
                          checks=checks, body=trace.chart())


# ---------------------------------------------------------- spec files
def load_scenario_file(path: str) -> ScenarioSpec:
    """Parse a user-authored JSON spec file into a validated spec."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read scenario file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"scenario file {path!r} is not valid JSON: {exc}") from None
    return ScenarioSpec.from_dict(doc)


# ----------------------------------------------------------- artifacts
def _json_safe(value):
    """Non-finite floats are invalid strict JSON; ship them as strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def scenario_payload(spec: ScenarioSpec, *, ok: bool,
                     wall_seconds: float,
                     scenario_metrics: Dict[str, float],
                     checks: List[CheckOutcome],
                     errors: Optional[Dict[str, str]] = None,
                     results: Optional[Dict[str, dict]] = None) -> dict:
    """The canonical ``BENCH_scenario_*`` payload (stable key order).

    Both the single-machine path (:func:`write_scenario_artifact`) and
    the shard merge (:mod:`repro.experiments.shards`) assemble their
    artifacts through here, which is what keeps a merged artifact
    byte-compatible with a single-machine one.  ``errors``/``results``
    are only present for experiment scenarios (pass ``None`` to omit
    them, matching a batch-less monitors/trace run).
    """
    payload = {
        "spec": spec.to_dict(),
        "ok": ok,
        "wall_seconds": wall_seconds,
        "scenario_metrics": {name: _json_safe(value) for name, value
                             in sorted(scenario_metrics.items())},
        "checks": [{
            "expectation": check.expectation.to_dict(),
            "actual": _json_safe(check.actual),
            "passed": check.passed,
        } for check in checks],
    }
    if errors is not None:
        payload["errors"] = dict(sorted(errors.items()))
    if results is not None:
        payload["results"] = dict(results)
    return payload


def scenario_artifact_name(spec: ScenarioSpec) -> str:
    """The document name of one scenario's artifact (no extension)."""
    return "scenario_" + spec.scenario_id.replace("/", "_")


def rebuild_scenario_payload(spec: ScenarioSpec, *, wall_seconds: float,
                             errors: Optional[Dict[str, str]] = None,
                             results: Optional[Dict[str, dict]] = None,
                             scenario_metrics: Optional[Dict] = None
                             ) -> dict:
    """Re-derive a scenario's artifact payload from summarized results.

    This is the heart of the shard merge: given the per-variant
    summaries an experiment scenario's shards produced (or, for
    monitors/trace scenarios, the carried ``scenario_metrics``), it
    recomputes variant metrics, scenario aggregates, expectation checks
    and the ``ok`` flag exactly the way a single-machine
    :func:`run_scenario` would, then assembles the canonical payload
    via :func:`scenario_payload`.  Apart from execution-dependent
    fields (wall clock, search replays) the result is byte-identical
    to the single-machine artifact.
    """
    if spec.kind == "experiment":
        errors = dict(errors or {})
        merged = dict(results or {})
        # spec variant order, not shard arrival order: aggregation sums
        # floats in a fixed order so merged numbers match exactly
        ordered = {name: merged[name] for name in spec.variant_names()
                   if name in merged}
        variant_metrics = {name: metrics_from_summary(summary)
                           for name, summary in ordered.items()}
        scenario_metrics = _aggregate_metrics(spec, variant_metrics)
        checks = evaluate_expectations(spec, variant_metrics,
                                       scenario_metrics)
        ok = not errors and all(check.passed for check in checks)
        return scenario_payload(
            spec, ok=ok, wall_seconds=wall_seconds,
            scenario_metrics=scenario_metrics, checks=checks,
            errors=errors, results=ordered)
    # monitors/trace scenarios run whole inside one shard; their
    # metrics travel in the shard document (possibly stringified by
    # _json_safe) and the checks are re-evaluated here
    metrics = {name: float(value) if isinstance(value, str) else value
               for name, value in (scenario_metrics or {}).items()}
    checks = evaluate_expectations(spec, {}, metrics)
    ok = all(check.passed for check in checks)
    return scenario_payload(spec, ok=ok, wall_seconds=wall_seconds,
                            scenario_metrics=metrics, checks=checks)


def write_scenario_artifact(out_dir: str,
                            result: ScenarioResult) -> str:
    """Write one scenario's ``BENCH_scenario_<id>.json``."""
    from repro.experiments.engine import summarize_result

    errors = results = None
    if result.batch is not None:
        errors = result.batch.errors
        results = {name: summarize_result(res)
                   for name, res in result.batch.results.items()}
    payload = scenario_payload(
        result.spec, ok=result.ok, wall_seconds=result.wall_seconds,
        scenario_metrics=result.scenario_metrics, checks=result.checks,
        errors=errors, results=results)
    return write_bench_document(
        out_dir, scenario_artifact_name(result.spec), payload)
