"""The programmatic scenario facade.

``run_scenario(spec, workers=N)`` is the one entry point the CLI, the
legacy figure/ablation shims, the engine suite builders and the tests
all route through: it lowers a :class:`ScenarioSpec` to **cell tasks**,
submits them through a :class:`~repro.experiments.executors.
CellExecutor` (inline, process pool, or a streamed remote-worker
pool — the caller's choice, results identical by contract), extracts
a uniform metric namespace, evaluates the spec's expectations and
renders the scenario's artifact text.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import paper_server_config
from repro.errors import ConfigurationError
from repro.experiments.engine import (
    BatchResult,
    ExperimentJob,
    write_bench_document,
)
from repro.experiments.runner import ExperimentConfig, ExperimentResult
from repro.metrics.report import render_table
from repro.scenarios.spec import Expectation, ScenarioSpec


# ------------------------------------------------------------ lowering
def jobs_for_scenario(spec: ScenarioSpec,
                      prefix: str = "") -> List[ExperimentJob]:
    """One engine job per variant of an experiment scenario.

    Variants whose overrides only toggle throttling lower to plain
    ``ExperimentConfig`` flags (exactly the configs the legacy
    harnesses built); anything richer carries a ServerConfig override.
    """
    if spec.kind != "experiment":
        raise ConfigurationError(
            f"scenario {spec.scenario_id!r} is a {spec.kind!r} scenario; "
            f"only experiment scenarios lower to engine jobs")
    jobs = []
    for variant in spec.variants:
        overrides = variant.overrides
        if overrides.only_toggles_throttling():
            server = None
            throttling = (overrides.throttling
                          if overrides.throttling is not None else True)
        else:
            server = overrides.apply(paper_server_config())
            throttling = server.throttle.enabled
        jobs.append(ExperimentJob(
            name=prefix + variant.name,
            config=ExperimentConfig(
                workload=spec.workload,
                workload_params=spec.workload_params,
                traffic=spec.traffic,
                kernel=spec.kernel,
                admission=(variant.admission
                           if variant.admission is not None
                           else spec.admission),
                slo=spec.slo,
                optimizer=(variant.optimizer
                           if variant.optimizer is not None
                           else spec.optimizer),
                clients=(variant.clients if variant.clients is not None
                         else spec.clients),
                throttling=throttling,
                preset=spec.preset,
                seed=spec.seed,
                think_time=(variant.think_time
                            if variant.think_time is not None
                            else spec.think_time),
                server_overrides=server)))
    return jobs


# ------------------------------------------------------------- results
@dataclass
class CheckOutcome:
    """One evaluated expectation.

    ``reference`` is only meaningful for cross-variant expectations:
    the ``than_variant``'s value of the same metric.
    """

    expectation: Expectation
    actual: Optional[float]
    passed: bool
    reference: Optional[float] = None

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        actual = ("n/a" if self.actual is None
                  else f"{self.actual:g}")
        if self.expectation.than_variant is not None:
            reference = ("n/a" if self.reference is None
                         else f"{self.reference:g}")
            return (f"check {status}: {self.expectation.describe()} "
                    f"(actual {actual} vs {reference})")
        return (f"check {status}: {self.expectation.describe()} "
                f"(actual {actual})")


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    #: engine batch (experiment scenarios only); under executor-based
    #: execution the results are rebuilt from the cell summaries, so
    #: the batch is equivalent no matter which executor ran the cells
    batch: Optional[BatchResult]
    #: variant name -> metric name -> value
    variant_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: scenario-level aggregates (total_completed, improvement, ...)
    scenario_metrics: Dict[str, float] = field(default_factory=dict)
    checks: List[CheckOutcome] = field(default_factory=list)
    #: the scenario's rendered artifact (figure text, table, ladder)
    body: str = ""
    wall_seconds: float = 0.0
    #: variant name -> JSON summary exactly as the executor delivered
    #: it (experiment scenarios; written to artifacts verbatim so all
    #: executors produce identical bytes)
    variant_summaries: Dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every engine run and every expectation passed."""
        if self.batch is not None and self.batch.errors:
            return False
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        spec = self.spec
        lines = [
            f"== scenario {spec.scenario_id} — {spec.title}",
            f"   family={spec.family} kind={spec.kind} "
            f"workload={spec.workload} preset={spec.preset} "
            f"seed={spec.seed}",
        ]
        if self.body:
            lines.append(self.body)
        if self.batch is not None:
            for name, error in sorted(self.batch.errors.items()):
                lines.append(f"FAILED {name}: {error}")
        for check in self.checks:
            lines.append(check.describe())
        return "\n".join(lines)


# ------------------------------------------------------------- metrics
def result_metrics(result: ExperimentResult) -> Dict[str, float]:
    """The per-variant metric namespace expectations can reference.

    Defined as the summary round trip so the live path and the shard
    merge can never drift: a metric exists here exactly when it can be
    rebuilt from an artifact by :func:`metrics_from_summary`.
    """
    from repro.experiments.engine import summarize_result

    return metrics_from_summary(summarize_result(result))


def metrics_from_summary(summary: Dict) -> Dict[str, float]:
    """Rebuild the per-variant metric namespace from an artifact summary.

    The inverse of :func:`~repro.experiments.engine.summarize_result`
    for expectation purposes: feeding a run's JSON summary through here
    yields exactly ``result_metrics(result)`` of the result it
    summarized (JSON round-trips floats losslessly), which is what lets
    a shard merge re-evaluate expectations on the same numbers a
    single-machine run saw.
    """
    metrics: Dict[str, float] = {
        "completed": float(summary["completed"]),
        "failed": float(summary["failed"]),
        "degraded": float(summary["degraded"]),
        "retries": float(summary["retries"]),
        "mean_per_bucket": summary["mean_per_bucket"],
        "mean_compile_time": summary["mean_compile_time"],
        "mean_execution_time": summary["mean_execution_time"],
        "search_replays": float(summary["search_replays"]),
        "soft_denials": float(summary["soft_denials"]),
        "wall_seconds": summary["wall_seconds"],
    }
    for kind, count in summary["error_counts"].items():
        metrics[f"errors.{kind}"] = float(count)
    # open-loop admission facts surface as `openloop.<fact>` metrics
    # (offered, admitted, dropped, queue_wait_p90, ...) so burst
    # scenarios can put expectations on them
    for name, value in summary.get("open_loop", {}).items():
        metrics[f"openloop.{name}"] = float(value)
    # SLO verdicts surface as `slo.<target>.observed/.target/.ok` plus
    # the aggregate `slo.ok`/`slo.violations`, so expectations (and
    # cross-variant checks) can reference objective attainment directly
    for name, value in summary.get("slo", {}).items():
        metrics[f"slo.{name}"] = float(value)
    return metrics


def result_from_summary(summary: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its JSON summary.

    The structural inverse of
    :func:`~repro.experiments.engine.summarize_result`: feeding the
    rebuilt result back through ``summarize_result`` reproduces the
    summary exactly (JSON round-trips floats losslessly and
    ``mean_per_bucket`` is recomputed from the identical series).
    This is what lets executor-delivered summaries — possibly produced
    in another process or on another machine — stand in for live
    results when rendering figures and tables.
    """
    from repro.admission.spec import AdmissionSpec, SloSpec
    from repro.optimizer.spec import OptimizerSpec
    from repro.traffic.spec import TrafficSpec

    config_doc = summary["config"]
    config = ExperimentConfig(
        workload=config_doc["workload"],
        workload_params=tuple(sorted(
            (str(k), v) for k, v in config_doc["workload_params"].items())),
        traffic=(TrafficSpec.from_dict(config_doc["traffic"])
                 if "traffic" in config_doc else None),
        kernel=config_doc.get("kernel", "legacy"),
        admission=(AdmissionSpec.from_dict(config_doc["admission"])
                   if "admission" in config_doc else None),
        slo=(SloSpec.from_dict(config_doc["slo"])
             if "slo" in config_doc else None),
        optimizer=(OptimizerSpec.from_dict(config_doc["optimizer"])
                   if "optimizer" in config_doc else None),
        clients=config_doc["clients"],
        throttling=config_doc["throttling"],
        preset=config_doc["preset"],
        seed=config_doc["seed"],
        think_time=config_doc["think_time"])
    return ExperimentResult(
        config=config,
        throughput=[(t, c) for t, c in summary["throughput"]],
        completed=summary["completed"],
        failed=summary["failed"],
        error_counts=dict(summary["error_counts"]),
        degraded=summary["degraded"],
        retries=summary["retries"],
        mean_compile_time=summary["mean_compile_time"],
        mean_execution_time=summary["mean_execution_time"],
        memory_by_clerk=dict(summary["memory_by_clerk"]),
        gateway_stats=[tuple(row) for row in summary["gateway_stats"]],
        wall_seconds=summary["wall_seconds"],
        search_replays=summary["search_replays"],
        soft_denials=summary["soft_denials"],
        open_loop=summary.get("open_loop"),
        slo=summary.get("slo"),
        snapshot=summary.get("snapshot"))


def _aggregate_metrics(spec: ScenarioSpec,
                       variant_metrics: Dict[str, Dict[str, float]]
                       ) -> Dict[str, float]:
    aggregate = {
        "total_completed": sum(m.get("completed", 0.0)
                               for m in variant_metrics.values()),
        "total_failed": sum(m.get("failed", 0.0)
                            for m in variant_metrics.values()),
        "total_degraded": sum(m.get("degraded", 0.0)
                              for m in variant_metrics.values()),
        "variants_ok": float(len(variant_metrics)),
    }
    # scenario-level errors.<kind> = the sum across variants, so the
    # errors.* zero-default means "never occurred anywhere"
    for metrics in variant_metrics.values():
        for name, value in metrics.items():
            if name.startswith("errors."):
                aggregate[name] = aggregate.get(name, 0.0) + value
    throttled = variant_metrics.get("throttled")
    unthrottled = variant_metrics.get("unthrottled")
    if throttled is not None and unthrottled is not None:
        base = unthrottled.get("completed", 0.0)
        if base > 0:
            aggregate["improvement"] = \
                throttled.get("completed", 0.0) / base - 1.0
        else:
            aggregate["improvement"] = (
                math.inf if throttled.get("completed", 0.0) else 0.0)
    return aggregate


def _metric_from(source: Optional[Dict[str, float]],
                 metric: str) -> Optional[float]:
    if source is None:
        return None
    value = source.get(metric)
    if value is None and metric.startswith("errors."):
        # an error kind that never occurred counts as zero
        value = 0.0
    return value


def _lookup_metric(expectation: Expectation,
                   variant_metrics: Dict[str, Dict[str, float]],
                   scenario_metrics: Dict[str, float]
                   ) -> Optional[float]:
    if expectation.variant is None:
        source: Optional[Dict[str, float]] = scenario_metrics
    else:
        source = variant_metrics.get(expectation.variant)
    return _metric_from(source, expectation.metric)


def evaluate_expectations(spec: ScenarioSpec,
                          variant_metrics: Dict[str, Dict[str, float]],
                          scenario_metrics: Dict[str, float]
                          ) -> List[CheckOutcome]:
    """Evaluate every expectation of ``spec`` against the metrics.

    A metric that cannot be resolved (missing variant, unknown name)
    fails its check with ``actual=None`` rather than raising — a
    scenario whose runs errored still reports all its checks.
    Cross-variant expectations (``than_variant``) read the same metric
    from both variants and compare them to each other.
    """
    checks = []
    for expectation in spec.expect:
        actual = _lookup_metric(expectation, variant_metrics,
                                scenario_metrics)
        reference = None
        if expectation.than_variant is not None:
            reference = _metric_from(
                variant_metrics.get(expectation.than_variant),
                expectation.metric)
            passed = actual is not None and reference is not None \
                and expectation.holds(actual, reference)
        else:
            passed = actual is not None and expectation.holds(actual)
        checks.append(CheckOutcome(expectation=expectation,
                                   actual=actual, passed=passed,
                                   reference=reference))
    return checks


# ----------------------------------------------------------- rendering
def _render_experiment(spec: ScenarioSpec, batch: BatchResult) -> str:
    if spec.render == "comparison" \
            and {"throttled", "unthrottled"} <= set(batch.results):
        from repro.experiments.figures import ThroughputComparison

        comparison = ThroughputComparison(
            clients=spec.clients,
            throttled=batch.results["throttled"],
            unthrottled=batch.results["unthrottled"])
        return comparison.render()
    # no wall-clock column: identical runs must render identical bytes
    rows = [(name, result.completed, result.failed, result.degraded)
            for name, result in batch.results.items()]
    return render_table(
        ("variant", "completed", "errors", "degraded"), rows)


# ------------------------------------------------------------- running
def run_scenario(spec: ScenarioSpec, workers: int = 1,
                 progress: Optional[Callable[[str], None]] = None,
                 executor=None, snapshot: bool = False,
                 capture: Optional[str] = None) -> ScenarioResult:
    """Run one scenario and evaluate its expectations.

    ``executor`` is any :class:`~repro.experiments.executors.
    CellExecutor`; by default ``workers`` picks the inline
    (``workers <= 1``) or process-pool executor, reproducing the
    pre-executor behaviour exactly.  A passed-in executor is not
    closed (the caller owns its lifecycle).  ``snapshot`` asks every
    experiment cell to capture an end-of-run DMV snapshot into its
    result summary.  ``capture`` is a directory: every experiment cell
    writes a replayable JSONL admission trace there (execution
    metadata — capturing never changes any simulated number).
    """
    return run_scenarios([spec], workers=workers, progress=progress,
                         executor=executor, snapshot=snapshot,
                         capture=capture)[0]


def run_scenarios(specs: List[ScenarioSpec], workers: int = 1,
                  progress: Optional[Callable[[str], None]] = None,
                  executor=None, snapshot: bool = False,
                  capture: Optional[str] = None,
                  on_result: Optional[Callable[["ScenarioResult"], None]]
                  = None, order: str = "spec",
                  scheduler=None) -> List[ScenarioResult]:
    """Run a whole selection through one executor submission.

    All cells of all specs go down in a single ``submit`` call, so a
    pool executor can overlap cells of different scenarios and a
    stream executor's remote workers drain one queue — exactly the
    scheduling freedom the determinism contract allows, since results
    are re-grouped by spec afterwards.

    ``order`` picks the queue order (``spec`` = selection order,
    ``cost`` = expected-slowest first via the optional
    :class:`~repro.experiments.scheduler.CellScheduler`); because of
    that re-grouping it affects wall clock only, never artifact bytes.

    ``on_result`` is invoked once per scenario, in selection order, as
    soon as that scenario's result can be finalized — so a long
    selection renders output and persists artifacts incrementally
    instead of losing everything when a late scenario (or the process)
    dies.
    """
    from repro.experiments.executors import make_executor, tasks_for_specs
    from repro.experiments.scheduler import order_tasks

    started = time.time()
    owns_executor = executor is None
    if executor is None:
        executor = make_executor(workers=workers)
    tasks = order_tasks(tasks_for_specs(specs, snapshot=snapshot,
                                        capture=capture),
                        order=order, scheduler=scheduler)
    outstanding = {spec.scenario_id: len(spec.variant_names())
                   for spec in specs}
    collected: Dict[str, list] = {spec.scenario_id: [] for spec in specs}
    finalized: Dict[str, ScenarioResult] = {}
    emit_order = list(specs)
    emitted = 0
    results: List[ScenarioResult] = []

    def finalize(spec: ScenarioSpec) -> ScenarioResult:
        cells = collected[spec.scenario_id]
        result = scenario_result_from_cells(spec, cells)
        # one submission, one clock: per-scenario wall attribution is
        # execution-dependent anyway (a canonically volatile field)
        result.wall_seconds = (sum(c.wall_seconds for c in cells)
                               or (time.time() - started)
                               / max(1, len(specs)))
        return result

    try:
        for cell in executor.submit(tasks, progress=progress):
            scenario_id = cell.cell.scenario_id
            collected[scenario_id].append(cell)
            outstanding[scenario_id] -= 1
            if outstanding[scenario_id] > 0:
                continue
            spec = next(s for s in specs
                        if s.scenario_id == scenario_id)
            finalized[scenario_id] = finalize(spec)
            # emit in selection order, as soon as the next-in-line
            # scenario is complete
            while emitted < len(emit_order) \
                    and emit_order[emitted].scenario_id in finalized:
                result = finalized[emit_order[emitted].scenario_id]
                results.append(result)
                emitted += 1
                if on_result is not None:
                    on_result(result)
    finally:
        if owns_executor:
            executor.close()
    # a cancelled or short-yielding executor leaves scenarios
    # unfinalized; finalize them from whatever cells arrived (missing
    # experiment cells surface as "never executed" errors)
    for spec in emit_order[emitted:]:
        result = finalized.get(spec.scenario_id)
        if result is None:
            result = finalize(spec)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


def scenario_result_from_cells(spec: ScenarioSpec,
                               cells: List) -> ScenarioResult:
    """Assemble one scenario's result from its executed cells.

    The executor-independent half of a scenario run: cells may arrive
    in any order from any executor; metrics, aggregates, checks and
    the rendered body are derived here in spec variant order, which is
    what makes artifacts byte-identical across executors.
    """
    by_variant = {cell.cell.variant: cell for cell in cells}
    if spec.kind != "experiment":
        cell = by_variant.get(spec.variants[0].name)
        if cell is None:
            # a cancelled/short-yielding executor: surface the missing
            # cell as a failed run, mirroring the experiment path
            batch = BatchResult(errors={
                spec.variants[0].name: "cell was never executed"})
            return ScenarioResult(
                spec=spec, batch=batch,
                checks=evaluate_expectations(spec, {}, {}))
        if cell.error is not None:
            # a monitors/trace renderer failure is a bug, not a result
            raise RuntimeError(
                f"scenario {spec.scenario_id!r} cell failed: {cell.error}")
        metrics = {name: float(value) if isinstance(value, str) else value
                   for name, value in (cell.scenario_metrics or {}).items()}
        checks = evaluate_expectations(spec, {}, metrics)
        return ScenarioResult(spec=spec, batch=None,
                              scenario_metrics=metrics, checks=checks,
                              body=cell.body or "")

    errors: Dict[str, str] = {}
    summaries: Dict[str, dict] = {}
    for name in spec.variant_names():
        cell = by_variant.get(name)
        if cell is None:
            errors[name] = "cell was never executed"
        elif cell.error is not None:
            errors[name] = cell.error
        else:
            summaries[name] = cell.summary
    variant_metrics = {name: metrics_from_summary(summary)
                       for name, summary in summaries.items()}
    scenario_metrics = _aggregate_metrics(spec, variant_metrics)
    checks = evaluate_expectations(spec, variant_metrics,
                                   scenario_metrics)
    rebuilt = {name: result_from_summary(summary)
               for name, summary in summaries.items()}
    batch = BatchResult(results=rebuilt, errors=errors,
                        ordered=[rebuilt.get(name)
                                 for name in spec.variant_names()],
                        wall_seconds=sum(c.wall_seconds for c in cells))
    return ScenarioResult(
        spec=spec, batch=batch,
        variant_metrics=variant_metrics,
        scenario_metrics=scenario_metrics,
        checks=checks,
        body=_render_experiment(spec, batch),
        variant_summaries=summaries)


def run_cell_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run a single-cell (monitors/trace) scenario in-process.

    The primitive :func:`~repro.experiments.executors.execute_cell`
    calls for non-experiment cells — deliberately *not* routed back
    through an executor.
    """
    if spec.kind == "monitors":
        return _run_monitors(spec)
    if spec.kind == "trace":
        return _run_trace(spec)
    raise ConfigurationError(
        f"scenario {spec.scenario_id!r} is an experiment scenario; "
        f"its cells run through the engine, not the figure renderers")


def _run_monitors(spec: ScenarioSpec) -> ScenarioResult:
    from repro.experiments.figures import figure1_monitors

    params = dict(spec.workload_params)
    body = figure1_monitors(bool(params.get("throttling", True)))
    # monitors scenarios have no metrics, but their expectations must
    # still be evaluated (to failure) — the shard merge re-evaluates
    # them the same way, keeping both paths byte-identical
    checks = evaluate_expectations(spec, {}, {})
    return ScenarioResult(spec=spec, batch=None, checks=checks, body=body)


def _run_trace(spec: ScenarioSpec) -> ScenarioResult:
    from repro.experiments.figures import figure2_trace

    params = dict(spec.workload_params)
    trace = figure2_trace(
        seed=spec.seed,
        fast_factor=float(params.get("fast_factor", 4.0)),
        background=int(params.get("background", 24)))
    scenario_metrics = {
        "traced_queries": float(len(trace.curves)),
        "plateau_total": float(sum(trace.plateau_count(label)
                                   for label in trace.curves)),
    }
    checks = evaluate_expectations(spec, {}, scenario_metrics)
    return ScenarioResult(spec=spec, batch=None,
                          scenario_metrics=scenario_metrics,
                          checks=checks, body=trace.chart())


# ---------------------------------------------------------- spec files
def load_scenario_file(path: str) -> ScenarioSpec:
    """Parse a user-authored JSON spec file into a validated spec.

    A relative ``traffic.trace`` path resolves against the spec file's
    directory, so a spec can ship next to its trace (the ``examples/``
    pair) and run from any working directory.
    """
    import os
    from dataclasses import replace as _replace

    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read scenario file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"scenario file {path!r} is not valid JSON: {exc}") from None
    spec = ScenarioSpec.from_dict(doc)
    traffic = spec.traffic
    if traffic is not None and traffic.trace is not None \
            and not os.path.isabs(traffic.trace):
        resolved = os.path.join(os.path.dirname(os.path.abspath(path)),
                                traffic.trace)
        spec = _replace(spec, traffic=_replace(traffic, trace=resolved))
    return spec


# ----------------------------------------------------------- artifacts
def _json_safe(value):
    """Non-finite floats are invalid strict JSON; ship them as strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def scenario_payload(spec: ScenarioSpec, *, ok: bool,
                     wall_seconds: float,
                     scenario_metrics: Dict[str, float],
                     checks: List[CheckOutcome],
                     errors: Optional[Dict[str, str]] = None,
                     results: Optional[Dict[str, dict]] = None) -> dict:
    """The canonical ``BENCH_scenario_*`` payload (stable key order).

    Both the single-machine path (:func:`write_scenario_artifact`) and
    the shard merge (:mod:`repro.experiments.shards`) assemble their
    artifacts through here, which is what keeps a merged artifact
    byte-compatible with a single-machine one.  ``errors``/``results``
    are only present for experiment scenarios (pass ``None`` to omit
    them, matching a batch-less monitors/trace run).
    """
    check_docs = []
    for check in checks:
        doc = {
            "expectation": check.expectation.to_dict(),
            "actual": _json_safe(check.actual),
            "passed": check.passed,
        }
        if check.expectation.than_variant is not None:
            doc["reference"] = _json_safe(check.reference)
        check_docs.append(doc)
    payload = {
        "spec": spec.to_dict(),
        "ok": ok,
        "wall_seconds": wall_seconds,
        "scenario_metrics": {name: _json_safe(value) for name, value
                             in sorted(scenario_metrics.items())},
        "checks": check_docs,
    }
    if errors is not None:
        payload["errors"] = dict(sorted(errors.items()))
    if results is not None:
        payload["results"] = dict(results)
    return payload


def scenario_artifact_name(spec: ScenarioSpec) -> str:
    """The document name of one scenario's artifact (no extension)."""
    return "scenario_" + spec.scenario_id.replace("/", "_")


def rebuild_scenario_payload(spec: ScenarioSpec, *, wall_seconds: float,
                             errors: Optional[Dict[str, str]] = None,
                             results: Optional[Dict[str, dict]] = None,
                             scenario_metrics: Optional[Dict] = None
                             ) -> dict:
    """Re-derive a scenario's artifact payload from summarized results.

    This is the heart of the shard merge: given the per-variant
    summaries an experiment scenario's shards produced (or, for
    monitors/trace scenarios, the carried ``scenario_metrics``), it
    recomputes variant metrics, scenario aggregates, expectation checks
    and the ``ok`` flag exactly the way a single-machine
    :func:`run_scenario` would, then assembles the canonical payload
    via :func:`scenario_payload`.  Apart from execution-dependent
    fields (wall clock, search replays) the result is byte-identical
    to the single-machine artifact.
    """
    if spec.kind == "experiment":
        errors = dict(errors or {})
        merged = dict(results or {})
        # spec variant order, not shard arrival order: aggregation sums
        # floats in a fixed order so merged numbers match exactly
        ordered = {name: merged[name] for name in spec.variant_names()
                   if name in merged}
        variant_metrics = {name: metrics_from_summary(summary)
                           for name, summary in ordered.items()}
        scenario_metrics = _aggregate_metrics(spec, variant_metrics)
        checks = evaluate_expectations(spec, variant_metrics,
                                       scenario_metrics)
        ok = not errors and all(check.passed for check in checks)
        return scenario_payload(
            spec, ok=ok, wall_seconds=wall_seconds,
            scenario_metrics=scenario_metrics, checks=checks,
            errors=errors, results=ordered)
    # monitors/trace scenarios run whole inside one shard; their
    # metrics travel in the shard document (possibly stringified by
    # _json_safe) and the checks are re-evaluated here
    metrics = {name: float(value) if isinstance(value, str) else value
               for name, value in (scenario_metrics or {}).items()}
    checks = evaluate_expectations(spec, {}, metrics)
    ok = all(check.passed for check in checks)
    return scenario_payload(spec, ok=ok, wall_seconds=wall_seconds,
                            scenario_metrics=metrics, checks=checks)


def write_scenario_artifact(out_dir: str,
                            result: ScenarioResult) -> str:
    """Write one scenario's ``BENCH_scenario_<id>.json``.

    Experiment results carry the summaries exactly as the executor
    delivered them (``variant_summaries``), so the written bytes never
    depend on which executor ran the cells.
    """
    from repro.experiments.engine import summarize_result

    errors = results = None
    if result.batch is not None:
        errors = result.batch.errors
        results = result.variant_summaries or \
            {name: summarize_result(res)
             for name, res in result.batch.results.items()}
    payload = scenario_payload(
        result.spec, ok=result.ok, wall_seconds=result.wall_seconds,
        scenario_metrics=result.scenario_metrics, checks=result.checks,
        errors=errors, results=results)
    return write_bench_document(
        out_dir, scenario_artifact_name(result.spec), payload)
