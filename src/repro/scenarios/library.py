"""Built-in scenarios: every paper artifact plus new scenario families.

Each ``*_scenario`` builder returns a parameterized spec (the legacy
Python APIs and CLI shims call these with their historical defaults);
module import registers the canonical instances, so ``repro scenarios
list`` shows the whole catalogue.

Families
--------
``figures``     FIG-1/2/3/4/5 — the paper's figures
``ablations``   ABL-GATES / ABL-DYN / ABL-BPSF — §4.1 design ablations
``saturation``  CLAIM-SAT — the client-count saturation sweep
``mixed``       OLTP point queries co-located with ad-hoc TPC-H
``memory``      throughput under a shrinking physical-memory budget
``ladder``      full ladder vs small-monitor-only across load levels
``burst``       open-loop adversarial arrivals (flash crowds, noisy
                multi-tenant mixes) through the admission path
``scale``       FIG-3-style curves at 100x-1000x the paper population
                on the calendar-queue ``wheel`` kernel, plus the
                100 000-session flood the scale-smoke CI lane runs
``fairness``    the burst-noisy tenant mix re-run under ``fifo`` vs
                ``weighted_fair`` admission with an SLO on the victim
                tenant's queue wait (the fairness-smoke CI lane)
``optimizer``   the memory-pressure workload re-run under the staged
                ``memo`` enumerator vs the greedy ``ues`` upper-bound
                enumerator (the optimizer-smoke CI lane)
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.admission import AdmissionSpec, SloSpec, SloTarget
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    ConfigOverrides,
    Expectation,
    ScenarioSpec,
    VariantSpec,
)
from repro.traffic.spec import TrafficSpec
from repro.units import GiB

#: paper figure number -> client count (Figures 3/4/5)
FIGURE_CLIENTS = {3: 30, 4: 35, 5: 40}


# ------------------------------------------------------------- figures
def throughput_scenario(clients: int, preset: str = "smoke",
                        seed: int = 3,
                        workload: str = "sales") -> ScenarioSpec:
    """Throttled vs un-throttled throughput at ``clients`` clients."""
    numbers = {v: k for k, v in FIGURE_CLIENTS.items()}
    figure = numbers.get(clients)
    scenario_id = f"fig{figure}" if figure else f"throughput-{clients}c"
    title = (f"Figure {figure}: throughput at {clients} clients"
             if figure else f"Throughput comparison at {clients} clients")
    return ScenarioSpec(
        scenario_id=scenario_id,
        title=title,
        family="figures",
        workload=workload,
        clients=clients,
        preset=preset,
        seed=seed,
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
        expect=(
            Expectation("completed", ">", 0, variant="throttled"),
            Expectation("improvement", ">", 0.0),
        ),
        render="comparison",
        description="Successful completions per bucket, throttled vs "
                    "un-throttled (paper Figures 3-5).")


@register_scenario
def _fig1() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="fig1",
        title="Figure 1: the memory-monitor ladder",
        family="figures",
        kind="monitors",
        workload="sales",
        clients=1,
        render="monitors",
        description="Renders the small/medium/big gateway ladder of a "
                    "freshly booted paper server.")


@register_scenario
def _fig2() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="fig2",
        title="Figure 2: compilation-throttling trace",
        family="figures",
        kind="trace",
        workload="sales",
        workload_params={"background": 24, "fast_factor": 4.0},
        clients=24,
        seed=3,
        expect=(Expectation("plateau_total", ">=", 1),),
        render="trace",
        description="Three staggered compilations under pressure; the "
                    "flat stretches are gateway blocking plateaus.")


for _figure_clients in FIGURE_CLIENTS.values():
    register_scenario(throughput_scenario(_figure_clients))


# ----------------------------------------------------------- ablations
def gateway_ablation_scenario(clients: int = 30, preset: str = "smoke",
                              seed: int = 1) -> ScenarioSpec:
    """ABL-GATES: 0, 1, 2 and 3 monitors."""
    return ScenarioSpec(
        scenario_id="abl-gates",
        title="ABL-GATES: monitor-count ablation",
        family="ablations",
        clients=clients,
        preset=preset,
        seed=seed,
        variants=tuple(
            VariantSpec(f"{n}_monitors", ConfigOverrides(gateway_count=n))
            for n in (0, 1, 2, 3)),
        expect=(Expectation("completed", ">", 0, variant="3_monitors"),),
        description="Sweeps the ladder length; the paper reports the "
                    "multi-monitor split gives the best balance.")


def dynamic_ablation_scenario(clients: int = 35, preset: str = "smoke",
                              seed: int = 1) -> ScenarioSpec:
    """ABL-DYN: static vs broker-driven thresholds."""
    return ScenarioSpec(
        scenario_id="abl-dyn",
        title="ABL-DYN: static vs dynamic thresholds",
        family="ablations",
        clients=clients,
        preset=preset,
        seed=seed,
        variants=(
            VariantSpec("static",
                        ConfigOverrides(dynamic_thresholds=False)),
            VariantSpec("dynamic",
                        ConfigOverrides(dynamic_thresholds=True)),
        ),
        expect=(Expectation("completed", ">", 0, variant="dynamic"),),
        description="Extension (a): thresholds derived from the "
                    "broker's compilation target vs the static ladder.")


def best_plan_ablation_scenario(clients: int = 40, preset: str = "smoke",
                                seed: int = 1) -> ScenarioSpec:
    """ABL-BPSF: best-plan-so-far on/off."""
    return ScenarioSpec(
        scenario_id="abl-bpsf",
        title="ABL-BPSF: best-plan-so-far vs hard OOM",
        family="ablations",
        clients=clients,
        preset=preset,
        seed=seed,
        variants=(
            VariantSpec("hard_oom",
                        ConfigOverrides(best_plan_so_far=False)),
            VariantSpec("best_plan",
                        ConfigOverrides(best_plan_so_far=True)),
        ),
        expect=(
            Expectation("errors.compile_oom", "==", 0,
                        variant="best_plan"),
        ),
        description="Extension (b): degrade to the best already-"
                    "explored plan instead of failing out of memory.")


#: legacy ablation name -> (flat-suite prefix, builder) — the single
#: source for ablate_* shims and the engine's flat ablation suite
ABLATION_SCENARIOS = (
    ("gateway_count", "gates", gateway_ablation_scenario),
    ("dynamic_thresholds", "dyn", dynamic_ablation_scenario),
    ("best_plan_so_far", "bpsf", best_plan_ablation_scenario),
)

for _, _, _builder in ABLATION_SCENARIOS:
    register_scenario(_builder())


# ---------------------------------------------------------- saturation
def saturation_scenario(clients: Sequence[int] = (5, 15, 30, 40),
                        preset: str = "smoke", seed: int = 3,
                        workload: str = "sales") -> ScenarioSpec:
    """CLAIM-SAT: the client-count saturation sweep."""
    counts: Tuple[int, ...] = tuple(dict.fromkeys(clients))
    return ScenarioSpec(
        scenario_id="saturation",
        title="CLAIM-SAT: client saturation sweep",
        family="saturation",
        workload=workload,
        clients=max(counts),
        preset=preset,
        seed=seed,
        variants=tuple(VariantSpec(f"sat_{c}c", clients=c)
                       for c in counts),
        expect=(Expectation("total_completed", ">", 0),),
        description="Throughput by client count; the paper's knee sits "
                    "near 30 clients.")


register_scenario(saturation_scenario())


# --------------------------------------------------- mixed (new family)
@register_scenario
def _mixed_rush() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="mixed-rush",
        title="Mixed rush hour: OLTP + ad-hoc TPC-H",
        family="mixed",
        workload="mixed",
        workload_params={"tpch_fraction": 0.3},
        clients=24,
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
        expect=(Expectation("completed", ">", 0, variant="throttled"),),
        render="comparison",
        description="Small transactional queries co-located with heavy "
                    "analytic compilations; the ladder should keep the "
                    "OLTP class responsive.")


@register_scenario
def _mixed_analytic() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="mixed-analytic",
        title="Analytic-heavy mix (60% TPC-H)",
        family="mixed",
        workload="mixed",
        workload_params={"tpch_fraction": 0.6},
        clients=16,
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
        expect=(Expectation("total_completed", ">", 0),),
        render="comparison",
        description="The same co-location stress with the analytic "
                    "share dominating.")


# -------------------------------------------------- memory (new family)
@register_scenario
def _memory_ramp() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="mem-ramp",
        title="Memory-pressure ramp: 4 GiB to 1 GiB",
        family="memory",
        workload="sales",
        clients=24,
        variants=(
            VariantSpec("mem_4g"),
            VariantSpec("mem_2g",
                        ConfigOverrides(physical_memory=2 * GiB)),
            VariantSpec("mem_1g",
                        ConfigOverrides(physical_memory=1 * GiB)),
        ),
        expect=(
            Expectation("completed", ">", 0, variant="mem_4g"),
            Expectation("total_completed", ">", 0),
        ),
        description="The paper's testbed shrunk to half and a quarter "
                    "of its RAM: throttling has to work harder as the "
                    "broker's compile target collapses.")


# -------------------------------------------------- ladder (new family)
@register_scenario
def _ladder_load() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="ladder-load",
        title="Gateway-ladder sweep across load levels",
        family="ladder",
        workload="sales",
        clients=30,
        variants=(
            VariantSpec("full_15c", ConfigOverrides(gateway_count=3),
                        clients=15),
            VariantSpec("small_only_15c",
                        ConfigOverrides(gateway_count=1), clients=15),
            VariantSpec("full_30c", ConfigOverrides(gateway_count=3),
                        clients=30),
            VariantSpec("small_only_30c",
                        ConfigOverrides(gateway_count=1), clients=30),
        ),
        expect=(Expectation("total_completed", ">", 0),),
        description="How much of the ladder is needed as load grows: "
                    "the single small monitor vs the full "
                    "small/medium/big ladder at 15 and 30 clients.")


# --------------------------------------------------- burst (new family)
def flash_crowd_scenario(clients: int = 16, preset: str = "smoke",
                         seed: int = 3) -> ScenarioSpec:
    """BURST-FLASH: a flash-crowd spike through open-loop admission."""
    return ScenarioSpec(
        scenario_id="burst-flash",
        title="Flash crowd: open-loop spike, throttled vs un-throttled",
        family="burst",
        workload="sales",
        clients=clients,
        preset=preset,
        seed=seed,
        traffic=TrafficSpec(
            arrivals="flash_crowd",
            params={"base_rate": 0.008, "spike_rate": 0.12,
                    "spike_at": 1500.0, "spike_duration": 240.0},
            queue_limit=8,
            queue_timeout=180.0),
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
        expect=(
            Expectation("openloop.offered", ">", 0, variant="throttled"),
            Expectation("openloop.admitted", ">", 0,
                        variant="throttled"),
            Expectation("openloop.offered", "==",
                        variant="throttled", than_variant="unthrottled"),
        ),
        description="Sessions arrive on an open-loop schedule that "
                    "spikes mid-measurement; the broker's trend "
                    "monitors and the gateway ladder see true offered "
                    "load instead of a politely waiting closed loop.")


def noisy_neighbor_scenario(clients: int = 12, preset: str = "smoke",
                            seed: int = 3) -> ScenarioSpec:
    """BURST-NOISY: a steady tenant sharing admission with a bursty one."""
    return ScenarioSpec(
        scenario_id="burst-noisy",
        title="Noisy neighbor: steady tenant vs flash-crowd tenant",
        family="burst",
        workload="mixed",
        workload_params={"tpch_fraction": 0.4},
        clients=clients,
        preset=preset,
        seed=seed,
        traffic=TrafficSpec(
            arrivals="tenant_mix",
            params={"tenants": {
                "steady": {"process": "poisson", "rate": 0.008},
                "noisy": {"process": "flash_crowd", "base_rate": 0.002,
                          "spike_rate": 0.1, "spike_at": 1400.0,
                          "spike_duration": 300.0},
            }},
            max_sessions=8,
            queue_limit=4,
            queue_timeout=150.0),
        variants=(VariantSpec("shared"),),
        expect=(
            Expectation("openloop.tenant.steady.offered", ">", 0,
                        variant="shared"),
            Expectation("openloop.tenant.noisy.offered", ">", 0,
                        variant="shared"),
        ),
        description="Two tenants on one admission queue: the noisy "
                    "tenant's spike overflows the small queue and the "
                    "per-tenant drop accounting shows who paid for it.")


for _builder in (flash_crowd_scenario, noisy_neighbor_scenario):
    register_scenario(_builder())


# ------------------------------------------------ fairness (new family)
def fairness_scenario(clients: int = 12, preset: str = "smoke",
                      seed: int = 3,
                      steady_weight: float = 4.0) -> ScenarioSpec:
    """FAIR-NOISY: the noisy-neighbor mix under ``fifo`` vs
    ``weighted_fair`` admission.

    Identical offered load in both variants (pinned by a cross-variant
    check); the weighted variant gives the steady tenant
    ``steady_weight`` times the noisy tenant's slot share, and the
    victim's queue-wait p90 must recover versus FIFO.
    """
    return ScenarioSpec(
        scenario_id="fairness-noisy",
        title="FAIR-NOISY: weighted-fair admission vs FIFO",
        family="fairness",
        workload="mixed",
        workload_params={"tpch_fraction": 0.4},
        clients=clients,
        preset=preset,
        seed=seed,
        traffic=TrafficSpec(
            arrivals="tenant_mix",
            params={"tenants": {
                "steady": {"process": "poisson", "rate": 0.02},
                "noisy": {"process": "flash_crowd", "base_rate": 0.004,
                          "spike_rate": 0.5, "spike_at": 1300.0,
                          "spike_duration": 600.0},
            }},
            max_sessions=8,
            queue_limit=16,
            queue_timeout=300.0),
        slo=SloSpec(targets=(
            SloTarget(metric="queue_wait", percentile="p90",
                      max_value=30.0, tenant="steady"),
        )),
        variants=(
            VariantSpec("fifo"),
            VariantSpec("weighted_fair",
                        admission=AdmissionSpec(
                            policy="weighted_fair",
                            weights={"steady": steady_weight})),
        ),
        expect=(
            Expectation("openloop.offered", "==",
                        variant="weighted_fair", than_variant="fifo"),
            Expectation("openloop.tenant.steady.offered", ">", 0,
                        variant="fifo"),
            Expectation("slo.tenant.steady.queue_wait_p90.observed", "<",
                        variant="weighted_fair", than_variant="fifo"),
            Expectation("slo.violations", ">", 0, variant="fifo"),
            Expectation("slo.ok", "==", 1, variant="weighted_fair"),
        ),
        description="Two tenants, one admission queue, two arbiters: "
                    "under FIFO the noisy tenant's spike inflates the "
                    "steady tenant's queue wait; weighted-fair shares "
                    "hand the victim its slots back, and the SLO facts "
                    "pin the recovery.")


register_scenario(fairness_scenario())


# ----------------------------------------------- optimizer (new family)
def optimizer_scenario(clients: int = 24, preset: str = "smoke",
                       seed: int = 3) -> ScenarioSpec:
    """OPT-ENUM: the memory-pressure workload under both enumerators.

    Both variants run the sales workload against a quartered (1 GiB)
    memory budget — the regime where compilation memory is the
    contended resource and the enumerator's memo footprint matters.
    The ``memo`` variant carries an *explicit* default
    :class:`~repro.optimizer.spec.OptimizerSpec`, so the artifact is
    stamped with the optimizer axis while the simulated behaviour
    stays byte-identical to an optimizer-free run (the optimizer-smoke
    CI lane asserts exactly that); the ``ues`` variant swaps in the
    greedy upper-bound enumerator, which skips the staged search and
    must therefore never compile slower on average.
    """
    from repro.optimizer.spec import OptimizerSpec
    return ScenarioSpec(
        scenario_id="opt-enum",
        title="OPT-ENUM: memo vs ues enumeration under memory pressure",
        family="optimizer",
        workload="sales",
        clients=clients,
        preset=preset,
        seed=seed,
        variants=(
            VariantSpec("memo_1g",
                        ConfigOverrides(physical_memory=1 * GiB),
                        optimizer=OptimizerSpec()),
            VariantSpec("ues_1g",
                        ConfigOverrides(physical_memory=1 * GiB),
                        optimizer=OptimizerSpec(enumerator="ues")),
        ),
        expect=(
            Expectation("completed", ">", 0, variant="memo_1g"),
            Expectation("completed", ">", 0, variant="ues_1g"),
            Expectation("mean_compile_time", "<=",
                        variant="ues_1g", than_variant="memo_1g"),
        ),
        description="The mem-ramp pressure point re-run per join "
                    "enumerator: the staged memo search vs the greedy "
                    "UES-style upper-bound ordering, with the greedy "
                    "variant pinned to compile no slower on average.")


register_scenario(optimizer_scenario())


# --------------------------------------------------- scale (new family)
#: the paper testbed's client population (FIG-3), which the scale
#: family multiplies
PAPER_POPULATION = 30


def scale_scenario(factor: int, preset: str = "smoke", seed: int = 3,
                   kernel: str = "wheel") -> ScenarioSpec:
    """SCALE-<factor>X: FIG-3 throughput at ``factor`` times the paper
    population, driven open-loop on the ``wheel`` kernel.

    ``factor * 30`` admission slots with a Poisson arrival stream
    sized to keep every slot contended for the whole run — the offered
    load a closed loop can never generate.  Results are identical on
    the legacy kernel (the differential harness checks exactly that at
    small N); the wheel is the default here because at these
    populations it is the kernel that keeps the run CI-sized.
    """
    population = PAPER_POPULATION * factor
    return ScenarioSpec(
        scenario_id=f"scale-{factor}x",
        title=f"SCALE-{factor}X: throughput at {population} sessions",
        family="scale",
        workload="sales",
        clients=PAPER_POPULATION,
        preset=preset,
        seed=seed,
        kernel=kernel,
        traffic=TrafficSpec(
            arrivals="poisson",
            params={"rate": population / 1800.0},
            max_sessions=population,
            queue_limit=max(64, population // 8),
            queue_timeout=240.0),
        variants=(
            VariantSpec("throttled", ConfigOverrides(throttling=True)),
            VariantSpec("unthrottled", ConfigOverrides(throttling=False)),
        ),
        expect=(
            Expectation("openloop.offered", ">", 0, variant="throttled"),
            Expectation("openloop.admitted", ">", 0,
                        variant="throttled"),
            Expectation("openloop.offered", "==",
                        variant="throttled", than_variant="unthrottled"),
        ),
        render="comparison",
        description=f"The paper's 30-client experiment blown up "
                    f"{factor}x: {population} concurrent session slots "
                    f"under open-loop Poisson arrivals.")


def scale_flood_scenario(sessions: int = 100_000, preset: str = "smoke",
                         seed: int = 3,
                         kernel: str = "wheel") -> ScenarioSpec:
    """SCALE-FLOOD: 10^5 concurrent session slots in one run.

    The scale-smoke CI lane runs this scenario on the wheel kernel
    under a wall-clock budget; its artifact is radar-pinned so a
    regression in kernel throughput or admission accounting blocks.
    """
    return ScenarioSpec(
        scenario_id="scale-flood",
        title=f"SCALE-FLOOD: {sessions} session flood",
        family="scale",
        workload="sales",
        clients=PAPER_POPULATION,
        preset=preset,
        seed=seed,
        kernel=kernel,
        traffic=TrafficSpec(
            arrivals="poisson",
            params={"rate": sessions / 2800.0},
            max_sessions=sessions,
            queue_limit=sessions // 8,
            queue_timeout=240.0),
        variants=(VariantSpec("flood",
                              ConfigOverrides(throttling=True)),),
        expect=(
            Expectation("openloop.offered", ">=", float(sessions),
                        variant="flood"),
            Expectation("openloop.admitted", ">", 0, variant="flood"),
        ),
        description=f"{sessions} admission slots, arrivals sized to "
                    f"offer the full population within the run: the "
                    f"million-session-bound stress the struct-of-"
                    f"arrays tables and the event wheel exist for.")


for _scale_factor in (100, 1000):
    register_scenario(scale_scenario(_scale_factor))
register_scenario(scale_flood_scenario())
