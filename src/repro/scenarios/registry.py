"""The scenario registry.

Built-in scenarios (``repro.scenarios.library``) and user code register
:class:`~repro.scenarios.spec.ScenarioSpec` values here; the CLI, the
engine suite builders and the test suite enumerate them.  Ids are
unique — re-registering an id is a hard error so two harnesses can
never silently disagree about what a scenario means.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register one spec; returns it so builders can chain.

    Also usable as a decorator on a zero-argument builder function::

        @register_scenario
        def my_scenario() -> ScenarioSpec:
            return ScenarioSpec(...)
    """
    if callable(spec) and not isinstance(spec, ScenarioSpec):
        built = spec()
        register_scenario(built)
        return spec
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            f"register_scenario needs a ScenarioSpec, "
            f"got {type(spec).__name__}")
    if spec.scenario_id in _REGISTRY:
        raise ConfigurationError(
            f"scenario {spec.scenario_id!r} is already registered")
    _REGISTRY[spec.scenario_id] = spec
    return spec


def unregister_scenario(scenario_id: str) -> None:
    """Remove one registration (tests use this to stay hermetic)."""
    _REGISTRY.pop(scenario_id, None)


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """Look one registered spec up by id.

    Raises :class:`ConfigurationError` naming the registered ids when
    the id is unknown (typos teach the catalogue).
    """
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {scenario_id!r}; registered scenarios: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def list_scenarios(family: Optional[str] = None) -> List[ScenarioSpec]:
    """Registered specs, ordered by (family, id)."""
    specs = [s for s in _REGISTRY.values()
             if family is None or s.family == family]
    return sorted(specs, key=lambda s: (s.family, s.scenario_id))


def scenario_ids() -> List[str]:
    """All registered scenario ids, sorted."""
    return sorted(_REGISTRY)


def scenario_families() -> List[str]:
    """All families with at least one registered scenario, sorted."""
    return sorted({s.family for s in _REGISTRY.values()})
