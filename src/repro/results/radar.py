"""The regression radar: p50/p90 wall-seconds drift between two runs.

Wall clocks are canonically *volatile* — two correct runs never match
on them — so ``repro results diff`` excludes them.  But their drift
over the trajectory is exactly how a perf regression looks, so the
radar compares the per-scenario ``wall_seconds_percentiles`` digests
of a baseline and a candidate run and reports every pinned scenario
whose p50 or p90 regressed beyond the threshold.

The default threshold lives here — :data:`DEFAULT_REGRESSION_THRESHOLD`
— and **only** here: the CLI and the ``regression-radar`` CI lane both
inherit it by passing no ``--threshold``, so retuning it is a one-line
change.  20% is deliberately loose for percentiles of wall clocks on
shared CI runners: tighter than the 2x a real regression (an
accidentally quadratic merge, a lost cache) produces, looser than the
~±10% scheduler noise a busy runner adds.  The ``min_seconds`` floor
skips percentiles where both runs are near-free (monitors renders,
microsecond cells) whose ratios are all noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

#: regression tolerance as a fraction of the baseline percentile —
#: the single source of truth for ``--threshold``'s default (see the
#: module docstring for why 0.20)
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: percentile floor (seconds): when baseline *and* candidate are both
#: under it, the percentile is skipped — ratios of near-zero wall
#: clocks measure the OS scheduler, not the code
DEFAULT_MIN_SECONDS = 0.05

#: the digest percentiles the radar watches
RADAR_PERCENTILES = ("p50", "p90")


@dataclass(frozen=True)
class RadarFinding:
    """One scenario percentile that regressed beyond the threshold."""

    scenario_id: str
    percentile: str
    baseline: float
    candidate: float

    @property
    def regression(self) -> float:
        """Fractional slowdown (0.5 = 50% slower; ``inf`` when the
        baseline percentile was zero)."""
        if self.baseline <= 0:
            return math.inf
        return self.candidate / self.baseline - 1.0

    def describe(self) -> str:
        return (f"{self.scenario_id} {self.percentile}: "
                f"{self.baseline:.3f}s -> {self.candidate:.3f}s "
                f"(+{self.regression * 100.0:.0f}%)")


@dataclass
class RadarReport:
    """Everything one radar scan compared, skipped and flagged."""

    baseline: "RunRow"
    candidate: "RunRow"
    threshold: float
    min_seconds: float
    #: ``scenario:percentile`` labels that were actually compared
    compared: List[str] = field(default_factory=list)
    #: label -> why it was not compared
    skipped: Dict[str, str] = field(default_factory=dict)
    findings: List[RadarFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def scan(warehouse, baseline_ref, candidate_ref,
         threshold: Optional[float] = None,
         min_seconds: Optional[float] = None,
         scenarios: Optional[Sequence[str]] = None) -> RadarReport:
    """Compare two runs' per-scenario wall-seconds percentiles.

    ``scenarios`` pins specific ids: a pinned scenario missing from
    either run is a hard error (the radar cannot certify what did not
    run).  Without pins, every scenario the two runs share is
    compared and scenarios present in only one run are reported as
    skipped.
    """
    threshold = DEFAULT_REGRESSION_THRESHOLD if threshold is None \
        else threshold
    min_seconds = DEFAULT_MIN_SECONDS if min_seconds is None \
        else min_seconds
    if threshold < 0:
        raise ConfigurationError(
            f"radar threshold must be >= 0, got {threshold}")
    baseline = warehouse.resolve(baseline_ref)
    candidate = warehouse.resolve(candidate_ref)
    base = warehouse.scenario_percentiles(baseline.run_id)
    cand = warehouse.scenario_percentiles(candidate.run_id)
    if scenarios:
        missing = sorted(sid for sid in scenarios
                         if sid not in base or sid not in cand)
        if missing:
            raise ConfigurationError(
                f"pinned scenario(s) {', '.join(missing)} missing "
                f"from {baseline.describe()} or "
                f"{candidate.describe()}; the radar cannot certify "
                f"what did not run")
        watched = sorted(dict.fromkeys(scenarios))
    else:
        watched = sorted(set(base) & set(cand))
    report = RadarReport(baseline=baseline, candidate=candidate,
                         threshold=threshold, min_seconds=min_seconds)
    for sid in sorted(set(base).symmetric_difference(cand)):
        report.skipped[sid] = "present in only one run"
    for sid in watched:
        for percentile in RADAR_PERCENTILES:
            label = f"{sid}:{percentile}"
            before = float(base[sid].get(percentile, 0.0))
            after = float(cand[sid].get(percentile, 0.0))
            if before < min_seconds and after < min_seconds:
                report.skipped[label] = (
                    f"both runs under the {min_seconds}s floor")
                continue
            report.compared.append(label)
            slower = math.inf if before <= 0 \
                else after / before - 1.0
            if slower > threshold:
                report.findings.append(RadarFinding(
                    scenario_id=sid, percentile=percentile,
                    baseline=before, candidate=after))
    return report
