"""The results warehouse: a cross-run star schema over BENCH data.

Every execution surface writes write-once artifacts (``BENCH_*.json``
dirs, cell journals); nothing aggregated across runs.  This module is
the trajectory store those surfaces feed: a small sqlite star schema —
``runs`` and ``cells`` dimensions, a ``metrics`` fact table — bulk-
loaded from artifact directories and journals (the classic
dimension/fact split, loaded ``executemany`` in one transaction per
run, after pygrametl's ``tables.py``/``parallel.py`` idiom).

Identity and idempotence
------------------------
A loaded run's **fingerprint** hashes three things: the selection
fingerprint the journal module already defines (cells + specs +
snapshot flag, order-insensitive), the code identity (git sha) and the
host — plus a digest of the ingested document bytes, so two *distinct*
executions of the same selection on the same commit and machine stay
two runs (their wall clocks differ), while re-``load``-ing the same
artifact directory is a no-op that returns the existing run.

Metrics contract
----------------
Each fact row carries a ``volatile`` flag taken from
:data:`~repro.experiments.shards.VOLATILE_FIELDS` — the same frozen
set :func:`~repro.experiments.shards.canonical_document` zeroes.
``diff`` compares two runs cell-by-cell and reports non-volatile
deltas as regressions-in-waiting; ``trend`` digests per-scenario
``wall_seconds`` into the nearest-rank percentiles the shard merge
uses.  See ``docs/results.md`` for the full contract.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import platform
import sqlite3
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.engine import ARTIFACT_SCHEMA
from repro.experiments.shards import (
    VOLATILE_FIELDS,
    load_bench_document,
    wall_seconds_percentiles,
)

#: version of the warehouse's own sqlite schema, recorded in ``meta``;
#: a warehouse file of another version refuses to open (re-``load``
#: from the artifacts, which remain the system of record)
WAREHOUSE_SCHEMA = 1

#: oldest artifact schema ``load`` ingests.  Schema-1 artifacts
#: predate per-variant summaries — they carry no per-cell facts to
#: warehouse (see the schema history appendix in docs/results.md)
MIN_ARTIFACT_SCHEMA = 2

#: the error pseudo-metric: a cell that produced an error instead of a
#: summary contributes exactly this fact.  Deterministic failures fail
#: identically on re-run, so it is a *pinned* metric: an error
#: appearing or disappearing between two runs is a real delta
ERROR_METRIC = "cell_error"

#: fact rows per ``executemany`` batch during a bulk load
_LOAD_BATCH = 500

_DDL = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE runs (
    run_id          INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint     TEXT NOT NULL UNIQUE,
    label           TEXT NOT NULL,
    source          TEXT NOT NULL,
    git_sha         TEXT NOT NULL,
    host            TEXT NOT NULL,
    loaded_at       TEXT NOT NULL,
    artifact_schema INTEGER NOT NULL,
    cells           INTEGER NOT NULL
);
CREATE TABLE cells (
    cell_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    scenario_id TEXT NOT NULL,
    variant     TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    UNIQUE (scenario_id, variant, seed)
);
CREATE TABLE metrics (
    run_id   INTEGER NOT NULL REFERENCES runs (run_id),
    cell_id  INTEGER NOT NULL REFERENCES cells (cell_id),
    metric   TEXT NOT NULL,
    value    REAL NOT NULL,
    volatile INTEGER NOT NULL,
    PRIMARY KEY (run_id, cell_id, metric)
);
CREATE INDEX metrics_by_metric ON metrics (metric, run_id);
"""


def cell_key(scenario_id: str, variant: str, seed) -> str:
    """The ``scenario/variant#seed`` label every surface shares (the
    :meth:`~repro.experiments.executors.CellTask.key` shape)."""
    return f"{scenario_id}/{variant}#{seed}"


def detect_git_sha() -> str:
    """The current commit, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def run_fingerprint(selection: dict, git_sha: str, host: str,
                    content_digest: str) -> str:
    """The identity of one loaded run (see the module docstring)."""
    doc = {"selection": selection, "git_sha": git_sha, "host": host,
           "content": content_digest}
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True,
                   separators=(",", ":")).encode("utf-8")).hexdigest()


# ----------------------------------------------------------- extraction
@dataclass
class RunExtract:
    """Everything one ingestible source (artifact dir / journal) says.

    ``facts`` maps ``(scenario_id, variant, seed)`` to that cell's
    metric namespace; ``kinds`` records each cell's scenario kind for
    the dimension row; ``skipped`` names documents that carry no
    per-cell facts (merge summaries, engine batch artifacts) — they
    are reported, never silently dropped *or* silently fatal.
    """

    source: str
    artifact_schema: int
    selection: dict
    facts: Dict[Tuple[str, str, int], Dict[str, float]]
    kinds: Dict[Tuple[str, str, int], str]
    content_digest: str
    skipped: List[str] = field(default_factory=list)


def _check_artifact_schema(schema, origin: str) -> int:
    if not isinstance(schema, int):
        raise ConfigurationError(
            f"{origin} carries no artifact schema; refusing to guess "
            f"its shape")
    if schema > ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"{origin} has artifact schema {schema}; this build loads "
            f"schemas {MIN_ARTIFACT_SCHEMA}..{ARTIFACT_SCHEMA}")
    if schema < MIN_ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"{origin} has pre-summary artifact schema {schema}; "
            f"schema {MIN_ARTIFACT_SCHEMA} is the oldest with per-cell "
            f"facts to warehouse")
    return schema


def _float_metrics(metrics: dict) -> Dict[str, float]:
    """Coerce a metric namespace to floats (non-finite values travel
    as their ``repr`` strings in artifacts, see ``execute_cell``)."""
    return {name: float(value) for name, value in metrics.items()}


def _record_cell(extract_facts: dict, kinds: dict, cell: tuple,
                 kind: str, metrics: Dict[str, float]) -> None:
    if cell in extract_facts:
        raise ConfigurationError(
            f"cell {cell_key(*cell)} appears in more than one "
            f"document; one load ingests one run")
    extract_facts[cell] = metrics
    kinds[cell] = kind


def _extract_entry(scenario_id: str, entry: dict, specs: dict,
                   facts: dict, kinds: dict, state: dict) -> None:
    """Fold one scenario entry (artifact or shard-doc shape) into the
    extract's facts, mirroring the scheduler's history reader but
    keeping the *whole* metric namespace, not just wall clocks."""
    from repro.scenarios.facade import metrics_from_summary

    spec_doc = entry.get("spec")
    if not isinstance(spec_doc, dict):
        raise ConfigurationError(
            f"scenario {scenario_id!r} entry carries no spec")
    known = specs.get(scenario_id)
    if known is not None and known != spec_doc:
        raise ConfigurationError(
            f"documents disagree about the spec of scenario "
            f"{scenario_id!r}; load one selection's artifacts at a "
            f"time")
    specs[scenario_id] = spec_doc
    kind = spec_doc.get("kind", "experiment")
    try:
        if "results" in entry or kind == "experiment":
            for variant, summary in (entry.get("results") or {}).items():
                seed = summary.get("config", {}).get(
                    "seed", spec_doc.get("seed"))
                if "snapshot" in summary:
                    state["snapshot"] = True
                _record_cell(facts, kinds,
                             (scenario_id, variant, int(seed)), kind,
                             _float_metrics(metrics_from_summary(summary)))
            for variant, _error in (entry.get("errors") or {}).items():
                _record_cell(facts, kinds,
                             (scenario_id, variant,
                              int(spec_doc.get("seed", 0))), kind,
                             {ERROR_METRIC: 1.0})
        else:
            # monitors/trace: one render cell, named like the
            # scheduler/merge name it (first variant or "run")
            variants = spec_doc.get("variants") or []
            name = variants[0].get("name", "run") \
                if variants and isinstance(variants[0], dict) else "run"
            metrics = _float_metrics(entry.get("scenario_metrics") or {})
            metrics["wall_seconds"] = float(entry.get("wall_seconds", 0.0))
            _record_cell(facts, kinds,
                         (scenario_id, name,
                          int(spec_doc.get("seed", 0))), kind, metrics)
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"scenario {scenario_id!r} entry is malformed: "
            f"{type(exc).__name__}: {exc}") from None


def _selection_doc(specs: Dict[str, dict], facts: dict,
                   snapshot: bool) -> dict:
    """The journal-shaped selection fingerprint of an extract (cells
    sorted, specs keyed by scenario id — see
    :func:`repro.experiments.journal.selection_fingerprint`)."""
    return {
        "cells": sorted([sid, variant, seed]
                        for sid, variant, seed in facts),
        "specs": [specs[sid] for sid in sorted(specs)],
        "snapshot": snapshot,
    }


def extract_artifact_dir(directory: str) -> RunExtract:
    """One run's facts from a ``BENCH_*.json`` artifact directory.

    Ingests scenario artifacts and shard documents (artifact schemas
    ``MIN_ARTIFACT_SCHEMA..ARTIFACT_SCHEMA``); merge summaries and
    engine batch artifacts carry no
    per-cell facts and are skipped with a note.  Malformed documents
    and future schemas are hard errors — a warehouse load is strict
    where the scheduler's advisory history reader is tolerant.
    """
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise ConfigurationError(
            f"no BENCH_*.json artifacts in directory {directory!r}")
    digest = hashlib.sha256()
    specs: Dict[str, dict] = {}
    facts: Dict[Tuple[str, str, int], Dict[str, float]] = {}
    kinds: Dict[Tuple[str, str, int], str] = {}
    skipped: List[str] = []
    state = {"snapshot": False}
    schema_seen = MIN_ARTIFACT_SCHEMA
    for path in paths:
        doc = load_bench_document(path)
        name = os.path.basename(path)
        schema = _check_artifact_schema(doc.get("schema"),
                                        f"artifact {name!r}")
        if doc.get("kind") == "shard":
            entries = doc.get("scenarios")
            if not isinstance(entries, dict):
                raise ConfigurationError(
                    f"shard artifact {name!r} carries no scenarios")
        elif isinstance(doc.get("spec"), dict):
            entries = {doc["spec"].get("scenario_id"): doc}
        else:
            skipped.append(
                f"{name}: {doc.get('kind') or 'engine batch'} summary "
                f"(no per-cell facts)")
            continue
        schema_seen = max(schema_seen, schema)
        with open(path, "rb") as fh:
            digest.update(fh.read())
        for scenario_id, entry in entries.items():
            if not scenario_id or not isinstance(entry, dict):
                raise ConfigurationError(
                    f"artifact {name!r} carries a malformed scenario "
                    f"entry")
            _extract_entry(scenario_id, entry, specs, facts, kinds,
                           state)
    if not facts:
        raise ConfigurationError(
            f"directory {directory!r} holds no per-cell facts "
            f"(only: {'; '.join(skipped)})")
    return RunExtract(source=directory, artifact_schema=schema_seen,
                      selection=_selection_doc(specs, facts,
                                               state["snapshot"]),
                      facts=facts, kinds=kinds,
                      content_digest=digest.hexdigest(), skipped=skipped)


def extract_journal(path: str) -> RunExtract:
    """One run's facts from a cell journal.

    The journal's ``open`` record already carries the selection
    fingerprint; each ``result`` record carries the exact summary an
    artifact would, so a journal-loaded run diffs clean — including
    wall clocks — against the artifacts of the same execution.
    """
    from repro.experiments.journal import load_journal

    state = load_journal(path)
    if state.selection is None:
        raise ConfigurationError(
            f"journal {path!r} has no run header; nothing to load")
    _check_artifact_schema(state.schema, f"journal {path!r}")
    specs = {spec.get("scenario_id"): spec
             for spec in state.selection.get("specs", [])
             if isinstance(spec, dict)}
    facts: Dict[Tuple[str, str, int], Dict[str, float]] = {}
    kinds: Dict[Tuple[str, str, int], str] = {}
    from repro.scenarios.facade import metrics_from_summary

    for cell, result in state.results.items():
        spec_doc = specs.get(cell.scenario_id, {})
        kind = spec_doc.get("kind", "experiment")
        key = (cell.scenario_id, cell.variant, cell.seed)
        try:
            if result.summary is not None:
                metrics = _float_metrics(
                    metrics_from_summary(result.summary))
            elif result.error is not None:
                metrics = {ERROR_METRIC: 1.0}
            else:
                metrics = _float_metrics(result.scenario_metrics or {})
                metrics["wall_seconds"] = float(result.wall_seconds)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"journal {path!r} result for {cell.describe()} is "
                f"malformed: {type(exc).__name__}: {exc}") from None
        _record_cell(facts, kinds, key, kind, metrics)
    if not facts:
        raise ConfigurationError(
            f"journal {path!r} records no completed cells")
    with open(path, "rb") as fh:
        content = hashlib.sha256(fh.read()).hexdigest()
    return RunExtract(source=path, artifact_schema=state.schema,
                      selection=state.selection, facts=facts,
                      kinds=kinds, content_digest=content)


def extract_source(source: str) -> RunExtract:
    """Dispatch on the source's shape: directory → artifacts, file →
    journal (pointing ``load`` at a single ``BENCH_*.json`` gets a
    hint instead of a journal parse error)."""
    if os.path.isdir(source):
        return extract_artifact_dir(source)
    if not os.path.exists(source):
        raise ConfigurationError(
            f"cannot load {source!r}: no such artifact directory or "
            f"journal file")
    if os.path.basename(source).startswith("BENCH_"):
        raise ConfigurationError(
            f"{source!r} is a single artifact; point `repro results "
            f"load` at its directory")
    return extract_journal(source)


# ------------------------------------------------------------ row types
@dataclass(frozen=True)
class RunRow:
    """One ``runs`` dimension row."""

    run_id: int
    fingerprint: str
    label: str
    source: str
    git_sha: str
    host: str
    loaded_at: str
    artifact_schema: int
    cells: int

    def describe(self) -> str:
        return f"run {self.run_id} ({self.label})"


@dataclass(frozen=True)
class LoadReport:
    """What one ``load`` did (or found already done)."""

    run: RunRow
    created: bool
    metrics: int
    skipped: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DiffDelta:
    """One metric that differs between two runs of a cell."""

    cell: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    volatile: bool


@dataclass
class DiffReport:
    """A cell-by-cell comparison of two runs."""

    baseline: RunRow
    candidate: RunRow
    shared_cells: int
    deltas: List[DiffDelta]
    #: cells present in only one of the two runs
    missing: List[str]

    @property
    def pinned_deltas(self) -> List[DiffDelta]:
        """Deltas in non-volatile metrics — real behaviour changes."""
        return [d for d in self.deltas if not d.volatile]

    @property
    def volatile_deltas(self) -> List[DiffDelta]:
        return [d for d in self.deltas if d.volatile]

    @property
    def ok(self) -> bool:
        """True when the runs agree on every pinned metric of every
        shared cell and cover the same cells."""
        return not self.pinned_deltas and not self.missing


# ------------------------------------------------------------ warehouse
class Warehouse:
    """The sqlite star schema, with the load/query/diff/trend verbs.

    ``create=True`` (the ``load`` path) initialises a missing file;
    read verbs refuse to conjure an empty warehouse out of a typo'd
    path.  Usable as a context manager; one connection per instance.
    """

    def __init__(self, path: str, create: bool = False):
        if not create and not os.path.exists(path):
            raise ConfigurationError(
                f"no results warehouse at {path!r}; build one with "
                f"`repro results load <artifact-dir> --db {path}`")
        if create:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self.path = path
        try:
            self._conn = sqlite3.connect(path)
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot open warehouse {path!r}: {exc}") from None
        self._init_schema(create)

    def _init_schema(self, create: bool) -> None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'warehouse_schema'"
            ).fetchone()
        except sqlite3.Error:
            row = None
        if row is not None:
            if int(row[0]) != WAREHOUSE_SCHEMA:
                raise ConfigurationError(
                    f"warehouse {self.path!r} has schema {row[0]}; this "
                    f"build speaks warehouse schema {WAREHOUSE_SCHEMA} "
                    f"— re-load from the artifacts (the system of "
                    f"record)")
            return
        if not create:
            raise ConfigurationError(
                f"{self.path!r} is not a results warehouse")
        with self._conn:
            self._conn.executescript(_DDL)
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("warehouse_schema", str(WAREHOUSE_SCHEMA)))

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ load
    def load(self, source: str, label: Optional[str] = None,
             git_sha: Optional[str] = None,
             host: Optional[str] = None) -> LoadReport:
        """Ingest one source as one run; idempotent on re-load.

        Dimension rows are upserted, fact rows bulk-inserted in
        batches inside a single transaction — a failed load leaves no
        partial run behind.
        """
        extract = extract_source(source)
        git_sha = git_sha or detect_git_sha()
        host = host or platform.node() or "unknown"
        fingerprint = run_fingerprint(extract.selection, git_sha, host,
                                      extract.content_digest)
        existing = self._conn.execute(
            "SELECT run_id FROM runs WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        if existing is not None:
            run = self._run_row(existing[0])
            facts = self._conn.execute(
                "SELECT COUNT(*) FROM metrics WHERE run_id = ?",
                (run.run_id,)).fetchone()[0]
            return LoadReport(run=run, created=False, metrics=facts,
                              skipped=tuple(extract.skipped))
        loaded_at = datetime.now(timezone.utc).isoformat(
            timespec="seconds")
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (fingerprint, label, source, git_sha,"
                " host, loaded_at, artifact_schema, cells)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (fingerprint, label or str(source), str(source),
                 git_sha, host, loaded_at, extract.artifact_schema,
                 len(extract.facts)))
            run_id = cursor.lastrowid
            ordered = sorted(extract.facts)
            self._conn.executemany(
                "INSERT OR IGNORE INTO cells (scenario_id, variant,"
                " seed, kind) VALUES (?, ?, ?, ?)",
                [(sid, variant, seed, extract.kinds[(sid, variant, seed)])
                 for sid, variant, seed in ordered])
            cell_ids = {
                (sid, variant, seed): cid
                for cid, sid, variant, seed in self._conn.execute(
                    "SELECT cell_id, scenario_id, variant, seed"
                    " FROM cells")}
            rows = [(run_id, cell_ids[cell], metric, float(value),
                     int(metric in VOLATILE_FIELDS))
                    for cell in ordered
                    for metric, value in
                    sorted(extract.facts[cell].items())]
            for start in range(0, len(rows), _LOAD_BATCH):
                self._conn.executemany(
                    "INSERT INTO metrics (run_id, cell_id, metric,"
                    " value, volatile) VALUES (?, ?, ?, ?, ?)",
                    rows[start:start + _LOAD_BATCH])
        return LoadReport(run=self._run_row(run_id), created=True,
                          metrics=len(rows),
                          skipped=tuple(extract.skipped))

    # ------------------------------------------------------ run lookup
    def _run_row(self, run_id: int) -> RunRow:
        row = self._conn.execute(
            "SELECT run_id, fingerprint, label, source, git_sha, host,"
            " loaded_at, artifact_schema, cells FROM runs"
            " WHERE run_id = ?", (run_id,)).fetchone()
        if row is None:
            raise ConfigurationError(
                f"no run {run_id} in warehouse {self.path!r}")
        return RunRow(*row)

    def runs(self) -> List[RunRow]:
        """Every loaded run, oldest first."""
        return [RunRow(*row) for row in self._conn.execute(
            "SELECT run_id, fingerprint, label, source, git_sha, host,"
            " loaded_at, artifact_schema, cells FROM runs"
            " ORDER BY run_id")]

    def resolve(self, ref) -> RunRow:
        """A run from any human handle: integer id, ``latest`` /
        ``prev``, an exact label, or a fingerprint prefix."""
        runs = self.runs()
        if not runs:
            raise ConfigurationError(
                f"warehouse {self.path!r} holds no runs; "
                f"`repro results load` some first")
        ref = str(ref)
        if ref == "latest":
            return runs[-1]
        if ref in ("prev", "previous"):
            if len(runs) < 2:
                raise ConfigurationError(
                    f"warehouse {self.path!r} holds only one run; "
                    f"there is no previous run yet")
            return runs[-2]
        if ref.isdigit():
            for run in runs:
                if run.run_id == int(ref):
                    return run
            raise ConfigurationError(
                f"no run {ref} in warehouse {self.path!r} (runs "
                f"{runs[0].run_id}..{runs[-1].run_id})")
        labelled = [run for run in runs if run.label == ref]
        if len(labelled) == 1:
            return labelled[0]
        if len(labelled) > 1:
            raise ConfigurationError(
                f"label {ref!r} names {len(labelled)} runs; use the "
                f"run id")
        prefixed = [run for run in runs
                    if run.fingerprint.startswith(ref)]
        if len(prefixed) == 1:
            return prefixed[0]
        raise ConfigurationError(
            f"no run named {ref!r} in warehouse {self.path!r}; refs "
            f"are a run id, 'latest', 'prev', a label or a "
            f"fingerprint prefix")

    # ----------------------------------------------------------- query
    def query(self, run=None, scenario: Optional[str] = None,
              variant: Optional[str] = None,
              metric: Optional[str] = None) -> List[tuple]:
        """Fact rows ``(run_id, scenario, variant, seed, metric,
        value, volatile)``, filtered and deterministically ordered."""
        sql = ("SELECT m.run_id, c.scenario_id, c.variant, c.seed,"
               " m.metric, m.value, m.volatile"
               " FROM metrics m JOIN cells c ON c.cell_id = m.cell_id")
        clauses, params = [], []
        if run is not None:
            clauses.append("m.run_id = ?")
            params.append(self.resolve(run).run_id)
        for clause, value in (("c.scenario_id = ?", scenario),
                              ("c.variant = ?", variant),
                              ("m.metric = ?", metric)):
            if value is not None:
                clauses.append(clause)
                params.append(value)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += (" ORDER BY m.run_id, c.scenario_id, c.variant, c.seed,"
                " m.metric")
        return list(self._conn.execute(sql, params))

    def _metric_map(self, run_id: int) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for row in self._conn.execute(
                "SELECT c.scenario_id, c.variant, c.seed, m.metric,"
                " m.value, m.volatile FROM metrics m"
                " JOIN cells c ON c.cell_id = m.cell_id"
                " WHERE m.run_id = ?", (run_id,)):
            sid, variant, seed, metric, value, volatile = row
            out.setdefault(cell_key(sid, variant, seed), {})[metric] = \
                (value, bool(volatile))
        return out

    # ------------------------------------------------------------ diff
    def diff(self, baseline_ref, candidate_ref) -> DiffReport:
        """Compare two runs cell-by-cell (see :class:`DiffReport`).

        Diffing a run against itself is legal and reports zero deltas
        — the degenerate case of "byte-identical runs dedupe to one
        fingerprint".
        """
        baseline = self.resolve(baseline_ref)
        candidate = self.resolve(candidate_ref)
        base = self._metric_map(baseline.run_id)
        cand = self._metric_map(candidate.run_id)
        missing = [f"{key} only in {baseline.describe()}"
                   for key in sorted(set(base) - set(cand))]
        missing += [f"{key} only in {candidate.describe()}"
                    for key in sorted(set(cand) - set(base))]
        deltas: List[DiffDelta] = []
        shared = sorted(set(base) & set(cand))
        for key in shared:
            metrics_a, metrics_b = base[key], cand[key]
            for metric in sorted(set(metrics_a) | set(metrics_b)):
                in_a, in_b = metrics_a.get(metric), metrics_b.get(metric)
                volatile = (in_a or in_b)[1]
                value_a = in_a[0] if in_a else None
                value_b = in_b[0] if in_b else None
                if value_a != value_b:
                    deltas.append(DiffDelta(
                        cell=key, metric=metric, baseline=value_a,
                        candidate=value_b, volatile=volatile))
        return DiffReport(baseline=baseline, candidate=candidate,
                          shared_cells=len(shared), deltas=deltas,
                          missing=missing)

    # ----------------------------------------------------------- trend
    def scenario_percentiles(self, run_ref,
                             metric: str = "wall_seconds"
                             ) -> Dict[str, dict]:
        """Per-scenario nearest-rank percentile digest of one run's
        per-cell ``metric`` values (the shard-merge digest shape)."""
        run = self.resolve(run_ref)
        values: Dict[str, List[float]] = {}
        for sid, value in self._conn.execute(
                "SELECT c.scenario_id, m.value FROM metrics m"
                " JOIN cells c ON c.cell_id = m.cell_id"
                " WHERE m.run_id = ? AND m.metric = ? AND m.value > 0",
                (run.run_id, metric)):
            values.setdefault(sid, []).append(value)
        return {sid: wall_seconds_percentiles(walls)
                for sid, walls in sorted(values.items())}

    def trend(self, metric: str = "wall_seconds",
              scenario: Optional[str] = None
              ) -> Dict[str, List[Tuple[RunRow, dict]]]:
        """The ``wall_seconds_percentiles`` series per scenario, run by
        run (oldest first) — the trajectory the regression radar
        watches.  ``scenario`` restricts the series to one id."""
        series: Dict[str, List[Tuple[RunRow, dict]]] = {}
        for run in self.runs():
            for sid, digest in self.scenario_percentiles(
                    run.run_id, metric=metric).items():
                if scenario is not None and sid != scenario:
                    continue
                series.setdefault(sid, []).append((run, digest))
        if scenario is not None and not series:
            raise ConfigurationError(
                f"no {metric!r} facts for scenario {scenario!r} in "
                f"warehouse {self.path!r}")
        return series
