"""repro.results: the cross-run results warehouse + regression radar.

Two modules:

* :mod:`repro.results.warehouse` — the sqlite star schema (``runs`` /
  ``cells`` dimensions, ``metrics`` facts) and the load / query /
  diff / trend verbs over it;
* :mod:`repro.results.radar` — the p50/p90 wall-seconds regression
  scan the ``regression-radar`` CI lane runs (and the single home of
  its default threshold).

``repro results …`` in :mod:`repro.cli` is a thin shell over these;
``docs/results.md`` documents the schema and the metrics contract.
"""

from repro.results.radar import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_REGRESSION_THRESHOLD,
    RadarFinding,
    RadarReport,
    scan,
)
from repro.results.warehouse import (
    ERROR_METRIC,
    MIN_ARTIFACT_SCHEMA,
    WAREHOUSE_SCHEMA,
    DiffDelta,
    DiffReport,
    LoadReport,
    RunRow,
    Warehouse,
    detect_git_sha,
)

__all__ = [
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_REGRESSION_THRESHOLD",
    "DiffDelta",
    "DiffReport",
    "ERROR_METRIC",
    "LoadReport",
    "MIN_ARTIFACT_SCHEMA",
    "RadarFinding",
    "RadarReport",
    "RunRow",
    "WAREHOUSE_SCHEMA",
    "Warehouse",
    "detect_git_sha",
    "scan",
]
