"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


class Parser:
    """Parses one SELECT statement from a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _check_keyword(self, word: str) -> bool:
        return self._current.is_keyword(word)

    def _accept_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()!r}, found {self._current}",
                self._current.position)
        return self._advance()

    def _check_symbol(self, symbol: str) -> bool:
        cur = self._current
        return cur.type is TokenType.SYMBOL and cur.text == symbol

    def _accept_symbol(self, symbol: str) -> bool:
        if self._check_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._check_symbol(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r}, found {self._current}",
                self._current.position)
        return self._advance()

    def _expect_ident(self) -> str:
        cur = self._current
        if cur.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, found {cur}", cur.position)
        self._advance()
        return cur.text

    # -- grammar -----------------------------------------------------------
    def parse_statement(self) -> ast.SelectStatement:
        stmt = ast.SelectStatement()
        self._expect_keyword("select")
        if self._accept_keyword("top"):
            stmt.limit = self._parse_int_literal()
        stmt.items = self._parse_select_items()
        self._expect_keyword("from")
        stmt.from_tables.append(self._parse_table_ref())
        while True:
            if self._accept_symbol(","):
                stmt.from_tables.append(self._parse_table_ref())
            elif (self._check_keyword("join")
                  or self._check_keyword("inner")
                  or self._check_keyword("cross")):
                stmt.joins.append(self._parse_join_clause())
            else:
                break
        if self._accept_keyword("where"):
            stmt.where = self._parse_expr()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            stmt.group_by.append(self._parse_expr())
            while self._accept_symbol(","):
                stmt.group_by.append(self._parse_expr())
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            stmt.order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                stmt.order_by.append(self._parse_order_item())
        if self._accept_keyword("limit"):
            stmt.limit = self._parse_int_literal()
        self._accept_symbol(";")
        if self._current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input: {self._current}",
                self._current.position)
        return stmt

    def _parse_int_literal(self) -> int:
        cur = self._current
        if cur.type is not TokenType.NUMBER:
            raise SqlSyntaxError(f"expected number, found {cur}", cur.position)
        self._advance()
        return int(float(cur.text))

    def _parse_select_items(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._expect_ident()
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> ast.TableRef:
        table = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._expect_ident()
        return ast.TableRef(table=table, alias=alias)

    def _parse_join_clause(self) -> ast.JoinClause:
        if self._accept_keyword("cross"):
            self._expect_keyword("join")
            return ast.JoinClause(table=self._parse_table_ref(), condition=None)
        self._accept_keyword("inner")
        self._expect_keyword("join")
        table = self._parse_table_ref()
        self._expect_keyword("on")
        condition = self._parse_expr()
        return ast.JoinClause(table=table, condition=condition)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr=expr, descending=descending)

    # expression precedence: OR < AND < comparison < additive < multiplicative
    def _parse_expr(self) -> ast.AstNode:
        return self._parse_or()

    def _parse_or(self) -> ast.AstNode:
        left = self._parse_and()
        while self._accept_keyword("or"):
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> ast.AstNode:
        left = self._parse_comparison()
        while self._accept_keyword("and"):
            right = self._parse_comparison()
            left = ast.BinaryOp("and", left, right)
        return left

    def _parse_comparison(self) -> ast.AstNode:
        left = self._parse_additive()
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.BetweenOp(expr=left, low=low, high=high)
        for op in ("<=", ">=", "<>", "=", "<", ">"):
            if self._check_symbol(op):
                self._advance()
                right = self._parse_additive()
                return ast.BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> ast.AstNode:
        left = self._parse_multiplicative()
        while True:
            if self._check_symbol("+") or self._check_symbol("-"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.AstNode:
        left = self._parse_primary()
        while True:
            if self._check_symbol("*") or self._check_symbol("/"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._parse_primary())
            else:
                return left

    _AGGREGATES = frozenset({"sum", "count", "avg", "min", "max"})

    def _parse_primary(self) -> ast.AstNode:
        cur = self._current
        if cur.type is TokenType.NUMBER:
            self._advance()
            text = cur.text
            value = float(text) if "." in text else int(text)
            return ast.NumberLit(value)
        if cur.type is TokenType.STRING:
            self._advance()
            return ast.StringLit(cur.text)
        if self._accept_symbol("("):
            inner = self._parse_expr()
            self._expect_symbol(")")
            return inner
        if cur.type is TokenType.IDENT:
            name = self._expect_ident()
            if name in self._AGGREGATES and self._check_symbol("("):
                return self._parse_func_call(name)
            parts = [name]
            while self._accept_symbol("."):
                parts.append(self._expect_ident())
            return ast.Identifier(tuple(parts))
        raise SqlSyntaxError(f"unexpected token {cur}", cur.position)

    def _parse_func_call(self, name: str) -> ast.FuncCall:
        self._expect_symbol("(")
        distinct = self._accept_keyword("distinct")
        if self._accept_symbol("*"):
            args: tuple = (ast.Star(),)
        else:
            args = (self._parse_expr(),)
        self._expect_symbol(")")
        return ast.FuncCall(name=name, args=args, distinct=distinct)


def parse(text: str) -> ast.SelectStatement:
    """Parse one SELECT statement from query text."""
    return Parser(tokenize(text)).parse_statement()
