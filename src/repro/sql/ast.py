"""Abstract syntax tree produced by the parser (pre-binding)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class AstNode:
    """Base class for AST nodes."""


@dataclass(frozen=True)
class Identifier(AstNode):
    """A possibly-qualified name: ``col`` or ``alias.col``."""

    parts: Tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class NumberLit(AstNode):
    value: Union[int, float]


@dataclass(frozen=True)
class StringLit(AstNode):
    value: str


@dataclass(frozen=True)
class Star(AstNode):
    """``*`` inside COUNT(*)."""


@dataclass(frozen=True)
class BinaryOp(AstNode):
    """Any infix operation: comparisons, AND/OR, arithmetic."""

    op: str
    left: AstNode
    right: AstNode


@dataclass(frozen=True)
class BetweenOp(AstNode):
    expr: AstNode
    low: AstNode
    high: AstNode


@dataclass(frozen=True)
class FuncCall(AstNode):
    name: str
    args: Tuple[AstNode, ...]
    distinct: bool = False


@dataclass(frozen=True)
class SelectItem(AstNode):
    expr: AstNode
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef(AstNode):
    table: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class JoinClause(AstNode):
    """An explicit ``JOIN table ON condition`` element."""

    table: TableRef
    condition: Optional[AstNode]


@dataclass(frozen=True)
class OrderItem(AstNode):
    expr: AstNode
    descending: bool = False


@dataclass
class SelectStatement(AstNode):
    """One SELECT query."""

    items: List[SelectItem] = field(default_factory=list)
    from_tables: List[TableRef] = field(default_factory=list)
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[AstNode] = None
    group_by: List[AstNode] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
