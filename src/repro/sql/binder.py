"""Name resolution: AST → bound logical plan.

The binder resolves every identifier against the catalog, splits the
WHERE clause into single-table predicates (pushed into the
:class:`~repro.plans.logical.LogicalGet` leaves) and join predicates,
and assembles a left-deep initial join tree in FROM-clause order — the
optimizer is responsible for reordering it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import BindError
from repro.plans import expressions as ex
from repro.plans import logical as lg
from repro.sql import ast


@dataclass
class BoundQuery:
    """The binder's output: a logical plan plus query-shape facts."""

    root: lg.LogicalNode
    #: alias -> table name, in FROM-clause order
    aliases: Dict[str, str]
    #: number of binary joins in the initial tree
    join_count: int
    #: bound output expressions (the SELECT list)
    output: Tuple[ex.Expr, ...]

    @property
    def table_count(self) -> int:
        return len(self.aliases)


class Binder:
    """Binds parsed statements against one catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def bind(self, stmt: ast.SelectStatement) -> BoundQuery:
        aliases = self._collect_aliases(stmt)
        # bind predicates
        where_conjuncts: List[ex.Expr] = []
        if stmt.where is not None:
            where_conjuncts.extend(
                ex.conjuncts(self._bind_expr(stmt.where, aliases)))
        for join in stmt.joins:
            if join.condition is not None:
                where_conjuncts.extend(
                    ex.conjuncts(self._bind_expr(join.condition, aliases)))

        local: Dict[str, List[ex.Expr]] = {alias: [] for alias in aliases}
        join_preds: List[ex.Expr] = []
        for conjunct in where_conjuncts:
            refs = conjunct.referenced_aliases()
            if len(refs) == 1:
                local[next(iter(refs))].append(conjunct)
            elif len(refs) == 0:
                # constant predicate: attach to the first table
                local[next(iter(aliases))].append(conjunct)
            else:
                join_preds.append(conjunct)

        # left-deep initial tree in FROM order
        order = list(aliases)
        root: lg.LogicalNode = self._make_get(order[0], aliases, local)
        joined = {order[0]}
        join_count = 0
        remaining = list(join_preds)
        for alias in order[1:]:
            get = self._make_get(alias, aliases, local)
            joined.add(alias)
            applicable = [p for p in remaining
                          if p.referenced_aliases() <= joined
                          and alias in p.referenced_aliases()]
            for p in applicable:
                remaining.remove(p)
            root = lg.LogicalJoin(root, get,
                                  ex.make_conjunction(applicable))
            join_count += 1
        # predicates that span non-adjacent tables end up as a filter
        leftover = [p for p in remaining if p.referenced_aliases() <= joined]
        not_bindable = [p for p in remaining
                        if not p.referenced_aliases() <= joined]
        if not_bindable:
            raise BindError(
                f"predicate references unknown aliases: {not_bindable[0]}")
        if leftover:
            root = lg.LogicalFilter(root, ex.make_conjunction(leftover))

        # aggregation
        group_keys = tuple(self._bind_group_key(g, aliases)
                           for g in stmt.group_by)
        output: List[ex.Expr] = []
        aggregates: List[ex.Aggregate] = []
        select_aliases: Dict[str, ex.Expr] = {}
        for item in stmt.items:
            bound = self._bind_expr(item.expr, aliases)
            output.append(bound)
            aggregates.extend(_collect_aggregates(bound))
            if item.alias:
                select_aliases[item.alias.lower()] = bound
        if group_keys or aggregates:
            root = lg.LogicalAggregate(root, group_keys, tuple(aggregates))
        root = lg.LogicalProject(root, tuple(output))
        if stmt.order_by:
            keys = tuple(
                self._bind_order_key(o.expr, aliases, select_aliases)
                for o in stmt.order_by)
            descending = tuple(o.descending for o in stmt.order_by)
            root = lg.LogicalSort(root, keys, descending)
        return BoundQuery(root=root, aliases=aliases,
                          join_count=join_count, output=tuple(output))

    # -- helpers -------------------------------------------------------------
    def _collect_aliases(self, stmt: ast.SelectStatement) -> Dict[str, str]:
        refs = list(stmt.from_tables) + [j.table for j in stmt.joins]
        if not refs:
            raise BindError("query has no FROM clause tables")
        aliases: Dict[str, str] = {}
        for ref in refs:
            if not self.catalog.has_table(ref.table):
                raise BindError(f"unknown table {ref.table!r}")
            alias = ref.effective_alias.lower()
            if alias in aliases:
                raise BindError(f"duplicate alias {alias!r}")
            aliases[alias] = ref.table.lower()
        return aliases

    def _make_get(self, alias: str, aliases: Dict[str, str],
                  local: Dict[str, List[ex.Expr]]) -> lg.LogicalGet:
        return lg.LogicalGet(
            alias=alias, table=aliases[alias],
            predicate=ex.make_conjunction(local[alias]))

    def _resolve_column(self, parts: Tuple[str, ...],
                        aliases: Dict[str, str]) -> ex.ColumnRef:
        if len(parts) == 2:
            alias, column = parts
            if alias not in aliases:
                raise BindError(f"unknown alias {alias!r}")
            table = self.catalog.table(aliases[alias])
            if not table.has_column(column):
                raise BindError(
                    f"table {table.name!r} has no column {column!r}")
            return ex.ColumnRef(alias=alias, column=column)
        if len(parts) == 1:
            column = parts[0]
            candidates = [alias for alias, tname in aliases.items()
                          if self.catalog.table(tname).has_column(column)]
            if not candidates:
                raise BindError(f"unknown column {column!r}")
            if len(candidates) > 1:
                raise BindError(
                    f"ambiguous column {column!r} "
                    f"(in {', '.join(sorted(candidates))})")
            return ex.ColumnRef(alias=candidates[0], column=column)
        raise BindError(f"unsupported name {'.'.join(parts)!r}")

    def _bind_order_key(self, node: ast.AstNode, aliases: Dict[str, str],
                        select_aliases: Dict[str, ex.Expr]) -> ex.Expr:
        """Bind an ORDER BY key; bare names may refer to SELECT aliases."""
        if (isinstance(node, ast.Identifier) and len(node.parts) == 1
                and node.parts[0] in select_aliases):
            return select_aliases[node.parts[0]]
        return self._bind_expr(node, aliases)

    def _bind_group_key(self, node: ast.AstNode,
                        aliases: Dict[str, str]) -> ex.ColumnRef:
        bound = self._bind_expr(node, aliases)
        if not isinstance(bound, ex.ColumnRef):
            raise BindError("GROUP BY keys must be plain columns")
        return bound

    _COMPARISONS = frozenset(ex.COMPARISON_OPS)

    def _bind_expr(self, node: ast.AstNode,
                   aliases: Dict[str, str]) -> ex.Expr:
        if isinstance(node, ast.NumberLit):
            return ex.Literal(node.value)
        if isinstance(node, ast.StringLit):
            return ex.Literal(node.value)
        if isinstance(node, ast.Identifier):
            return self._resolve_column(node.parts, aliases)
        if isinstance(node, ast.BinaryOp):
            if node.op == "and":
                left = self._bind_expr(node.left, aliases)
                right = self._bind_expr(node.right, aliases)
                return ex.make_conjunction(
                    ex.conjuncts(left) + ex.conjuncts(right))
            if node.op == "or":
                return ex.Or((self._bind_expr(node.left, aliases),
                              self._bind_expr(node.right, aliases)))
            if node.op in self._COMPARISONS:
                return ex.Comparison(node.op,
                                     self._bind_expr(node.left, aliases),
                                     self._bind_expr(node.right, aliases))
            if node.op in ("+", "-", "*", "/"):
                return ex.Arithmetic(node.op,
                                     self._bind_expr(node.left, aliases),
                                     self._bind_expr(node.right, aliases))
            raise BindError(f"unsupported operator {node.op!r}")
        if isinstance(node, ast.BetweenOp):
            return ex.Between(self._bind_expr(node.expr, aliases),
                              self._bind_expr(node.low, aliases),
                              self._bind_expr(node.high, aliases))
        if isinstance(node, ast.FuncCall):
            if node.args and isinstance(node.args[0], ast.Star):
                if node.name != "count":
                    raise BindError(f"{node.name.upper()}(*) is not valid")
                return ex.Aggregate(func="count", arg=None,
                                    distinct=node.distinct)
            arg = self._bind_expr(node.args[0], aliases)
            return ex.Aggregate(func=node.name, arg=arg,
                                distinct=node.distinct)
        raise BindError(f"cannot bind AST node {node!r}")


def _collect_aggregates(expr: ex.Expr) -> List[ex.Aggregate]:
    """All aggregate sub-expressions of a bound expression."""
    found: List[ex.Aggregate] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ex.Aggregate):
            found.append(node)
            continue
        if isinstance(node, (ex.Comparison, ex.Arithmetic)):
            stack.extend((node.left, node.right))
        elif isinstance(node, (ex.And, ex.Or)):
            stack.extend(node.children)
        elif isinstance(node, ex.Between):
            stack.extend((node.expr, node.low, node.high))
    return found
