"""SQL front end: lexer, parser and binder.

Supports the analytic subset the paper's workloads need: SELECT lists
with aggregates and arithmetic, multi-table FROM clauses (comma style
and ``JOIN … ON``), WHERE conjunctions with comparisons and BETWEEN,
GROUP BY and ORDER BY.  Comments (``--`` and ``/* */``) are lexed and
dropped — the SALES load generator uniquifies query text with comment
tags to defeat plan caching, exactly as the paper describes.
"""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import parse
from repro.sql.binder import Binder, BoundQuery

__all__ = [
    "Binder",
    "BoundQuery",
    "Lexer",
    "Token",
    "TokenType",
    "parse",
    "tokenize",
]
