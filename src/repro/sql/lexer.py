"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset({
    "select", "from", "where", "group", "by", "order", "having",
    "join", "inner", "left", "right", "outer", "cross", "on",
    "and", "or", "not", "between", "as", "asc", "desc",
    "distinct", "limit", "top",
})


class TokenType(Enum):
    IDENT = auto()
    KEYWORD = auto()
    NUMBER = auto()
    STRING = auto()
    SYMBOL = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __str__(self) -> str:
        return self.text if self.type is not TokenType.EOF else "<eof>"


#: multi-character symbols, longest first
_SYMBOLS2 = ("<=", ">=", "<>", "!=")
_SYMBOLS1 = "(),.*=<>+-/;"


class Lexer:
    """Converts query text into a token stream, dropping comments."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def tokens(self) -> Iterator[Token]:
        text, n = self.text, len(self.text)
        while True:
            # skip whitespace and comments
            while self.pos < n:
                ch = text[self.pos]
                if ch.isspace():
                    self.pos += 1
                elif text.startswith("--", self.pos):
                    nl = text.find("\n", self.pos)
                    self.pos = n if nl < 0 else nl + 1
                elif text.startswith("/*", self.pos):
                    end = text.find("*/", self.pos + 2)
                    if end < 0:
                        raise SqlSyntaxError("unterminated comment", self.pos)
                    self.pos = end + 2
                else:
                    break
            if self.pos >= n:
                yield Token(TokenType.EOF, "", self.pos)
                return
            start = self.pos
            ch = text[start]
            if ch.isalpha() or ch == "_":
                while self.pos < n and (text[self.pos].isalnum()
                                        or text[self.pos] == "_"):
                    self.pos += 1
                word = text[start:self.pos]
                lowered = word.lower()
                if lowered in KEYWORDS:
                    yield Token(TokenType.KEYWORD, lowered, start)
                else:
                    yield Token(TokenType.IDENT, lowered, start)
            elif ch.isdigit():
                while self.pos < n and (text[self.pos].isdigit()
                                        or text[self.pos] == "."):
                    self.pos += 1
                yield Token(TokenType.NUMBER, text[start:self.pos], start)
            elif ch == "'":
                self.pos += 1
                while self.pos < n and text[self.pos] != "'":
                    self.pos += 1
                if self.pos >= n:
                    raise SqlSyntaxError("unterminated string literal", start)
                self.pos += 1
                yield Token(TokenType.STRING, text[start + 1:self.pos - 1], start)
            else:
                two = text[start:start + 2]
                if two in _SYMBOLS2:
                    self.pos += 2
                    # normalize != to <>
                    yield Token(TokenType.SYMBOL,
                                "<>" if two == "!=" else two, start)
                elif ch in _SYMBOLS1:
                    self.pos += 1
                    yield Token(TokenType.SYMBOL, ch, start)
                else:
                    raise SqlSyntaxError(f"unexpected character {ch!r}", start)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` fully (including the trailing EOF token)."""
    return list(Lexer(text).tokens())
