"""The cost model.

Costs are in *estimated seconds on the paper's testbed* assuming a cold
buffer pool and no contention.  The executor re-derives actual elapsed
time from the same work parameters plus runtime effects (real hit rate,
disk queueing, CPU contention, spills), so estimated cost and actual
time agree in shape but diverge under pressure — as in a real system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GiB, MiB


@dataclass(frozen=True)
class CostParameters:
    """Calibration constants (per 700 MHz Xeon of the paper testbed)."""

    #: seconds of CPU per processed row
    cpu_per_row: float = 0.4e-6
    #: seconds of CPU to hash-build one row
    build_per_row: float = 1.2e-6
    #: seconds of CPU to probe one row
    probe_per_row: float = 0.6e-6
    #: seconds of CPU per row per comparison in sorting (times log n)
    sort_per_row: float = 0.25e-6
    #: effective scan bandwidth of the array, bytes/second
    scan_bandwidth: float = 320 * MiB
    #: hash-table overhead per byte of build input
    hash_memory_factor: float = 1.6
    #: sort workspace per byte of input
    sort_memory_factor: float = 1.2


class CostModel:
    """Computes operator costs and workspace-memory needs."""

    def __init__(self, params: CostParameters | None = None):
        self.params = params or CostParameters()

    # -- leaf ------------------------------------------------------------------
    def scan_cost(self, table_bytes: float, scan_fraction: float,
                  output_rows: float) -> float:
        """Sequential scan: I/O on the scanned window + per-row CPU."""
        io = (table_bytes * scan_fraction) / self.params.scan_bandwidth
        cpu = output_rows * self.params.cpu_per_row
        return io + cpu

    # -- joins -----------------------------------------------------------------
    def hash_join_cost(self, build_rows: float, probe_rows: float,
                       output_rows: float) -> float:
        return (build_rows * self.params.build_per_row
                + probe_rows * self.params.probe_per_row
                + output_rows * self.params.cpu_per_row)

    def hash_join_memory(self, build_bytes: float) -> float:
        return build_bytes * self.params.hash_memory_factor

    def nl_join_cost(self, outer_rows: float, inner_rows: float,
                     output_rows: float) -> float:
        return (outer_rows * inner_rows * self.params.cpu_per_row
                + output_rows * self.params.cpu_per_row)

    def memory_pressure_cost(self, workspace_bytes: float) -> float:
        """Penalty for workspace appetite (spill risk / grant waits).

        Charged as the time to write+read the workspace once at scan
        bandwidth — a standard way to make the optimizer prefer small
        hash builds without hard memory limits.
        """
        return 2.0 * workspace_bytes / self.params.scan_bandwidth

    # -- aggregation -------------------------------------------------------------
    def hash_agg_cost(self, input_rows: float, groups: float) -> float:
        return (input_rows * self.params.build_per_row
                + groups * self.params.cpu_per_row)

    def hash_agg_memory(self, groups: float, row_width: float) -> float:
        return groups * row_width * self.params.hash_memory_factor

    def stream_agg_cost(self, input_rows: float) -> float:
        return input_rows * self.params.cpu_per_row

    # -- sort ---------------------------------------------------------------------
    def sort_cost(self, rows: float) -> float:
        import math

        n = max(rows, 2.0)
        return n * math.log2(n) * self.params.sort_per_row

    def sort_memory(self, input_bytes: float) -> float:
        return input_bytes * self.params.sort_memory_factor

    # -- trivial -----------------------------------------------------------------
    def project_cost(self, rows: float) -> float:
        return rows * self.params.cpu_per_row * 0.25

    def filter_cost(self, rows: float) -> float:
        return rows * self.params.cpu_per_row * 0.5
