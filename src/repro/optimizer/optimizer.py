"""The staged optimization driver.

One :class:`OptimizationTask` optimizes one bound query.  Its
:meth:`~OptimizationTask.steps` generator emits :class:`OptStep`
increments — (work units, CPU seconds, newly allocated bytes) — so the
compilation pipeline can charge memory to the task's account and CPU to
the scheduler *between* optimizer steps.  That is the integration point
the paper's gateways need: blocking keyed to the bytes the task has
allocated so far, not to fixed pipeline stages.

The search itself is delegated to an
:class:`~repro.optimizer.pipeline.OptimizerPipeline` — support
pre-check, join enumeration, physical operator selection, plan
parameterization — selected by an
:class:`~repro.optimizer.spec.OptimizerSpec`.  The default pipeline
emulates SQL Server's dynamic optimization exactly as the pre-pipeline
monolith did: a greedy heuristic join order seeds the memo (stage 0 —
this plan is always available as the best-plan-so-far fallback);
exploration rounds then apply transformation rules under a work budget
that scales with the estimated cost of the query, with an
implementation (costing) pass at each stage boundary.

The task keeps the state every stage shares — the memo, derived
statistics, per-task caches, the running best plan — while the stage
strategies hold the swappable logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import SimulationError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
# budget knobs live with the memo enumerator now; re-exported for
# backwards compatibility with pre-pipeline imports
from repro.optimizer.enumeration import (BATCH_UNITS, MAX_BUDGET,  # noqa: F401
                                         MIN_BUDGET, STAGE_BOUNDARIES)
from repro.optimizer.memo import GroupExpression, GroupStats, Memo
from repro.optimizer.pipeline import OptimizerPipeline
from repro.optimizer.rules import DEFAULT_RULES, GroupRef, Rule, RuleContext
from repro.optimizer.spec import OptimizerSpec
from repro.plans import expressions as ex
from repro.plans import logical as lg
from repro.plans import physical as ph
from repro.sql.binder import BoundQuery
from repro.units import KiB

#: simulated bytes of parse/bind structures per referenced table
BASE_BYTES_PER_TABLE = 192 * KiB
#: CPU seconds per exploration work unit (on one paper-testbed CPU)
CPU_PER_UNIT = 0.011


@dataclass
class OptStep:
    """One increment of optimization progress."""

    phase: str
    work_units: int
    cpu_seconds: float
    alloc_bytes: int


@dataclass
class OptimizationResult:
    """The optimizer's output for one query."""

    plan: ph.PhysicalNode
    cost: float
    memo_bytes: int
    work_units: int
    stage: int
    #: True when this is a best-plan-so-far fallback rather than the
    #: fully-optimized plan (extension (b) of the paper)
    degraded: bool = False


class Optimizer:
    """Per-server optimizer factory (stateless across queries)."""

    def __init__(self, catalog: Catalog,
                 cost_model: Optional[CostModel] = None,
                 rules: Tuple[Rule, ...] = DEFAULT_RULES,
                 effort_multiplier: float = 1.0,
                 memory_multiplier: float = 1.0,
                 spec: Optional[OptimizerSpec] = None):
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)
        self.cost_model = cost_model or CostModel()
        self.rules = rules
        #: scales every budget; lets experiments ablate optimizer effort
        self.effort_multiplier = effort_multiplier
        #: scales simulated memo bytes; paired with a reduced effort it
        #: preserves the full-effort memory profile at lower CPU cost
        self.memory_multiplier = memory_multiplier
        #: the resolved stage strategies, shared by every task
        self.pipeline = OptimizerPipeline(spec)

    @property
    def spec(self) -> OptimizerSpec:
        return self.pipeline.spec

    def task(self, bound: BoundQuery) -> "OptimizationTask":
        """A fresh optimization task for one bound query."""
        return OptimizationTask(self, bound)

    def optimize(self, bound: BoundQuery) -> OptimizationResult:
        """Run a task to completion synchronously (tests, examples)."""
        task = self.task(bound)
        for _ in task.steps():
            pass
        result = task.result
        if result is None:
            raise SimulationError("optimization finished without a result")
        return result


class OptimizationTask:
    """State of one in-flight query optimization.

    The task owns everything the pipeline stages share — memo, derived
    statistics, caches, the running best plan — and exposes the small
    protocol the stages drive it through: :meth:`_insert` /
    :meth:`_make_step` for enumerators, :meth:`_implement` to hand a
    costing pass to the selection strategy.
    """

    def __init__(self, optimizer: Optimizer, bound: BoundQuery):
        self.opt = optimizer
        self.bound = bound
        self.memo = Memo()
        self.memo.base_bytes = BASE_BYTES_PER_TABLE * max(1, bound.table_count)
        self.memo.byte_multiplier = optimizer.memory_multiplier
        self._charged_bytes = 0
        self._work_units = 0
        self._stage = 0
        self._best: Optional[OptimizationResult] = None
        self.result: Optional[OptimizationResult] = None
        #: worst-case cost bound, published by bounding enumerators
        #: (``ues``); None under the exhaustive memo search
        self.cost_upper_bound: Optional[float] = None
        self._ctx = RuleContext(self.memo)
        self._alias_tables = dict(bound.aliases)
        #: join condition -> selectivity (conditions are immutable and
        #: shared across the memo, so this is hit constantly)
        self._join_sel_cache: Dict[Optional[ex.Expr], float] = {}
        #: id(gexpr) -> cached equi-join key split (stable per gexpr)
        self._join_split_cache: Dict[int, tuple] = {}
        #: id(gexpr) -> cached clustered-scan window (stable per gexpr)
        self._scan_window_cache: Dict[int, tuple] = {}
        #: gid -> (cost, plan), reset by each implementation pass
        self._plan_cache: Dict[int, Tuple[float, ph.PhysicalNode]] = {}

    # ------------------------------------------------------------------ API
    def steps(self) -> Iterator[OptStep]:
        """The incremental search generator (see module docstring)."""
        pipeline = self.opt.pipeline
        pipeline.precheck.check(self.bound)
        yield from pipeline.enumerator.steps(self)
        self.result = pipeline.parameterization.finalize(self)
        return

    def has_best_plan(self) -> bool:
        """Cheap probe for :meth:`best_plan_so_far` (no construction)."""
        return self._best is not None

    def best_plan_so_far(self) -> Optional[OptimizationResult]:
        """The best complete plan found so far, flagged as degraded.

        This is the paper's extension (b): under memory pressure the
        server returns "the best plan from the set of already explored
        plans instead of simply returning out-of-memory errors."
        """
        if self._best is None:
            return None
        best = self._best
        return OptimizationResult(
            plan=best.plan, cost=best.cost, memo_bytes=self.memo.bytes_used,
            work_units=self._work_units, stage=best.stage, degraded=True)

    @property
    def bytes_used(self) -> int:
        return self.memo.bytes_used

    # ------------------------------------------------------ stage protocol
    def _make_step(self, phase: str, units: int) -> OptStep:
        delta = self.memo.bytes_used - self._charged_bytes
        self._charged_bytes = self.memo.bytes_used
        # CPU per unit is scaled inversely with effort so a low-effort
        # search models the same optimization *time* with fewer steps
        cpu = units * CPU_PER_UNIT / self.opt.effort_multiplier
        return OptStep(phase=phase, work_units=units,
                       cpu_seconds=cpu, alloc_bytes=max(0, delta))

    def _implement(self, root_gid: int, stage: int) -> None:
        """Hand one implementation pass to the selection strategy."""
        self.opt.pipeline.selection.implement(self, root_gid, stage)

    def _insert(self, tree: lg.LogicalNode,
                target_group: Optional[int] = None,
                created: Optional[List[GroupExpression]] = None) -> int:
        gid = self._insert_tree(tree, target_group, created)
        self._ensure_stats(gid)
        return gid

    def _insert_tree(self, node: lg.LogicalNode,
                     target_group: Optional[int],
                     created: Optional[List[GroupExpression]] = None) -> int:
        if isinstance(node, GroupRef):
            return node.group
        child_ids = tuple([self._insert_tree(child, None, created)
                           for child in node.children])
        gexpr, was_created = self.memo.insert_expression(
            node, child_ids, target_group)
        if was_created and created is not None:
            created.append(gexpr)
        # stats for intermediate groups are needed by rule application
        self._ensure_stats(gexpr.group_id)
        return gexpr.group_id

    # -------------------------------------------------------------- statistics
    def _ensure_stats(self, gid: int) -> GroupStats:
        group = self.memo.groups[gid]
        stats = group.stats
        if stats is not None:
            return stats
        gexpr = group.expressions[0]
        child_stats = [self._ensure_stats(c) for c in gexpr.children]
        group.stats = self._derive_stats(gexpr.node, child_stats)
        return group.stats

    def _derive_stats(self, node: lg.LogicalNode,
                      child_stats: List[GroupStats]) -> GroupStats:
        est = self.opt.estimator
        if isinstance(node, lg.LogicalGet):
            rows = est.table_rows(node.table)
            sel = est.local_selectivity(node.table, node.predicate)
            return GroupStats(rows=max(1.0, rows * sel),
                              width=est.table_width(node.table),
                              aliases=frozenset({node.alias}))
        if isinstance(node, lg.LogicalJoin):
            left, right = child_stats
            sel = self._join_sel_cache.get(node.condition)
            if sel is None:
                sel = est.join_selectivity(node.condition,
                                           self._alias_tables)
                self._join_sel_cache[node.condition] = sel
            rows = max(1.0, left.rows * right.rows * sel)
            return GroupStats(rows=rows, width=left.width + right.width,
                              aliases=left.aliases | right.aliases)
        if isinstance(node, lg.LogicalFilter):
            (child,) = child_stats
            sel = 1.0
            for conjunct in ex.conjuncts(node.predicate):
                sel *= 0.1
            return GroupStats(rows=max(1.0, child.rows * sel),
                              width=child.width, aliases=child.aliases)
        if isinstance(node, lg.LogicalAggregate):
            (child,) = child_stats
            groups = est.group_count(node.keys, self._alias_tables,
                                     child.rows)
            width = 8.0 * (len(node.keys) + len(node.aggregates)) + 10.0
            return GroupStats(rows=groups, width=width,
                              aliases=child.aliases)
        if isinstance(node, lg.LogicalProject):
            (child,) = child_stats
            width = 8.0 * max(1, len(node.exprs))
            return GroupStats(rows=child.rows, width=width,
                              aliases=child.aliases)
        if isinstance(node, lg.LogicalSort):
            (child,) = child_stats
            return GroupStats(rows=child.rows, width=child.width,
                              aliases=child.aliases)
        raise SimulationError(f"no stats derivation for {node!r}")
