"""The staged optimization driver.

One :class:`OptimizationTask` optimizes one bound query.  Its
:meth:`~OptimizationTask.steps` generator emits :class:`OptStep`
increments — (work units, CPU seconds, newly allocated bytes) — so the
compilation pipeline can charge memory to the task's account and CPU to
the scheduler *between* optimizer steps.  That is the integration point
the paper's gateways need: blocking keyed to the bytes the task has
allocated so far, not to fixed pipeline stages.

Search is staged, emulating SQL Server's dynamic optimization: a greedy
heuristic join order seeds the memo (stage 0 — this plan is always
available as the best-plan-so-far fallback); exploration rounds then
apply transformation rules under a work budget that scales with the
estimated cost of the query, with an implementation (costing) pass at
each stage boundary.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import SimulationError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.memo import Group, GroupExpression, GroupStats, Memo
from repro.optimizer.rules import DEFAULT_RULES, GroupRef, Rule, RuleContext
from repro.plans import expressions as ex
from repro.plans import logical as lg
from repro.plans import physical as ph
from repro.sql.binder import BoundQuery
from repro.units import KiB, MiB

#: simulated bytes of parse/bind structures per referenced table
BASE_BYTES_PER_TABLE = 192 * KiB
#: CPU seconds per exploration work unit (on one paper-testbed CPU)
CPU_PER_UNIT = 0.011
#: exploration units per steps() yield
BATCH_UNITS = 50
#: budget clamp (units)
MIN_BUDGET = 30
MAX_BUDGET = 3000
#: fraction of the budget spent before the first re-costing pass
STAGE_BOUNDARIES = (0.3, 1.0)


@dataclass
class OptStep:
    """One increment of optimization progress."""

    phase: str
    work_units: int
    cpu_seconds: float
    alloc_bytes: int


@dataclass
class OptimizationResult:
    """The optimizer's output for one query."""

    plan: ph.PhysicalNode
    cost: float
    memo_bytes: int
    work_units: int
    stage: int
    #: True when this is a best-plan-so-far fallback rather than the
    #: fully-optimized plan (extension (b) of the paper)
    degraded: bool = False


class Optimizer:
    """Per-server optimizer factory (stateless across queries)."""

    def __init__(self, catalog: Catalog,
                 cost_model: Optional[CostModel] = None,
                 rules: Tuple[Rule, ...] = DEFAULT_RULES,
                 effort_multiplier: float = 1.0,
                 memory_multiplier: float = 1.0):
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)
        self.cost_model = cost_model or CostModel()
        self.rules = rules
        #: scales every budget; lets experiments ablate optimizer effort
        self.effort_multiplier = effort_multiplier
        #: scales simulated memo bytes; paired with a reduced effort it
        #: preserves the full-effort memory profile at lower CPU cost
        self.memory_multiplier = memory_multiplier

    def task(self, bound: BoundQuery) -> "OptimizationTask":
        """A fresh optimization task for one bound query."""
        return OptimizationTask(self, bound)

    def optimize(self, bound: BoundQuery) -> OptimizationResult:
        """Run a task to completion synchronously (tests, examples)."""
        task = self.task(bound)
        for _ in task.steps():
            pass
        result = task.result
        if result is None:
            raise SimulationError("optimization finished without a result")
        return result


class OptimizationTask:
    """State of one in-flight query optimization."""

    def __init__(self, optimizer: Optimizer, bound: BoundQuery):
        self.opt = optimizer
        self.bound = bound
        self.memo = Memo()
        self.memo.base_bytes = BASE_BYTES_PER_TABLE * max(1, bound.table_count)
        self.memo.byte_multiplier = optimizer.memory_multiplier
        self._charged_bytes = 0
        self._work_units = 0
        self._stage = 0
        self._best: Optional[OptimizationResult] = None
        self.result: Optional[OptimizationResult] = None
        self._ctx = RuleContext(self.memo)
        self._alias_tables = dict(bound.aliases)
        #: join condition -> selectivity (conditions are immutable and
        #: shared across the memo, so this is hit constantly)
        self._join_sel_cache: Dict[Optional[ex.Expr], float] = {}
        #: id(gexpr) -> cached equi-join key split (stable per gexpr)
        self._join_split_cache: Dict[int, tuple] = {}
        #: id(gexpr) -> cached clustered-scan window (stable per gexpr)
        self._scan_window_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------ API
    def steps(self) -> Iterator[OptStep]:
        """The incremental search generator (see module docstring)."""
        # -- stage 0: the syntactic (FROM-order) left-deep tree.  This
        # is the optimizer's always-available fallback plan; exploration
        # then reorders joins from it.
        root_gid = self._insert(self.bound.root)
        self._work_units += self.bound.table_count
        yield self._make_step("stage0", self.bound.table_count)

        self._implement_pass(root_gid, stage=0)
        self._work_units += self.memo.group_count
        yield self._make_step("implement", self.memo.group_count)

        assert self._best is not None
        budget = self._budget(self._best.cost)

        # -- exploration stages --------------------------------------------
        frontier: deque = deque()
        for gexpr in self.memo.expressions():
            for rule in self.opt.rules:
                frontier.append((gexpr, rule))
        spent = 0
        for boundary_index, boundary in enumerate(STAGE_BOUNDARIES, start=1):
            limit = int(budget * boundary)
            while frontier and spent < limit:
                batch = min(BATCH_UNITS, limit - spent)
                done = self._explore_batch(frontier, batch)
                if done == 0:
                    break
                spent += done
                self._work_units += done
                yield self._make_step("explore", done)
            self._implement_pass(root_gid, stage=boundary_index)
            self._work_units += self.memo.group_count
            yield self._make_step("implement", self.memo.group_count)
            if not frontier:
                break

        assert self._best is not None
        self.result = self._best
        return

    def has_best_plan(self) -> bool:
        """Cheap probe for :meth:`best_plan_so_far` (no construction)."""
        return self._best is not None

    def best_plan_so_far(self) -> Optional[OptimizationResult]:
        """The best complete plan found so far, flagged as degraded.

        This is the paper's extension (b): under memory pressure the
        server returns "the best plan from the set of already explored
        plans instead of simply returning out-of-memory errors."
        """
        if self._best is None:
            return None
        best = self._best
        return OptimizationResult(
            plan=best.plan, cost=best.cost, memo_bytes=self.memo.bytes_used,
            work_units=self._work_units, stage=best.stage, degraded=True)

    @property
    def bytes_used(self) -> int:
        return self.memo.bytes_used

    # ------------------------------------------------------- search internals
    def _make_step(self, phase: str, units: int) -> OptStep:
        delta = self.memo.bytes_used - self._charged_bytes
        self._charged_bytes = self.memo.bytes_used
        # CPU per unit is scaled inversely with effort so a low-effort
        # search models the same optimization *time* with fewer steps
        cpu = units * CPU_PER_UNIT / self.opt.effort_multiplier
        return OptStep(phase=phase, work_units=units,
                       cpu_seconds=cpu, alloc_bytes=max(0, delta))

    def _budget(self, estimated_cost: float) -> int:
        """Dynamic optimization: effort scales with estimated cost."""
        njoins = self.bound.join_count
        if njoins == 0:
            return MIN_BUDGET
        units = int(estimated_cost * 8.0 * (1.0 + njoins / 4.0)
                    * self.opt.effort_multiplier)
        return max(MIN_BUDGET, min(MAX_BUDGET, units))

    def _explore_batch(self, frontier: deque, max_units: int) -> int:
        """Apply up to ``max_units`` (expression, rule) attempts."""
        done = 0
        while frontier and done < max_units:
            gexpr, rule = frontier.popleft()
            done += 1
            if rule.name in gexpr.applied_rules:
                continue
            gexpr.applied_rules.add(rule.name)
            if not rule.matches(gexpr, self._ctx):
                continue
            for tree in rule.apply(gexpr, self._ctx):
                created: List[GroupExpression] = []
                self._insert(tree, target_group=gexpr.group_id,
                             created=created)
                for new_gexpr in created:
                    if rule.name == "join_commute":
                        # a commuted join must not commute straight back
                        new_gexpr.applied_rules.add("join_commute")
                    for r in self.opt.rules:
                        frontier.append((new_gexpr, r))
        return done

    def _insert(self, tree: lg.LogicalNode,
                target_group: Optional[int] = None,
                created: Optional[List[GroupExpression]] = None) -> int:
        gid = self._insert_tree(tree, target_group, created)
        self._ensure_stats(gid)
        return gid

    def _insert_tree(self, node: lg.LogicalNode,
                     target_group: Optional[int],
                     created: Optional[List[GroupExpression]] = None) -> int:
        if isinstance(node, GroupRef):
            return node.group
        child_ids = tuple([self._insert_tree(child, None, created)
                           for child in node.children])
        gexpr, was_created = self.memo.insert_expression(
            node, child_ids, target_group)
        if was_created and created is not None:
            created.append(gexpr)
        # stats for intermediate groups are needed by rule application
        self._ensure_stats(gexpr.group_id)
        return gexpr.group_id

    # -------------------------------------------------------------- statistics
    def _ensure_stats(self, gid: int) -> GroupStats:
        group = self.memo.groups[gid]
        stats = group.stats
        if stats is not None:
            return stats
        gexpr = group.expressions[0]
        child_stats = [self._ensure_stats(c) for c in gexpr.children]
        group.stats = self._derive_stats(gexpr.node, child_stats)
        return group.stats

    def _derive_stats(self, node: lg.LogicalNode,
                      child_stats: List[GroupStats]) -> GroupStats:
        est = self.opt.estimator
        if isinstance(node, lg.LogicalGet):
            rows = est.table_rows(node.table)
            sel = est.local_selectivity(node.table, node.predicate)
            return GroupStats(rows=max(1.0, rows * sel),
                              width=est.table_width(node.table),
                              aliases=frozenset({node.alias}))
        if isinstance(node, lg.LogicalJoin):
            left, right = child_stats
            sel = self._join_sel_cache.get(node.condition)
            if sel is None:
                sel = est.join_selectivity(node.condition,
                                           self._alias_tables)
                self._join_sel_cache[node.condition] = sel
            rows = max(1.0, left.rows * right.rows * sel)
            return GroupStats(rows=rows, width=left.width + right.width,
                              aliases=left.aliases | right.aliases)
        if isinstance(node, lg.LogicalFilter):
            (child,) = child_stats
            sel = 1.0
            for conjunct in ex.conjuncts(node.predicate):
                sel *= 0.1
            return GroupStats(rows=max(1.0, child.rows * sel),
                              width=child.width, aliases=child.aliases)
        if isinstance(node, lg.LogicalAggregate):
            (child,) = child_stats
            groups = est.group_count(node.keys, self._alias_tables,
                                     child.rows)
            width = 8.0 * (len(node.keys) + len(node.aggregates)) + 10.0
            return GroupStats(rows=groups, width=width,
                              aliases=child.aliases)
        if isinstance(node, lg.LogicalProject):
            (child,) = child_stats
            width = 8.0 * max(1, len(node.exprs))
            return GroupStats(rows=child.rows, width=width,
                              aliases=child.aliases)
        if isinstance(node, lg.LogicalSort):
            (child,) = child_stats
            return GroupStats(rows=child.rows, width=child.width,
                              aliases=child.aliases)
        raise SimulationError(f"no stats derivation for {node!r}")

    # ---------------------------------------------------------- implementation
    def _implement_pass(self, root_gid: int, stage: int) -> None:
        """(Re-)cost the memo bottom-up and record the best full plan."""
        for group in self.memo.groups:
            group.best_cost = None
        self._plan_cache: Dict[int, Tuple[float, ph.PhysicalNode]] = {}
        cost, plan = self._best_plan(root_gid, set())
        if plan is None:
            raise SimulationError("no physical plan produced")
        result = OptimizationResult(
            plan=plan, cost=cost, memo_bytes=self.memo.bytes_used,
            work_units=self._work_units, stage=stage)
        if self._best is None or cost <= self._best.cost:
            self._best = result
        else:
            # keep the better previous plan but refresh bookkeeping
            self._best = OptimizationResult(
                plan=self._best.plan, cost=self._best.cost,
                memo_bytes=self.memo.bytes_used,
                work_units=self._work_units, stage=stage)

    def _best_plan(self, gid: int,
                   visiting: set
                   ) -> Tuple[float, Optional[ph.PhysicalNode]]:
        # ``visiting`` is one mutable set shared down the recursion
        # (add/discard instead of building a frozenset per group)
        cached = self._plan_cache.get(gid)
        if cached is not None:
            return cached
        if gid in visiting:
            return math.inf, None
        group = self.memo.group(gid)
        visiting.add(gid)
        best_cost = math.inf
        best_build = None
        try:
            for gexpr in group.expressions:
                for cost, build in self._implement_gexpr(gexpr, visiting):
                    if cost < best_cost:
                        best_cost = cost
                        best_build = build
        finally:
            visiting.discard(gid)
        if best_build is None:
            return math.inf, None
        # candidates are costed as scalars; only the group winner is
        # materialized into physical nodes (losers were ~2/3 of all
        # node construction across the three implementation passes)
        best = (best_cost, best_build())
        self._plan_cache[gid] = best
        group.best_cost = best_cost
        return best

    def _implement_gexpr(self, gexpr: GroupExpression,
                         visiting: set) -> List[tuple]:
        """Candidate implementations as ``(cost, build)`` pairs.

        ``build`` is a zero-argument callable producing the physical
        node; candidate order is stable so cost ties keep resolving to
        the first candidate, exactly as when nodes were built eagerly.
        """
        node = gexpr.node
        stats = self.memo.group(gexpr.group_id).stats
        assert stats is not None
        cm = self.opt.cost_model
        est = self.opt.estimator
        out: List[tuple] = []

        if isinstance(node, lg.LogicalGet):
            window = self._scan_window_cache.get(id(gexpr))
            if window is None:
                window = est.clustered_scan_window(
                    node.table, node.predicate)
                self._scan_window_cache[id(gexpr)] = window
            offset, length = window
            table = self.opt.catalog.table(node.table)
            cost = cm.scan_cost(table.nbytes, length, stats.rows)

            def build_scan(cost=cost, offset=offset, length=length):
                scan = ph.TableScan(node.alias, node.table, node.predicate)
                scan.scan_fraction = length
                scan.scan_offset = offset
                scan.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes, memory=0.0,
                    cost=cost)
                return scan

            out.append((cost, build_scan))
            return out

        if isinstance(node, lg.LogicalJoin):
            lcost, lplan = self._best_plan(gexpr.children[0], visiting)
            rcost, rplan = self._best_plan(gexpr.children[1], visiting)
            if lplan is None or rplan is None:
                return out
            lstats = self.memo.group(gexpr.children[0]).stats
            rstats = self.memo.group(gexpr.children[1]).stats
            split = self._join_split_cache.get(id(gexpr))
            if split is None:
                split = _split_join_keys(
                    node.condition, lstats.aliases, rstats.aliases)
                self._join_split_cache[id(gexpr)] = split
            build_keys, probe_keys, residual = split
            if build_keys:
                # hash join, both build orders; the memory term biases
                # the choice toward building on the smaller input
                for build_stats, probe_stats, build_plan, probe_plan, \
                        bkeys, pkeys in (
                            (lstats, rstats, lplan, rplan,
                             build_keys, probe_keys),
                            (rstats, lstats, rplan, lplan,
                             probe_keys, build_keys)):
                    memory = cm.hash_join_memory(build_stats.bytes)
                    cost = (lcost + rcost
                            + cm.hash_join_cost(build_stats.rows,
                                                probe_stats.rows,
                                                stats.rows)
                            + cm.memory_pressure_cost(memory))

                    def build_hj(cost=cost, memory=memory,
                                 build_plan=build_plan,
                                 probe_plan=probe_plan,
                                 bkeys=bkeys, pkeys=pkeys):
                        hj = ph.HashJoin(build_plan, probe_plan,
                                         bkeys, pkeys, residual)
                        hj.estimates = ph.Estimates(
                            rows=stats.rows, bytes=stats.bytes,
                            memory=memory, cost=cost)
                        return hj

                    out.append((cost, build_hj))
            else:
                cost = (lcost + rcost + cm.nl_join_cost(
                    lstats.rows, rstats.rows, stats.rows))

                def build_nl(cost=cost):
                    nl = ph.NestedLoopsJoin(lplan, rplan, node.condition)
                    nl.estimates = ph.Estimates(
                        rows=stats.rows, bytes=stats.bytes,
                        memory=min(lstats.bytes, 64 * MiB), cost=cost)
                    return nl

                out.append((cost, build_nl))
            return out

        if isinstance(node, lg.LogicalFilter):
            ccost, cplan = self._best_plan(gexpr.children[0], visiting)
            if cplan is None:
                return out
            cstats = self.memo.group(gexpr.children[0]).stats
            cost = ccost + cm.filter_cost(cstats.rows)

            def build_filter(cost=cost):
                flt = ph.Filter(cplan, node.predicate)
                flt.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes, memory=0.0,
                    cost=cost)
                return flt

            out.append((cost, build_filter))
            return out

        if isinstance(node, lg.LogicalAggregate):
            ccost, cplan = self._best_plan(gexpr.children[0], visiting)
            if cplan is None:
                return out
            cstats = self.memo.group(gexpr.children[0]).stats
            # hash aggregate
            cost = ccost + cm.hash_agg_cost(cstats.rows, stats.rows)

            def build_hash_agg(cost=cost):
                ha = ph.HashAggregate(cplan, node.keys, node.aggregates)
                ha.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes,
                    memory=cm.hash_agg_memory(stats.rows, stats.width),
                    cost=cost)
                return ha

            out.append((cost, build_hash_agg))
            # sort + stream aggregate
            if node.keys:
                sort_cost = cm.sort_cost(cstats.rows)
                total = ccost + sort_cost + cm.stream_agg_cost(cstats.rows)

                def build_stream_agg(total=total, sort_cost=sort_cost):
                    sort = ph.Sort(cplan, node.keys)
                    sort.estimates = ph.Estimates(
                        rows=cstats.rows, bytes=cstats.bytes,
                        memory=cm.sort_memory(cstats.bytes),
                        cost=ccost + sort_cost)
                    sa = ph.StreamAggregate(sort, node.keys,
                                            node.aggregates)
                    sa.estimates = ph.Estimates(
                        rows=stats.rows, bytes=stats.bytes, memory=0.0,
                        cost=total)
                    return sa

                out.append((total, build_stream_agg))
            return out

        if isinstance(node, lg.LogicalProject):
            ccost, cplan = self._best_plan(gexpr.children[0], visiting)
            if cplan is None:
                return out
            cstats = self.memo.group(gexpr.children[0]).stats
            cost = ccost + cm.project_cost(cstats.rows)

            def build_project(cost=cost):
                proj = ph.Project(cplan, node.exprs)
                proj.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes, memory=0.0,
                    cost=cost)
                return proj

            out.append((cost, build_project))
            return out

        if isinstance(node, lg.LogicalSort):
            ccost, cplan = self._best_plan(gexpr.children[0], visiting)
            if cplan is None:
                return out
            cstats = self.memo.group(gexpr.children[0]).stats
            cost = ccost + cm.sort_cost(cstats.rows)

            def build_sort(cost=cost):
                sort = ph.Sort(cplan, node.keys, node.descending)
                sort.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes,
                    memory=cm.sort_memory(cstats.bytes), cost=cost)
                return sort

            out.append((cost, build_sort))
            return out

        raise SimulationError(f"no implementation for {node!r}")


# -------------------------------------------------------------- tree helpers
def _split_join_keys(condition: Optional[ex.Expr],
                     left_aliases: FrozenSet[str],
                     right_aliases: FrozenSet[str]):
    """Separate equi-join keys (build/probe) from residual predicates."""
    build_keys: List[ex.ColumnRef] = []
    probe_keys: List[ex.ColumnRef] = []
    residual: List[ex.Expr] = []
    for conjunct in ex.conjuncts(condition):
        if (isinstance(conjunct, ex.Comparison) and conjunct.is_equi_join):
            lref = conjunct.left
            rref = conjunct.right
            assert isinstance(lref, ex.ColumnRef)
            assert isinstance(rref, ex.ColumnRef)
            if lref.alias in left_aliases and rref.alias in right_aliases:
                build_keys.append(lref)
                probe_keys.append(rref)
                continue
            if rref.alias in left_aliases and lref.alias in right_aliases:
                build_keys.append(rref)
                probe_keys.append(lref)
                continue
        residual.append(conjunct)
    return (tuple(build_keys), tuple(probe_keys),
            ex.make_conjunction(residual))
