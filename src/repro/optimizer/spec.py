"""The declarative optimizer axis: which strategy runs each stage.

:class:`OptimizerSpec` rides on a
:class:`~repro.scenarios.spec.ScenarioSpec` (and on
:class:`~repro.experiments.runner.ExperimentConfig`) and names one
strategy per stage of the
:class:`~repro.optimizer.pipeline.OptimizerPipeline`:

    support pre-check -> join enumeration -> physical operator
    selection -> plan parameterization

``None`` (the default everywhere) means "the built-in pipeline" —
basic pre-check, memo enumeration, cost-based selection, estimate
pass-through — which is what keeps every pre-existing scenario
byte-identical.

The spec follows the :class:`~repro.admission.spec.AdmissionSpec`
contract: frozen, structurally comparable, JSON round-trippable, with
strict validation that rejects unknown fields and teaches the valid
choices.  This module imports only :mod:`repro.errors` so that
``repro.config`` and ``repro.scenarios.spec`` can depend on it without
pulling the whole optimizer package into their import graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Tuple

from repro.errors import ConfigurationError

#: support pre-check strategies (see ``repro.optimizer.precheck``)
PRECHECK_NAMES: Tuple[str, ...] = ("basic", "none")

#: join-enumeration strategies (see ``repro.optimizer.enumeration``)
ENUMERATOR_NAMES: Tuple[str, ...] = ("memo", "ues")

#: operator-selection strategies (see ``repro.optimizer.selection``)
SELECTION_NAMES: Tuple[str, ...] = ("cost", "heuristic")

#: plan-parameterization strategies
#: (see ``repro.optimizer.parameterization``)
PARAMETERIZATION_NAMES: Tuple[str, ...] = ("estimates", "padded")

#: stage field -> valid strategy names, in pipeline order
STAGE_CHOICES = {
    "precheck": PRECHECK_NAMES,
    "enumerator": ENUMERATOR_NAMES,
    "selection": SELECTION_NAMES,
    "parameterization": PARAMETERIZATION_NAMES,
}


@dataclass(frozen=True)
class OptimizerSpec:
    """One fully-described optimizer pipeline configuration.

    Each field names the strategy driving one stage; the defaults
    reproduce the pre-pipeline monolithic optimizer byte for byte:

    * ``precheck`` — ``basic`` walks the bound tree and rejects
      unsupported operators before any memory is charged; ``none``
      skips the walk (unsupported operators then fail mid-search).
    * ``enumerator`` — ``memo`` is the staged Cascades-style search
      (stage-0 syntactic plan, budgeted exploration rounds); ``ues``
      is a greedy upper-bound-driven left-deep reorder with no
      exploration (far less work, far smaller memo).
    * ``selection`` — ``cost`` costs every candidate implementation
      and keeps the cheapest; ``heuristic`` fixes the classic choices
      (hash-build on the smaller input, hash aggregation) without
      comparing alternatives.
    * ``parameterization`` — ``estimates`` passes the winning plan's
      estimates through unchanged; ``padded`` inflates per-operator
      memory estimates by 25% as a grant-safety margin.
    """

    precheck: str = "basic"
    enumerator: str = "memo"
    selection: str = "cost"
    parameterization: str = "estimates"

    def __post_init__(self):
        self._validate()

    def _validate(self) -> None:
        for stage, valid in STAGE_CHOICES.items():
            value = getattr(self, stage)
            if value not in valid:
                raise ConfigurationError(
                    f"unknown optimizer {stage} strategy {value!r}; "
                    f"valid {stage} strategies: {', '.join(valid)}")

    # ------------------------------------------------------------ API
    def to_dict(self) -> dict:
        """The JSON-ready document form (every stage named)."""
        return {"precheck": self.precheck,
                "enumerator": self.enumerator,
                "selection": self.selection,
                "parameterization": self.parameterization}

    @classmethod
    def from_dict(cls, doc: dict) -> "OptimizerSpec":
        """Parse an optimizer document, rejecting unknown stages."""
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"optimizer must be a JSON object, got "
                f"{type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown optimizer stage(s) {', '.join(unknown)}; "
                f"valid stages: {', '.join(f.name for f in fields(cls))}")
        return cls(**doc)
