"""Transformation rules.

Rules rewrite group expressions into equivalent alternatives inside the
memo.  Join commutativity and associativity together enumerate the
bushy join-order space; the search driver bounds how much of that space
is explored via its work budget, which is exactly the lever that makes
large-query optimization memory-hungry but boundable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.plans import expressions as ex
from repro.plans.logical import LogicalGet, LogicalJoin, LogicalNode
from repro.optimizer.memo import GroupExpression, Memo


@dataclass(frozen=True)
class GroupRef(LogicalNode):
    """Leaf placeholder pointing at an existing memo group."""

    group: int

    children = ()

    def payload(self) -> tuple:  # pragma: no cover - never stored directly
        return ("groupref", self.group)

    def with_children(self, children):  # pragma: no cover
        return self

    def aliases(self) -> FrozenSet[str]:  # pragma: no cover
        return frozenset()


class RuleContext:
    """What rules may ask about the memo: group alias sets."""

    def __init__(self, memo: Memo):
        self.memo = memo

    def group_aliases(self, group_id: int) -> FrozenSet[str]:
        stats = self.memo.group(group_id).stats
        return stats.aliases if stats is not None else frozenset()


class Rule:
    """Base transformation rule."""

    #: unique rule name, used for per-expression firing masks
    name = "rule"

    def matches(self, gexpr: GroupExpression, ctx: RuleContext) -> bool:
        raise NotImplementedError

    def apply(self, gexpr: GroupExpression,
              ctx: RuleContext) -> List[LogicalNode]:
        """Produce substitute trees (with GroupRef leaves) for the
        expression's group."""
        raise NotImplementedError


class JoinCommutativity(Rule):
    """Join(A, B) -> Join(B, A)."""

    name = "join_commute"

    def matches(self, gexpr: GroupExpression, ctx: RuleContext) -> bool:
        return isinstance(gexpr.node, LogicalJoin)

    def apply(self, gexpr: GroupExpression,
              ctx: RuleContext) -> List[LogicalNode]:
        node = gexpr.node
        assert isinstance(node, LogicalJoin)
        left, right = gexpr.children
        return [LogicalJoin(GroupRef(right), GroupRef(left), node.condition)]


class JoinAssociativity(Rule):
    """Join(Join(A, B), C) -> Join(A, Join(B, C)).

    Conditions from both joins are pooled and re-split: conjuncts whose
    aliases fall entirely within B∪C move into the new inner join, the
    rest stay on the new outer join.  Conjuncts referencing A together
    with B or C must stay outer, which is what keeps the rewrite
    semantics-preserving.
    """

    name = "join_assoc"

    def matches(self, gexpr: GroupExpression, ctx: RuleContext) -> bool:
        if not isinstance(gexpr.node, LogicalJoin):
            return False
        left_group = ctx.memo.group(gexpr.children[0])
        return any(isinstance(child.node, LogicalJoin)
                   for child in left_group.expressions)

    def apply(self, gexpr: GroupExpression,
              ctx: RuleContext) -> List[LogicalNode]:
        node = gexpr.node
        assert isinstance(node, LogicalJoin)
        out: List[LogicalNode] = []
        left_group = ctx.memo.group(gexpr.children[0])
        right_id = gexpr.children[1]
        c_aliases = ctx.group_aliases(right_id)
        outer_conjuncts = ex.conjuncts(node.condition)
        for inner in list(left_group.expressions):
            if not isinstance(inner.node, LogicalJoin):
                continue
            a_id, b_id = inner.children
            b_aliases = ctx.group_aliases(b_id)
            pool = outer_conjuncts + ex.conjuncts(inner.node.condition)
            inner_scope = b_aliases | c_aliases
            inner_conds = [p for p in pool
                           if ex.cached_aliases(p) <= inner_scope]
            outer_conds = [p for p in pool
                           if not ex.cached_aliases(p) <= inner_scope]
            # Refuse rewrites that would manufacture a cross product on
            # the inner side unless the original was already one.
            if not inner_conds and pool:
                continue
            new_inner = LogicalJoin(GroupRef(b_id), GroupRef(right_id),
                                    ex.make_conjunction(inner_conds))
            out.append(LogicalJoin(GroupRef(a_id), new_inner,
                                   ex.make_conjunction(outer_conds)))
        return out


#: the default transformation rule set
DEFAULT_RULES: Tuple[Rule, ...] = (JoinCommutativity(), JoinAssociativity())
