"""Join enumeration — pipeline stage 2.

An enumerator owns the search loop: it seeds the memo, yields
:class:`~repro.optimizer.optimizer.OptStep` increments so the
compilation pipeline can charge memory and CPU between steps, and asks
the selection stage for an implementation pass at each of its stage
boundaries.

``MemoEnumerator`` (``memo``) is the pre-pipeline staged search moved
here verbatim: a syntactic stage-0 plan (always available as the
best-plan-so-far fallback), then budgeted exploration rounds applying
transformation rules.  ``UesEnumerator`` (``ues``) is a greedy
upper-bound-driven reorder in the spirit of UES: it orders the join
left-deep by minimizing upper-bound intermediate cardinalities, does a
single implementation pass, and never explores — a fraction of the
work units and memo bytes, at the price of trusting the bounds.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.optimizer.memo import GroupExpression
from repro.optimizer.selection import _split_join_keys
from repro.plans import expressions as ex
from repro.plans import logical as lg

#: exploration units per steps() yield
BATCH_UNITS = 50
#: budget clamp (units)
MIN_BUDGET = 30
MAX_BUDGET = 3000
#: fraction of the budget spent before the first re-costing pass
STAGE_BOUNDARIES = (0.3, 1.0)


class MemoEnumerator:
    """Staged Cascades-style search under a cost-scaled work budget."""

    __slots__ = ()

    name = "memo"

    def steps(self, task):
        """The incremental search generator (see module docstring)."""
        # -- stage 0: the syntactic (FROM-order) left-deep tree.  This
        # is the optimizer's always-available fallback plan; exploration
        # then reorders joins from it.
        root_gid = task._insert(task.bound.root)
        task._work_units += task.bound.table_count
        yield task._make_step("stage0", task.bound.table_count)

        task._implement(root_gid, stage=0)
        task._work_units += task.memo.group_count
        yield task._make_step("implement", task.memo.group_count)

        assert task._best is not None
        budget = self._budget(task, task._best.cost)

        # -- exploration stages ----------------------------------------
        frontier: deque = deque()
        for gexpr in task.memo.expressions():
            for rule in task.opt.rules:
                frontier.append((gexpr, rule))
        spent = 0
        for boundary_index, boundary in enumerate(STAGE_BOUNDARIES,
                                                  start=1):
            limit = int(budget * boundary)
            while frontier and spent < limit:
                batch = min(BATCH_UNITS, limit - spent)
                done = self._explore_batch(task, frontier, batch)
                if done == 0:
                    break
                spent += done
                task._work_units += done
                yield task._make_step("explore", done)
            task._implement(root_gid, stage=boundary_index)
            task._work_units += task.memo.group_count
            yield task._make_step("implement", task.memo.group_count)
            if not frontier:
                break

    def _budget(self, task, estimated_cost: float) -> int:
        """Dynamic optimization: effort scales with estimated cost."""
        njoins = task.bound.join_count
        if njoins == 0:
            return MIN_BUDGET
        units = int(estimated_cost * 8.0 * (1.0 + njoins / 4.0)
                    * task.opt.effort_multiplier)
        return max(MIN_BUDGET, min(MAX_BUDGET, units))

    def _explore_batch(self, task, frontier: deque,
                       max_units: int) -> int:
        """Apply up to ``max_units`` (expression, rule) attempts."""
        done = 0
        while frontier and done < max_units:
            gexpr, rule = frontier.popleft()
            done += 1
            if rule.name in gexpr.applied_rules:
                continue
            gexpr.applied_rules.add(rule.name)
            if not rule.matches(gexpr, task._ctx):
                continue
            for tree in rule.apply(gexpr, task._ctx):
                created: List[GroupExpression] = []
                task._insert(tree, target_group=gexpr.group_id,
                             created=created)
                for new_gexpr in created:
                    if rule.name == "join_commute":
                        # a commuted join must not commute straight back
                        new_gexpr.applied_rules.add("join_commute")
                    for r in task.opt.rules:
                        frontier.append((new_gexpr, r))
        return done


class UesEnumerator:
    """Greedy left-deep ordering by upper-bound cardinalities.

    No exploration rounds, no transformation rules: the join order is
    fixed up front by repeatedly attaching the relation that minimizes
    the upper-bound size of the next intermediate result (preferring
    predicate-connected relations; a cross product only when nothing
    connects).  One stage-0 insert, one implementation pass.

    The enumerator also publishes ``task.cost_upper_bound``: the cost
    of the *syntactic* plan priced with selectivity-free (worst-case)
    cardinalities and full scan windows.  Because every cost function
    is monotone in its row counts and the memo search always costs the
    syntactic tree in its own stage 0, this bound can never fall below
    the memo optimizer's final plan cost — the invariant the property
    suite pins.
    """

    __slots__ = ()

    name = "ues"

    def steps(self, task):
        task.cost_upper_bound = self._pessimistic(task,
                                                  task.bound.root)[0]
        root_gid = task._insert(self._reorder(task))
        task._work_units += task.bound.table_count
        yield task._make_step("stage0", task.bound.table_count)

        task._implement(root_gid, stage=0)
        task._work_units += task.memo.group_count
        yield task._make_step("implement", task.memo.group_count)

    # ------------------------------------------------------- reordering
    def _reorder(self, task) -> lg.LogicalNode:
        """The greedily reordered tree (the input tree when there is
        nothing to reorder or the join block has an unexpected shape)."""
        wrappers: List[lg.LogicalNode] = []
        node = task.bound.root
        while isinstance(node, (lg.LogicalProject, lg.LogicalSort,
                                lg.LogicalAggregate, lg.LogicalFilter)):
            wrappers.append(node)
            node = node.children[0]
        if not isinstance(node, lg.LogicalJoin):
            return task.bound.root

        # pool the join block: leaves in FROM order, conjuncts flat
        leaves: List[lg.LogicalGet] = []
        pool: List[ex.Expr] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, lg.LogicalJoin):
                pool.extend(ex.conjuncts(current.condition))
                stack.append(current.right)
                stack.append(current.left)
            elif isinstance(current, lg.LogicalGet):
                leaves.append(current)
            else:
                # joins over non-scan inputs: keep the bound order
                return task.bound.root
        if len(leaves) < 2:
            return task.bound.root

        est = task.opt.estimator
        bounds = {leaf.alias: max(1.0, est.table_rows(leaf.table))
                  for leaf in leaves}
        remaining = list(leaves)
        first = min(remaining, key=lambda leaf: bounds[leaf.alias])
        remaining.remove(first)
        joined = {first.alias}
        joined_bound = bounds[first.alias]
        root: lg.LogicalNode = first
        while remaining:
            best_leaf = None
            best_score = None
            best_conjuncts: Tuple[ex.Expr, ...] = ()
            for leaf in remaining:
                applicable = tuple(
                    p for p in pool
                    if p.referenced_aliases() <= joined | {leaf.alias}
                    and leaf.alias in p.referenced_aliases())
                score = joined_bound * bounds[leaf.alias]
                if applicable:
                    score *= est.join_selectivity(
                        ex.make_conjunction(applicable),
                        task._alias_tables)
                else:
                    # disconnected: rank cross products last
                    score *= 1e6
                if best_score is None or score < best_score:
                    best_leaf, best_score = leaf, score
                    best_conjuncts = applicable
            remaining.remove(best_leaf)
            for p in best_conjuncts:
                pool.remove(p)
            condition = ex.make_conjunction(best_conjuncts)
            root = lg.LogicalJoin(root, best_leaf, condition)
            joined.add(best_leaf.alias)
            joined_bound *= bounds[best_leaf.alias]
            if best_conjuncts:
                joined_bound *= est.join_selectivity(condition,
                                                     task._alias_tables)
            joined_bound = max(1.0, joined_bound)
        if pool:  # defensively keep any conjunct the walk left behind
            root = lg.LogicalFilter(root, ex.make_conjunction(pool))
        for wrapper in reversed(wrappers):
            root = wrapper.with_children((root,))
        return root

    # ------------------------------------------------------ upper bound
    def _pessimistic(self, task, node: lg.LogicalNode):
        """``(cost, rows, width, aliases)`` with worst-case rows.

        Selectivities are taken as 1.0 and scans as full windows, so
        each quantity dominates the estimate the memo search assigns
        the same syntactic operator.
        """
        est = task.opt.estimator
        cm = task.opt.cost_model
        if isinstance(node, lg.LogicalGet):
            rows = max(1.0, est.table_rows(node.table))
            width = est.table_width(node.table)
            table = task.opt.catalog.table(node.table)
            cost = cm.scan_cost(table.nbytes, 1.0, rows)
            return cost, rows, width, frozenset({node.alias})
        if isinstance(node, lg.LogicalJoin):
            lcost, lrows, lwidth, lal = self._pessimistic(task, node.left)
            rcost, rrows, rwidth, ral = self._pessimistic(task, node.right)
            rows = max(1.0, lrows * rrows)
            build_keys, _, _ = _split_join_keys(node.condition, lal, ral)
            if build_keys:
                memory = cm.hash_join_memory(lrows * lwidth)
                cost = (lcost + rcost
                        + cm.hash_join_cost(lrows, rrows, rows)
                        + cm.memory_pressure_cost(memory))
            else:
                cost = lcost + rcost + cm.nl_join_cost(lrows, rrows, rows)
            return cost, rows, lwidth + rwidth, lal | ral
        if isinstance(node, lg.LogicalFilter):
            ccost, crows, cwidth, cal = self._pessimistic(task, node.child)
            return ccost + cm.filter_cost(crows), crows, cwidth, cal
        if isinstance(node, lg.LogicalAggregate):
            ccost, crows, cwidth, cal = self._pessimistic(task, node.child)
            width = 8.0 * (len(node.keys) + len(node.aggregates)) + 10.0
            return (ccost + cm.hash_agg_cost(crows, crows),
                    crows, width, cal)
        if isinstance(node, lg.LogicalProject):
            ccost, crows, cwidth, cal = self._pessimistic(task, node.child)
            width = 8.0 * max(1, len(node.exprs))
            return ccost + cm.project_cost(crows), crows, width, cal
        if isinstance(node, lg.LogicalSort):
            ccost, crows, cwidth, cal = self._pessimistic(task, node.child)
            return ccost + cm.sort_cost(crows), crows, cwidth, cal
        raise SimulationError(f"no upper bound for {node!r}")
