"""Support pre-check — pipeline stage 1.

A pre-check inspects the bound query *before* any memo memory is
charged and rejects shapes the later stages cannot handle.  It is the
pipeline's cheap guard: pure tree walk, no steps emitted, no simulated
allocation — which is what keeps the default pre-check byte-invisible
in artifacts.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.plans import logical as lg
from repro.sql.binder import BoundQuery

#: the logical operators the stat-derivation and implementation rules
#: understand; anything else would fail mid-search with memory already
#: charged to the task
SUPPORTED_NODES = (lg.LogicalGet, lg.LogicalJoin, lg.LogicalFilter,
                   lg.LogicalAggregate, lg.LogicalProject, lg.LogicalSort)


class BasicPreCheck:
    """Reject bound trees containing unsupported logical operators."""

    __slots__ = ()

    name = "basic"

    def check(self, bound: BoundQuery) -> None:
        stack = [bound.root]
        while stack:
            node = stack.pop()
            if not isinstance(node, SUPPORTED_NODES):
                raise SimulationError(
                    f"optimizer pre-check: unsupported logical "
                    f"operator {type(node).__name__}")
            stack.extend(node.children)


class NoPreCheck:
    """Skip the walk; unsupported operators fail during the search."""

    __slots__ = ()

    name = "none"

    def check(self, bound: BoundQuery) -> None:
        pass
