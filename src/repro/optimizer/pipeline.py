"""The four-stage optimizer pipeline.

In the style of PostBOUND's ``OptimizationPipeline``, an
:class:`OptimizerPipeline` binds one strategy to each stage:

    support pre-check -> join enumeration -> physical operator
    selection -> plan parameterization

Strategies are stateless singletons resolved by name from the
registries below; an :class:`~repro.optimizer.spec.OptimizerSpec`
(already validated against the same name tuples) selects them.  The
default pipeline — ``basic`` / ``memo`` / ``cost`` / ``estimates`` —
is pinned byte-identical to the pre-pipeline monolithic optimizer by
``tests/test_optimizer_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.optimizer.enumeration import MemoEnumerator, UesEnumerator
from repro.optimizer.parameterization import (EstimatesParameterization,
                                              PaddedParameterization)
from repro.optimizer.precheck import BasicPreCheck, NoPreCheck
from repro.optimizer.selection import CostBasedSelection, HeuristicSelection
from repro.optimizer.spec import OptimizerSpec

#: stage registries, keyed by the names ``OptimizerSpec`` validates
PRECHECKS = {"basic": BasicPreCheck, "none": NoPreCheck}
ENUMERATORS = {"memo": MemoEnumerator, "ues": UesEnumerator}
SELECTIONS = {"cost": CostBasedSelection, "heuristic": HeuristicSelection}
PARAMETERIZATIONS = {"estimates": EstimatesParameterization,
                     "padded": PaddedParameterization}

#: the byte-identical-to-the-monolith default
DEFAULT_SPEC = OptimizerSpec()


class OptimizerPipeline:
    """One resolved strategy per stage, shared across a server's tasks."""

    __slots__ = ("spec", "precheck", "enumerator", "selection",
                 "parameterization")

    def __init__(self, spec: Optional[OptimizerSpec] = None):
        self.spec = spec or DEFAULT_SPEC
        self.precheck = PRECHECKS[self.spec.precheck]()
        self.enumerator = ENUMERATORS[self.spec.enumerator]()
        self.selection = SELECTIONS[self.spec.selection]()
        self.parameterization = \
            PARAMETERIZATIONS[self.spec.parameterization]()
