"""Cardinality and selectivity estimation from catalog statistics.

Classic System-R style: histogram lookups for single-table predicates,
independence across conjuncts, ``1/max(ndv)`` for equi-joins with a
containment assumption, and product-capped group counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import grouping_ndv, join_ndv
from repro.plans import expressions as ex

#: selectivity guess for predicates the estimator cannot analyze
DEFAULT_SELECTIVITY = 0.1
#: selectivity guess for inequality comparisons (<>)
NEQ_SELECTIVITY = 0.9


class CardinalityEstimator:
    """Estimates row counts for logical subtrees."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- base tables ---------------------------------------------------------
    def table_rows(self, table: str) -> float:
        return float(self.catalog.table(table).row_count)

    def table_width(self, table: str) -> float:
        return float(self.catalog.table(table).row_width)

    # -- single-table predicates ----------------------------------------------
    def local_selectivity(self, table: str, predicate: Optional[ex.Expr]) -> float:
        """Selectivity of a (conjunctive) predicate over one table."""
        if predicate is None:
            return 1.0
        sel = 1.0
        for conjunct in ex.conjuncts(predicate):
            sel *= self._conjunct_selectivity(table, conjunct)
        return max(1e-9, min(1.0, sel))

    def _conjunct_selectivity(self, table: str, pred: ex.Expr) -> float:
        if isinstance(pred, ex.Comparison):
            return self._comparison_selectivity(table, pred)
        if isinstance(pred, ex.Between):
            return self._between_selectivity(table, pred)
        if isinstance(pred, ex.Or):
            sel = 1.0
            for child in pred.children:
                sel *= 1.0 - self._conjunct_selectivity(table, child)
            return 1.0 - sel
        if isinstance(pred, ex.And):
            sel = 1.0
            for child in pred.children:
                sel *= self._conjunct_selectivity(table, child)
            return sel
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, table: str, pred: ex.Comparison) -> float:
        column, literal = _split_column_literal(pred.left, pred.right)
        if column is None:
            return DEFAULT_SELECTIVITY
        stats = self._stats(table, column.column)
        if stats is None:
            return DEFAULT_SELECTIVITY
        value = literal.value
        if isinstance(value, str):
            # string domains are estimated with the uniform NDV guess
            return (1.0 / stats.ndv if pred.op == "="
                    else DEFAULT_SELECTIVITY)
        op = pred.op
        if op == "=":
            return stats.selectivity_eq_const(float(value))
        if op == "<>":
            return max(0.0, 1.0 - stats.selectivity_eq_const(float(value)))
        if op in ("<", "<="):
            return stats.selectivity_range(None, float(value))
        if op in (">", ">="):
            return stats.selectivity_range(float(value), None)
        return DEFAULT_SELECTIVITY

    def _between_selectivity(self, table: str, pred: ex.Between) -> float:
        if not isinstance(pred.expr, ex.ColumnRef):
            return DEFAULT_SELECTIVITY
        if not (isinstance(pred.low, ex.Literal)
                and isinstance(pred.high, ex.Literal)):
            return DEFAULT_SELECTIVITY
        stats = self._stats(table, pred.expr.column)
        if stats is None or isinstance(pred.low.value, str):
            return DEFAULT_SELECTIVITY
        return stats.selectivity_range(float(pred.low.value),
                                       float(pred.high.value))

    # -- joins -----------------------------------------------------------------
    def join_selectivity(self, condition: Optional[ex.Expr],
                         alias_tables: Dict[str, str]) -> float:
        """Selectivity of a join condition relative to the cross product."""
        if condition is None:
            return 1.0
        sel = 1.0
        for conjunct in ex.conjuncts(condition):
            if isinstance(conjunct, ex.Comparison) and conjunct.is_equi_join:
                left = conjunct.left
                right = conjunct.right
                assert isinstance(left, ex.ColumnRef)
                assert isinstance(right, ex.ColumnRef)
                lndv = self._column_ndv(alias_tables, left)
                rndv = self._column_ndv(alias_tables, right)
                sel *= 1.0 / max(lndv, rndv, 1.0)
            else:
                sel *= DEFAULT_SELECTIVITY
        return max(1e-12, min(1.0, sel))

    def _column_ndv(self, alias_tables: Dict[str, str],
                    ref: ex.ColumnRef) -> float:
        table = alias_tables.get(ref.alias)
        if table is None:
            return 1000.0
        stats = self._stats(table, ref.column)
        return stats.ndv if stats is not None else 1000.0

    # -- grouping ----------------------------------------------------------------
    def group_count(self, keys: Iterable[ex.ColumnRef],
                    alias_tables: Dict[str, str], input_rows: float) -> float:
        ndvs = [self._column_ndv(alias_tables, key) for key in keys]
        if not ndvs:
            return 1.0  # scalar aggregate
        return grouping_ndv(ndvs, input_rows)

    # -- misc ------------------------------------------------------------------
    def _stats(self, table: str, column: str):
        try:
            return self.catalog.statistics(table, column)
        except Exception:
            return None

    def clustered_scan_window(self, table: str,
                              predicate: Optional[ex.Expr]
                              ) -> Tuple[float, float]:
        """(offset_fraction, length_fraction) of the table a scan must
        physically read, derived from predicates on the clustering key.

        Predicates on non-clustered columns filter rows but do not
        reduce the pages read.
        """
        tbl = self.catalog.table(table)
        clustered = next(
            (ix for ix in tbl.indexes if ix.clustered and ix.columns), None)
        if clustered is None or predicate is None:
            return 0.0, 1.0
        key = clustered.columns[0]
        col = tbl.column(key)
        span = float(col.high - col.low) or 1.0
        offset, length = 0.0, 1.0
        for conjunct in ex.conjuncts(predicate):
            window = _key_window(conjunct, key)
            if window is None:
                continue
            lo, hi = window
            lo = max(float(col.low), lo)
            hi = min(float(col.high), hi)
            if hi < lo:
                return 0.0, 0.0
            offset = (lo - col.low) / span
            length = (hi - lo) / span
            break
        return offset, max(0.0, min(1.0, length))


def _split_column_literal(left: ex.Expr, right: ex.Expr):
    """Return (ColumnRef, Literal) regardless of which side is which."""
    if isinstance(left, ex.ColumnRef) and isinstance(right, ex.Literal):
        return left, right
    if isinstance(right, ex.ColumnRef) and isinstance(left, ex.Literal):
        return right, left
    return None, None


def _key_window(pred: ex.Expr, key: str):
    """The [low, high] window a predicate imposes on the clustering key."""
    if isinstance(pred, ex.Between):
        if (isinstance(pred.expr, ex.ColumnRef) and pred.expr.column == key
                and isinstance(pred.low, ex.Literal)
                and isinstance(pred.high, ex.Literal)
                and not isinstance(pred.low.value, str)):
            return float(pred.low.value), float(pred.high.value)
        return None
    if isinstance(pred, ex.Comparison):
        column, literal = _split_column_literal(pred.left, pred.right)
        if column is None or column.column != key:
            return None
        if isinstance(literal.value, str):
            return None
        value = float(literal.value)
        if pred.op == "=":
            return value, value
        if pred.op in ("<", "<="):
            return float("-inf"), value
        if pred.op in (">", ">="):
            return value, float("inf")
    return None
