"""A Cascades-style query optimizer, staged as a pluggable pipeline.

The optimizer is the paper's memory consumer of interest: it "considers
a number of functionally equivalent alternatives … this entire process
uses memory to store the different alternatives for the duration of the
optimization process" (§2.1).  Here that is literal — alternatives live
in a :class:`~repro.optimizer.memo.Memo`, whose footprint grows with
every transformation-rule application, and the compilation pipeline
charges that footprint to the task's memory account, which is what the
throttling gateways observe.

Search runs through an explicit four-stage
:class:`~repro.optimizer.pipeline.OptimizerPipeline` (support
pre-check → join enumeration → physical operator selection → plan
parameterization) with interchangeable strategies per stage, selected
by an :class:`~repro.optimizer.spec.OptimizerSpec`.  The default
pipeline is the paper's dynamic optimization (§5.1): a cheap heuristic
plan first (always available as the best-plan-so-far fallback), then
exploration rounds whose budget scales with the estimated cost of the
query.
"""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.memo import Memo, Group, GroupExpression
from repro.optimizer.optimizer import OptimizationResult, Optimizer, OptStep
from repro.optimizer.pipeline import OptimizerPipeline
from repro.optimizer.spec import (ENUMERATOR_NAMES, OptimizerSpec,
                                  PARAMETERIZATION_NAMES, PRECHECK_NAMES,
                                  SELECTION_NAMES)

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "ENUMERATOR_NAMES",
    "Group",
    "GroupExpression",
    "Memo",
    "OptimizationResult",
    "Optimizer",
    "OptimizerPipeline",
    "OptimizerSpec",
    "OptStep",
    "PARAMETERIZATION_NAMES",
    "PRECHECK_NAMES",
    "SELECTION_NAMES",
]
