"""A Cascades-style query optimizer.

The optimizer is the paper's memory consumer of interest: it "considers
a number of functionally equivalent alternatives … this entire process
uses memory to store the different alternatives for the duration of the
optimization process" (§2.1).  Here that is literal — alternatives live
in a :class:`~repro.optimizer.memo.Memo`, whose footprint grows with
every transformation-rule application, and the compilation pipeline
charges that footprint to the task's memory account, which is what the
throttling gateways observe.

Search is *staged* (dynamic optimization, §5.1): a cheap heuristic plan
first (always available as the best-plan-so-far fallback), then
exploration rounds whose budget scales with the estimated cost of the
query.
"""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.memo import Memo, Group, GroupExpression
from repro.optimizer.optimizer import OptimizationResult, Optimizer, OptStep

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "Group",
    "GroupExpression",
    "Memo",
    "OptimizationResult",
    "Optimizer",
    "OptStep",
]
