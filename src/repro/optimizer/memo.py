"""The memo: deduplicated store of plan alternatives.

Groups hold semantically-equivalent expressions; group expressions
reference children *by group id*, so one stored subtree is shared by
every alternative that uses it.  The memo also keeps the byte
accounting the paper's mechanism depends on: every group and group
expression has a simulated footprint, and
:attr:`Memo.bytes_used` is what the compilation pipeline charges to the
task's memory account as search proceeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import SimulationError
from repro.plans.logical import LogicalNode
from repro.units import KiB

#: simulated footprint of one group (header, context, properties)
GROUP_BYTES = 64 * KiB
#: simulated footprint of one group expression (operator + rule state)
GEXPR_BYTES = 24 * KiB


@dataclass
class GroupExpression:
    """One logical operator with children resolved to group ids."""

    node: LogicalNode
    children: Tuple[int, ...]
    group_id: int = -1
    #: names of transformation rules already fired on this expression
    applied_rules: set = field(default_factory=set)

    def key(self) -> tuple:
        return (self.node.payload(), self.children)


@dataclass
class GroupStats:
    """Estimated statistical properties shared by a whole group."""

    rows: float = 0.0
    #: bytes per output row
    width: float = 0.0
    aliases: FrozenSet[str] = frozenset()

    @property
    def bytes(self) -> float:
        return self.rows * self.width


class Group:
    """A set of semantically equivalent expressions."""

    def __init__(self, group_id: int):
        self.id = group_id
        self.expressions: List[GroupExpression] = []
        self.stats: Optional[GroupStats] = None
        #: filled by the implementation pass: (cost, physical-plan builder)
        self.best_cost: Optional[float] = None
        self.explored = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Group {self.id} exprs={len(self.expressions)}>"


class Memo:
    """All groups of one optimization, with duplicate detection."""

    def __init__(self):
        self.groups: List[Group] = []
        self._index: Dict[tuple, GroupExpression] = {}
        #: extra simulated bytes charged beyond group/expression costs
        #: (query tree, binding structures); set by the optimizer
        self.base_bytes = 0
        #: scales the simulated footprint (lets low-effort searches keep
        #: a full-effort memory profile in scaled-down experiments)
        self.byte_multiplier = 1.0

    # -- accounting ------------------------------------------------------------
    @property
    def expression_count(self) -> int:
        return len(self._index)

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def bytes_used(self) -> int:
        """Simulated memory footprint of the whole memo."""
        structural = (self.group_count * GROUP_BYTES
                      + self.expression_count * GEXPR_BYTES)
        return self.base_bytes + int(structural * self.byte_multiplier)

    # -- construction ------------------------------------------------------------
    def new_group(self) -> Group:
        group = Group(len(self.groups))
        self.groups.append(group)
        return group

    def group(self, group_id: int) -> Group:
        return self.groups[group_id]

    def insert_tree(self, node: LogicalNode,
                    target_group: Optional[int] = None) -> int:
        """Insert a logical tree, returning the id of its root group.

        Children are inserted recursively (deduplicated); if
        ``target_group`` is given the root expression joins that group
        (a transformation result), otherwise a fresh or existing group
        is used.
        """
        child_ids = tuple(self.insert_tree(child) for child in node.children)
        gexpr, _created = self.insert_expression(node, child_ids, target_group)
        return gexpr.group_id

    def insert_expression(self, node: LogicalNode,
                          child_ids: Tuple[int, ...],
                          target_group: Optional[int]
                          ) -> Tuple[GroupExpression, bool]:
        """Insert one expression; returns (expression, created_flag).

        Duplicate expressions are detected by (payload, child group ids)
        and returned rather than re-created.  When the same expression
        is derived in two different groups, full Cascades would merge
        the groups; we keep the first owner, which is safe because both
        groups are semantically equivalent.
        """
        key = (node.payload(), child_ids)
        existing = self._index.get(key)
        if existing is not None:
            return existing, False
        if target_group is None:
            group = self.new_group()
        else:
            group = self.group(target_group)
        gexpr = GroupExpression(node=node, children=child_ids,
                                group_id=group.id)
        group.expressions.append(gexpr)
        self._index[key] = gexpr
        return gexpr, True

    def expressions(self) -> List[GroupExpression]:
        """All group expressions (stable order)."""
        return [gexpr for group in self.groups
                for gexpr in group.expressions]
