"""Plan parameterization — pipeline stage 4.

The final stage turns the search's best candidate into the task's
:class:`~repro.optimizer.optimizer.OptimizationResult`.  It runs after
the last enumerator step, so whatever it does is invisible to the
memory gateways — it shapes the *plan* the executor receives, not the
optimization-time footprint.

``EstimatesParameterization`` (``estimates``) passes the winner
through untouched — the pre-pipeline behaviour.
``PaddedParameterization`` (``padded``) inflates each operator's
memory estimate by a fixed safety margin, modelling the conservative
grant padding production servers apply to survive under-estimates.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.plans import physical as ph


class EstimatesParameterization:
    """Adopt the search winner's estimates unchanged."""

    __slots__ = ()

    name = "estimates"

    def finalize(self, task):
        if task._best is None:
            raise SimulationError("optimization finished without a plan")
        return task._best


class PaddedParameterization:
    """Inflate per-operator memory estimates by a safety margin."""

    __slots__ = ()

    name = "padded"

    #: multiplier applied to every operator's memory estimate
    MARGIN = 1.25

    def finalize(self, task):
        if task._best is None:
            raise SimulationError("optimization finished without a plan")
        best = task._best
        for node in best.plan.walk():
            old = node.estimates
            node.estimates = ph.Estimates(
                rows=old.rows, bytes=old.bytes,
                memory=old.memory * self.MARGIN, cost=old.cost)
        return best
