"""Physical operator selection — pipeline stage 3.

A selection strategy turns the memo's logical expressions into one
best physical plan per implementation pass.  The enumerator decides
*when* passes run (at its stage boundaries); the strategy decides
*which* candidate implementation wins inside each pass.

``CostBasedSelection`` (``cost``) is the pre-pipeline behaviour moved
here verbatim: every candidate is costed as a scalar and only each
group's winner is materialized into physical nodes (losers were ~2/3
of all node construction).  ``HeuristicSelection`` (``heuristic``)
skips the comparisons and fixes the classic choices — hash-build on
the smaller input, hash aggregation — the way a syntax-driven
optimizer would.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Tuple

from repro.errors import SimulationError
from repro.optimizer.memo import GroupExpression
from repro.plans import expressions as ex
from repro.plans import logical as lg
from repro.plans import physical as ph
from repro.units import MiB


class CostBasedSelection:
    """Cost every candidate implementation, keep the cheapest."""

    __slots__ = ()

    name = "cost"

    def implement(self, task, root_gid: int, stage: int) -> None:
        """(Re-)cost the memo bottom-up and record the best full plan."""
        from repro.optimizer.optimizer import OptimizationResult

        for group in task.memo.groups:
            group.best_cost = None
        task._plan_cache = {}
        cost, plan = self._best_plan(task, root_gid, set())
        if plan is None:
            raise SimulationError("no physical plan produced")
        result = OptimizationResult(
            plan=plan, cost=cost, memo_bytes=task.memo.bytes_used,
            work_units=task._work_units, stage=stage)
        if task._best is None or cost <= task._best.cost:
            task._best = result
        else:
            # keep the better previous plan but refresh bookkeeping
            task._best = OptimizationResult(
                plan=task._best.plan, cost=task._best.cost,
                memo_bytes=task.memo.bytes_used,
                work_units=task._work_units, stage=stage)

    def _best_plan(self, task, gid: int,
                   visiting: set
                   ) -> Tuple[float, Optional[ph.PhysicalNode]]:
        # ``visiting`` is one mutable set shared down the recursion
        # (add/discard instead of building a frozenset per group)
        cached = task._plan_cache.get(gid)
        if cached is not None:
            return cached
        if gid in visiting:
            return math.inf, None
        group = task.memo.group(gid)
        visiting.add(gid)
        best_cost = math.inf
        best_build = None
        try:
            for gexpr in group.expressions:
                for cost, build in self._implement_gexpr(task, gexpr,
                                                         visiting):
                    if cost < best_cost:
                        best_cost = cost
                        best_build = build
        finally:
            visiting.discard(gid)
        if best_build is None:
            return math.inf, None
        # candidates are costed as scalars; only the group winner is
        # materialized into physical nodes (losers were ~2/3 of all
        # node construction across the three implementation passes)
        best = (best_cost, best_build())
        task._plan_cache[gid] = best
        group.best_cost = best_cost
        return best

    def _implement_gexpr(self, task, gexpr: GroupExpression,
                         visiting: set) -> List[tuple]:
        """Candidate implementations as ``(cost, build)`` pairs.

        ``build`` is a zero-argument callable producing the physical
        node; candidate order is stable so cost ties keep resolving to
        the first candidate, exactly as when nodes were built eagerly.
        """
        node = gexpr.node
        stats = task.memo.group(gexpr.group_id).stats
        assert stats is not None
        cm = task.opt.cost_model
        est = task.opt.estimator
        out: List[tuple] = []

        if isinstance(node, lg.LogicalGet):
            window = task._scan_window_cache.get(id(gexpr))
            if window is None:
                window = est.clustered_scan_window(
                    node.table, node.predicate)
                task._scan_window_cache[id(gexpr)] = window
            offset, length = window
            table = task.opt.catalog.table(node.table)
            cost = cm.scan_cost(table.nbytes, length, stats.rows)

            def build_scan(cost=cost, offset=offset, length=length):
                scan = ph.TableScan(node.alias, node.table, node.predicate)
                scan.scan_fraction = length
                scan.scan_offset = offset
                scan.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes, memory=0.0,
                    cost=cost)
                return scan

            out.append((cost, build_scan))
            return out

        if isinstance(node, lg.LogicalJoin):
            lcost, lplan = self._best_plan(task, gexpr.children[0],
                                           visiting)
            rcost, rplan = self._best_plan(task, gexpr.children[1],
                                           visiting)
            if lplan is None or rplan is None:
                return out
            lstats = task.memo.group(gexpr.children[0]).stats
            rstats = task.memo.group(gexpr.children[1]).stats
            split = task._join_split_cache.get(id(gexpr))
            if split is None:
                split = _split_join_keys(
                    node.condition, lstats.aliases, rstats.aliases)
                task._join_split_cache[id(gexpr)] = split
            build_keys, probe_keys, residual = split
            if build_keys:
                # hash join, both build orders; the memory term biases
                # the choice toward building on the smaller input
                for build_stats, probe_stats, build_plan, probe_plan, \
                        bkeys, pkeys in self._hash_join_orders(
                            lstats, rstats, lplan, rplan,
                            build_keys, probe_keys):
                    memory = cm.hash_join_memory(build_stats.bytes)
                    cost = (lcost + rcost
                            + cm.hash_join_cost(build_stats.rows,
                                                probe_stats.rows,
                                                stats.rows)
                            + cm.memory_pressure_cost(memory))

                    def build_hj(cost=cost, memory=memory,
                                 build_plan=build_plan,
                                 probe_plan=probe_plan,
                                 bkeys=bkeys, pkeys=pkeys):
                        hj = ph.HashJoin(build_plan, probe_plan,
                                         bkeys, pkeys, residual)
                        hj.estimates = ph.Estimates(
                            rows=stats.rows, bytes=stats.bytes,
                            memory=memory, cost=cost)
                        return hj

                    out.append((cost, build_hj))
            else:
                cost = (lcost + rcost + cm.nl_join_cost(
                    lstats.rows, rstats.rows, stats.rows))

                def build_nl(cost=cost):
                    nl = ph.NestedLoopsJoin(lplan, rplan, node.condition)
                    nl.estimates = ph.Estimates(
                        rows=stats.rows, bytes=stats.bytes,
                        memory=min(lstats.bytes, 64 * MiB), cost=cost)
                    return nl

                out.append((cost, build_nl))
            return out

        if isinstance(node, lg.LogicalFilter):
            ccost, cplan = self._best_plan(task, gexpr.children[0],
                                           visiting)
            if cplan is None:
                return out
            cstats = task.memo.group(gexpr.children[0]).stats
            cost = ccost + cm.filter_cost(cstats.rows)

            def build_filter(cost=cost):
                flt = ph.Filter(cplan, node.predicate)
                flt.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes, memory=0.0,
                    cost=cost)
                return flt

            out.append((cost, build_filter))
            return out

        if isinstance(node, lg.LogicalAggregate):
            ccost, cplan = self._best_plan(task, gexpr.children[0],
                                           visiting)
            if cplan is None:
                return out
            cstats = task.memo.group(gexpr.children[0]).stats
            # hash aggregate
            cost = ccost + cm.hash_agg_cost(cstats.rows, stats.rows)

            def build_hash_agg(cost=cost):
                ha = ph.HashAggregate(cplan, node.keys, node.aggregates)
                ha.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes,
                    memory=cm.hash_agg_memory(stats.rows, stats.width),
                    cost=cost)
                return ha

            out.append((cost, build_hash_agg))
            # sort + stream aggregate
            if node.keys and self._consider_stream_aggregate():
                sort_cost = cm.sort_cost(cstats.rows)
                total = ccost + sort_cost + cm.stream_agg_cost(cstats.rows)

                def build_stream_agg(total=total, sort_cost=sort_cost):
                    sort = ph.Sort(cplan, node.keys)
                    sort.estimates = ph.Estimates(
                        rows=cstats.rows, bytes=cstats.bytes,
                        memory=cm.sort_memory(cstats.bytes),
                        cost=ccost + sort_cost)
                    sa = ph.StreamAggregate(sort, node.keys,
                                            node.aggregates)
                    sa.estimates = ph.Estimates(
                        rows=stats.rows, bytes=stats.bytes, memory=0.0,
                        cost=total)
                    return sa

                out.append((total, build_stream_agg))
            return out

        if isinstance(node, lg.LogicalProject):
            ccost, cplan = self._best_plan(task, gexpr.children[0],
                                           visiting)
            if cplan is None:
                return out
            cstats = task.memo.group(gexpr.children[0]).stats
            cost = ccost + cm.project_cost(cstats.rows)

            def build_project(cost=cost):
                proj = ph.Project(cplan, node.exprs)
                proj.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes, memory=0.0,
                    cost=cost)
                return proj

            out.append((cost, build_project))
            return out

        if isinstance(node, lg.LogicalSort):
            ccost, cplan = self._best_plan(task, gexpr.children[0],
                                           visiting)
            if cplan is None:
                return out
            cstats = task.memo.group(gexpr.children[0]).stats
            cost = ccost + cm.sort_cost(cstats.rows)

            def build_sort(cost=cost):
                sort = ph.Sort(cplan, node.keys, node.descending)
                sort.estimates = ph.Estimates(
                    rows=stats.rows, bytes=stats.bytes,
                    memory=cm.sort_memory(cstats.bytes), cost=cost)
                return sort

            out.append((cost, build_sort))
            return out

        raise SimulationError(f"no implementation for {node!r}")

    # --------------------------------------------------- strategy points
    def _hash_join_orders(self, lstats, rstats, lplan, rplan,
                          build_keys, probe_keys):
        """Which build orders to cost: cost-based tries both."""
        return ((lstats, rstats, lplan, rplan, build_keys, probe_keys),
                (rstats, lstats, rplan, lplan, probe_keys, build_keys))

    def _consider_stream_aggregate(self) -> bool:
        """Whether sort+stream competes with the hash aggregate."""
        return True


class HeuristicSelection(CostBasedSelection):
    """Fix the classic physical choices without comparing candidates.

    Hash joins always build on the smaller (fewer estimated bytes)
    input and aggregation is always hash-based — one candidate per
    expression, so implementation passes cost less and never flip a
    plan on a marginal estimate.  The cost model still prices the one
    chosen candidate: estimates and memory grants stay meaningful.
    """

    __slots__ = ()

    name = "heuristic"

    def _hash_join_orders(self, lstats, rstats, lplan, rplan,
                          build_keys, probe_keys):
        if lstats.bytes <= rstats.bytes:
            return ((lstats, rstats, lplan, rplan,
                     build_keys, probe_keys),)
        return ((rstats, lstats, rplan, lplan,
                 probe_keys, build_keys),)

    def _consider_stream_aggregate(self) -> bool:
        return False


# -------------------------------------------------------------- tree helpers
def _split_join_keys(condition: Optional[ex.Expr],
                     left_aliases: FrozenSet[str],
                     right_aliases: FrozenSet[str]):
    """Separate equi-join keys (build/probe) from residual predicates."""
    build_keys: List[ex.ColumnRef] = []
    probe_keys: List[ex.ColumnRef] = []
    residual: List[ex.Expr] = []
    for conjunct in ex.conjuncts(condition):
        if (isinstance(conjunct, ex.Comparison) and conjunct.is_equi_join):
            lref = conjunct.left
            rref = conjunct.right
            assert isinstance(lref, ex.ColumnRef)
            assert isinstance(rref, ex.ColumnRef)
            if lref.alias in left_aliases and rref.alias in right_aliases:
                build_keys.append(lref)
                probe_keys.append(rref)
                continue
            if rref.alias in left_aliases and lref.alias in right_aliases:
                build_keys.append(rref)
                probe_keys.append(lref)
                continue
        residual.append(conjunct)
    return (tuple(build_keys), tuple(probe_keys),
            ex.make_conjunction(residual))
