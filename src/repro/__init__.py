"""repro — reproduction of *Managing Query Compilation Memory
Consumption to Improve DBMS Throughput* (Baryshnikov et al., CIDR 2007).

A self-contained simulated DBMS — SQL front end, Cascades-style
optimizer, buffer pool, plan cache, execution engine with memory
grants — plus the paper's two mechanisms: the **Memory Broker** and
**query-compilation throttling** via memory-monitor gateways.

Quick start::

    import random
    from repro import DatabaseServer, SalesWorkload, paper_server_config

    workload = SalesWorkload(scale=0.001)
    server = DatabaseServer(paper_server_config(throttling=True),
                            workload.build_catalog())
    query = workload.generate(random.Random(7))
    outcome = server.execute_sync(query.text)
"""

from repro.config import (
    BrokerConfig,
    ExecutionConfig,
    GatewayConfig,
    HardwareConfig,
    PlanCacheConfig,
    ServerConfig,
    ThrottleConfig,
    default_gateways,
    paper_server_config,
)
from repro.broker import BrokerNotification, BrokerSignal, MemoryBroker
from repro.errors import (
    CompileOutOfMemoryError,
    GatewayTimeoutError,
    GrantTimeoutError,
    OutOfMemoryError,
    QueryError,
    ReproError,
)
from repro.metrics import MetricsCollector
from repro.server import DatabaseServer, QueryOutcome
from repro.sim import Environment
from repro.throttle import CompilationGovernor, Gateway
from repro.workload import (
    LoadGenerator,
    MixedWorkload,
    OltpWorkload,
    SalesWorkload,
    TpchWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "BrokerConfig",
    "BrokerNotification",
    "BrokerSignal",
    "CompilationGovernor",
    "CompileOutOfMemoryError",
    "DatabaseServer",
    "Environment",
    "ExecutionConfig",
    "Gateway",
    "GatewayConfig",
    "GatewayTimeoutError",
    "GrantTimeoutError",
    "HardwareConfig",
    "LoadGenerator",
    "MemoryBroker",
    "MetricsCollector",
    "MixedWorkload",
    "OltpWorkload",
    "OutOfMemoryError",
    "PlanCacheConfig",
    "QueryError",
    "QueryOutcome",
    "ReproError",
    "SalesWorkload",
    "ServerConfig",
    "ThrottleConfig",
    "TpchWorkload",
    "default_gateways",
    "paper_server_config",
]
