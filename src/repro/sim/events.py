"""Core event types for the simulation kernel.

An :class:`Event` moves through three states: *pending* (created, not yet
triggered), *triggered* (given a value/exception and placed on the event
heap), and *processed* (its callbacks have run).  Processes react to
events via callbacks registered by the kernel — user code simply
``yield``\\ s events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

#: sentinel for "event has no value yet"
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`.

    ``cause`` carries the interrupter's reason (any object).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single occurrence that processes can wait on.

    Events succeed with a value or fail with an exception.  Failed
    events are re-raised inside every waiting process, so errors
    propagate along wait chains exactly like exceptions along call
    chains.
    """

    # events are allocated on every timeout/request/resume — __slots__
    # keeps them dict-free, which measurably cuts kernel overhead
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set True when a failure was delivered to at least one waiter
        self._defused = False

    # -- state predicates ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception) the event was triggered with."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another event onto this one (callback form)."""
        if not event.triggered:
            # guard before touching _defused: marking a still-pending
            # event defused would silently swallow a later real failure
            raise SimulationError(
                f"cannot copy the outcome of pending {event!r}")
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} already processed")
        self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Condition(Event):
    """Base for events composed of other events (``AnyOf`` / ``AllOf``)."""

    __slots__ = ("events", "_unprocessed")

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        self._unprocessed = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> dict:
        """Gather the values of all already-processed successful children.

        ``processed`` (not merely ``triggered``) is the right test:
        Timeout events carry their value from creation, long before
        they fire.
        """
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            # A sibling already resolved the condition; absorb failures so
            # they do not escape as unhandled.
            if event.triggered and not event._ok:
                event._defused = True
            return
        self._unprocessed -= 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as *any* child event succeeds (or one fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return any(event.processed and event._ok for event in self.events)


class AllOf(Condition):
    """Fires once *all* child events have succeeded (or one fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unprocessed == 0
