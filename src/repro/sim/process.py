"""Generator-based processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  The kernel resumes the generator with the event's value when it
fires, or throws the event's exception into the generator when it fails.
A process is itself an event that fires when the generator returns, so
processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt, _PENDING


class Process(Event):
    """A running generator coroutine inside an environment."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: the event this process is currently waiting on (None when running)
        self._target: Event | None = None
        # Kick off the process via an immediately-scheduled initialization
        # event so creation order does not perturb event ordering.
        init = Event(env)
        init._ok = True
        init._value = None
        env.schedule(init)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is currently waiting for (diagnostics)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        The process stops waiting on its current target; that target is
        left to fire on its own (its outcome is discarded for this
        process).
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        self.env.schedule(wakeup)
        wakeup.add_callback(self._resume)

    # -- kernel internals --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if not self.is_alive:
            # e.g. an interrupt raced with normal completion
            return
        if isinstance(event._value, Interrupt):
            # Detach from the pending target; its eventual outcome must not
            # resume us anymore.
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        elif event is not self._target and self._target is not None:
            # Stale wakeup from an event we stopped waiting on.
            return
        self.env.active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc)
            return
        finally:
            self.env.active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}")
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately via a zero-delay event.
            relay = Event(self.env)
            relay._ok = next_event._ok
            relay._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
                relay._defused = True
            self.env.schedule(relay)
            self._target = relay
            relay.add_callback(self._resume)
        else:
            next_event.add_callback(self._resume)
