"""The simulation environment: clock plus event schedule.

:class:`Environment` is the kernel's scheduler.  ``schedule`` places a
triggered event on the schedule; ``step`` pops the earliest event and
runs its callbacks; ``run`` steps until a deadline or until no events
remain.

Two interchangeable scheduler cores back the same facade — the
``kernel`` constructor knob picks one (see ``docs/kernel.md``):

* ``legacy`` (default) — one binary heap ordered by ``(time, eid)``.
* ``wheel`` — the calendar-queue :class:`~repro.sim.wheel.EventWheel`:
  O(1) bucket inserts for near-horizon timers with a heap spillover
  for far-future events.  Pops in exactly the legacy order (same
  timestamps, same FIFO tie-breaking), so every simulated number is
  identical between kernels; the differential harness pins it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

#: the selectable scheduler cores
KERNEL_NAMES = ("legacy", "wheel")


class Environment:
    """A discrete-event simulation environment.

    Examples
    --------
    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(10)
    ...     return env.now
    >>> p = env.process(hello(env))
    >>> env.run()
    >>> p.value
    10.0
    """

    __slots__ = ("_now", "_queue", "_eid", "_wheel", "active_process")

    def __init__(self, initial_time: float = 0.0, kernel: str = "legacy"):
        if kernel not in KERNEL_NAMES:
            raise SimulationError(
                f"unknown kernel {kernel!r}; valid kernels: "
                f"{', '.join(KERNEL_NAMES)}")
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        if kernel == "wheel":
            from repro.sim.wheel import EventWheel

            self._wheel: Optional["EventWheel"] = \
                EventWheel(start=self._now)
        else:
            self._wheel = None
        #: the process currently being resumed (kernel internal)
        self.active_process = None

    @property
    def kernel(self) -> str:
        """Which scheduler core backs this environment."""
        return "legacy" if self._wheel is None else "wheel"

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events) -> AnyOf:
        """An event that fires when any of ``events`` fires."""
        return AnyOf(self, list(events))

    def all_of(self, events) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, list(events))

    def process(self, generator: Generator) -> "Process":
        """Start a new process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the schedule, ``delay`` s from now."""
        self._eid += 1
        if self._wheel is None:
            heappush(self._queue, (self._now + delay, self._eid, event))
        else:
            self._wheel.push(self._now + delay, self._eid, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._wheel is not None:
            return self._wheel.peek()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single earliest event."""
        if self._wheel is None:
            if not self._queue:
                raise SimulationError("step() on an empty schedule")
            when, _, event = heappop(self._queue)
        else:
            if not self._wheel:
                raise SimulationError("step() on an empty schedule")
            when, _, event = self._wheel.pop()
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface the error instead of
            # silently dropping it (Zen: errors should never pass silently).
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly that
        time before returning, even if no event falls on it.
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self._now})")
            limit = float(until)
        else:
            limit = float("inf")
        if self._wheel is not None:
            self._run_wheel(limit)
        else:
            # inlined step(): this loop dispatches every event of a run,
            # so the attribute lookups are hoisted out
            queue = self._queue
            pop = heappop
            while queue and queue[0][0] <= limit:
                when, _, event = pop(queue)
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        if until is not None:
            self._now = limit

    def _run_wheel(self, limit: float) -> None:
        """The dispatch loop over the calendar-queue core."""
        wheel = self._wheel
        while wheel and wheel.peek() <= limit:
            when, _, event = wheel.pop()
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
