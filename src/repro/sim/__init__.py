"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`~repro.sim.environment.Environment` owns a time-ordered event
heap, and concurrent activities are written as generator *processes*
that ``yield`` events (timeouts, resource requests, other processes).

The whole repro DBMS — CPU scheduler, disk, memory broker, compilation
gateways, client load generator — is built as processes on this kernel,
which is what lets us replay hours of simulated server time in seconds
and still get deterministic, reproducible interleavings.

Two scheduler cores back the same :class:`Environment` facade: the
default ``legacy`` binary heap and the ``wheel`` calendar queue
(:mod:`repro.sim.wheel`) for very large session populations.  They pop
events in the identical ``(time, eid)`` order, so kernel choice never
changes a simulated number — see ``docs/kernel.md``.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.environment import Environment, KERNEL_NAMES
from repro.sim.process import Process
from repro.sim.resources import Request, Resource, Store
from repro.sim.state import GatewayTable, SessionTable
from repro.sim.wheel import EventWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "EventWheel",
    "GatewayTable",
    "Interrupt",
    "KERNEL_NAMES",
    "Process",
    "Request",
    "Resource",
    "SessionTable",
    "Store",
    "Timeout",
]
