"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`~repro.sim.environment.Environment` owns a time-ordered event
heap, and concurrent activities are written as generator *processes*
that ``yield`` events (timeouts, resource requests, other processes).

The whole repro DBMS — CPU scheduler, disk, memory broker, compilation
gateways, client load generator — is built as processes on this kernel,
which is what lets us replay hours of simulated server time in seconds
and still get deterministic, reproducible interleavings.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.environment import Environment
from repro.sim.process import Process
from repro.sim.resources import Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "Store",
    "Timeout",
]
