"""The calendar-queue event wheel: the million-session scheduler core.

The legacy kernel keeps every pending event on one binary heap, so a
cell with N concurrent sessions pays O(log N) per timer on a heap whose
memory locality degrades as N grows.  This module provides the
alternative: a **calendar queue** (Brown 1988) tuned for the dominant
timer class of this simulator — session think-time and admission
queue-timeout timers, which land within a bounded horizon of *now*.

Layout
------
Time is cut into fixed-width **buckets**; ``slots`` buckets form one
wheel rotation (the *span*).  An entry lands in one of three places:

* the **ready heap** — entries due inside the current drain window
  (one bucket wide).  Small: it holds one bucket's worth of events,
  not the whole queue, so its O(log) factor is over bucket occupancy.
* a **bucket** — an O(1) list append for anything due within the span.
* the **overflow heap** — the far-future spillover (run-duration
  deadlines, diurnal-cycle timers), refilled into the wheel as the
  drain window approaches them.

Ordering contract
-----------------
``pop`` returns entries in exactly the legacy heap's order: ascending
``(when, eid)`` where ``eid`` is the scheduling sequence number — i.e.
earliest deadline first with FIFO tie-breaking at equal timestamps.
The argument: an entry leaves a bucket for the ready heap only once
the drain window reaches its timestamp, every entry outside the ready
heap is provably due at-or-after the window's end, and the ready heap
itself orders by ``(when, eid)``.  The differential harness
(``tests/test_kernel_equivalence.py``) and the randomized model test
(``tests/test_sim_wheel.py``) both pin this.

``cancel`` exists for schedulers that revise timers (and for the
property tests); cancelled entries die lazily wherever they sit and
are dropped when they surface.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Iterator, List, Optional, Tuple

#: entry field indices (entries are lists so cancellation can mutate
#: them in place; heap comparison only ever reaches (when, eid))
_WHEN, _EID, _PAYLOAD, _ALIVE, _IN_WHEEL = range(5)

#: default bucket width in sim-seconds: narrower than the ~15 s think
#: time and the 120-180 s queue timeouts that dominate, so a bucket
#: drain stays small even at heavy fan-in
DEFAULT_BUCKET_WIDTH = 0.5

#: default rotation length: 4096 buckets x 0.5 s = a 2048 s span, which
#: comfortably covers every near-horizon timer of a smoke/scaled run
DEFAULT_SLOTS = 4096


class EventWheel:
    """A calendar queue with an exact ``(when, eid)`` pop order.

    The payload is opaque (the kernel stores :class:`~repro.sim.events.
    Event` objects; the property tests store plain integers).
    """

    __slots__ = ("width", "slots", "_span", "_win", "_buckets", "_ready",
                 "_overflow", "_live", "_wheel_live", "_entries")

    def __init__(self, start: float = 0.0,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH,
                 slots: int = DEFAULT_SLOTS):
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, "
                             f"got {bucket_width!r}")
        if slots < 2:
            raise ValueError(f"slots must be >= 2, got {slots!r}")
        self.width = float(bucket_width)
        self.slots = int(slots)
        self._span = self.width * self.slots
        #: absolute index of the current drain window (monotone)
        self._win = math.floor(start / self.width)
        self._buckets: List[List[list]] = [[] for _ in range(self.slots)]
        self._ready: List[list] = []
        self._overflow: List[list] = []
        #: live (un-cancelled, un-popped) entries overall
        self._live = 0
        #: live entries in the wheel part (ready heap + buckets)
        self._wheel_live = 0
        #: eid -> live entry, for O(1) cancel
        self._entries: dict = {}

    # ------------------------------------------------------------ sizing
    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------- write
    def push(self, when: float, eid: int, payload: Any = None) -> None:
        """Schedule ``payload`` at ``when`` with sequence number ``eid``.

        ``eid`` must be unique and (for the FIFO-tie contract to mean
        anything) monotonically increasing across pushes.
        """
        entry = [when, eid, payload, True, True]
        self._entries[eid] = entry
        self._live += 1
        self._place(entry)

    def cancel(self, eid: int) -> bool:
        """Remove a scheduled entry; True if it was still pending."""
        entry = self._entries.pop(eid, None)
        if entry is None:
            return False
        entry[_ALIVE] = False
        self._live -= 1
        if entry[_IN_WHEEL]:
            self._wheel_live -= 1
        return True

    def reschedule(self, eid: int, when: float) -> bool:
        """Move a pending entry to a new time, keeping its sequence
        number (and therefore its FIFO rank among equal timestamps);
        True if the entry was still pending."""
        entry = self._entries.get(eid)
        if entry is None:
            return False
        payload = entry[_PAYLOAD]
        self.cancel(eid)
        self.push(when, eid, payload)
        return True

    def _place(self, entry: list) -> None:
        """Route a live entry to ready heap, bucket or overflow."""
        when = entry[_WHEN]
        if when < (self._win + 1) * self.width:
            # due inside the current drain window (or behind it, which
            # happens when peek() pre-advanced the window): straight to
            # the ready heap, which tolerates any timestamp
            entry[_IN_WHEEL] = True
            self._wheel_live += 1
            heappush(self._ready, entry)
        elif when < self._win * self.width + self._span:
            entry[_IN_WHEEL] = True
            self._wheel_live += 1
            self._buckets[int(when / self.width) % self.slots].append(entry)
        else:
            entry[_IN_WHEEL] = False
            heappush(self._overflow, entry)

    # -------------------------------------------------------------- read
    def peek(self) -> float:
        """Timestamp of the earliest pending entry, ``inf`` if none."""
        if not self._ensure_ready():
            return math.inf
        return self._ready[0][_WHEN]

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return the earliest ``(when, eid, payload)``."""
        if not self._ensure_ready():
            raise IndexError("pop from an empty event wheel")
        entry = heappop(self._ready)
        self._live -= 1
        self._wheel_live -= 1
        del self._entries[entry[_EID]]
        return entry[_WHEN], entry[_EID], entry[_PAYLOAD]

    def drain(self) -> Iterator[Tuple[float, int, Any]]:
        """Pop everything, in order (test/diagnostic convenience)."""
        while self._live:
            yield self.pop()

    # --------------------------------------------------------- internals
    def _ensure_ready(self) -> bool:
        """Advance the drain window until the ready heap's top is the
        global minimum live entry; False when the wheel is empty."""
        ready = self._ready
        while True:
            # dead entries die lazily; drop them as they surface
            while ready and not ready[0][_ALIVE]:
                heappop(ready)
            if ready:
                return True
            if self._live == 0:
                return False
            if self._wheel_live == 0:
                # every live entry sits beyond the horizon: jump the
                # window straight to the earliest overflow entry
                # instead of stepping through empty rotations
                overflow = self._overflow
                while overflow and not overflow[0][_ALIVE]:
                    heappop(overflow)
                self._win = int(overflow[0][_WHEN] // self.width)
                self._refill()
                continue
            self._win += 1
            self._refill()
            bucket = self._buckets[self._win % self.slots]
            if bucket:
                window_end = (self._win + 1) * self.width
                keep = []
                for entry in bucket:
                    if not entry[_ALIVE]:
                        continue
                    if entry[_WHEN] < window_end:
                        heappush(ready, entry)
                    else:
                        # a later rotation's entry sharing the slot
                        keep.append(entry)
                bucket[:] = keep

    def _refill(self) -> None:
        """Move overflow entries the advancing horizon has reached."""
        overflow = self._overflow
        if not overflow:
            return
        horizon = self._win * self.width + self._span
        while overflow and overflow[0][_WHEN] < horizon:
            entry = heappop(overflow)
            if entry[_ALIVE]:
                self._wheel_live += 1
                self._place_wheel(entry)

    def _place_wheel(self, entry: list) -> None:
        """Place a refilled entry inside the wheel (never overflow)."""
        entry[_IN_WHEEL] = True
        if entry[_WHEN] < (self._win + 1) * self.width:
            heappush(self._ready, entry)
        else:
            self._buckets[int(entry[_WHEN] / self.width)
                          % self.slots].append(entry)
