"""Struct-of-arrays state tables for very large populations.

At 10^5-10^6 concurrent sessions, one Python object (or one list
append that resizes) per session is what blows the heap up, not the
event queue.  These tables keep per-session and per-gateway facts in
**preallocated stdlib ``array`` columns keyed by index** — contiguous
machine-typed storage (8 bytes per float cell instead of a ~56-byte
boxed float plus list slot), grown geometrically and shared by both
kernels so storage layout can never change a simulated number.

:class:`SessionTable` is the open-loop admission ledger: one row per
offered session, written by :class:`~repro.traffic.openloop.
OpenLoopGenerator` as arrivals flow through admission.

:class:`GatewayTable` backs the throttle ladder's cumulative monitor
counters; :class:`GatewayStatsView` gives each gateway the attribute
surface the legacy per-gateway dataclass had, so
``repro.throttle.gateway`` code runs unchanged on top of it.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Tuple

#: session outcome codes (the ``outcome`` column)
QUEUED = 0          #: offered, still waiting for an admission slot
ADMITTED = 1        #: got a slot (wait column is valid from here on)
DROPPED_QUEUE = 2   #: dropped on arrival: admission queue was full
DROPPED_TIMEOUT = 3  #: dropped after queueing: no slot in time
SUCCEEDED = 4       #: admitted and the query completed ok
FAILED = 5          #: admitted and the query errored


def _grown(column: array, capacity: int) -> array:
    """A copy of ``column`` zero-padded out to ``capacity`` cells."""
    fresh = array(column.typecode, bytes(column.itemsize * capacity))
    fresh[:len(column)] = column
    return fresh


class SessionTable:
    """Per-session admission facts in preallocated array columns.

    Rows are keyed by the arrival index the open-loop generator already
    assigns.  Columns: ``queued_at`` (sim-seconds, ``d``), ``wait``
    (admission wait, ``d``), ``finished`` (completion sim-time, ``d``,
    valid on terminal rows), ``outcome`` (code, ``b``) and ``tenant``
    (interned tenant index, ``i``).
    """

    __slots__ = ("capacity", "size", "queued_at", "wait", "finished",
                 "outcome", "tenant", "_tenant_ids", "_tenant_names")

    def __init__(self, capacity: int = 4096):
        capacity = max(1, int(capacity))
        self.capacity = capacity
        self.size = 0
        self.queued_at = array("d", bytes(8 * capacity))
        self.wait = array("d", bytes(8 * capacity))
        self.finished = array("d", bytes(8 * capacity))
        self.outcome = array("b", bytes(capacity))
        self.tenant = array("i", bytes(4 * capacity))
        self._tenant_ids: Dict[str, int] = {}
        self._tenant_names: List[str] = []

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------ write
    def tenant_id(self, name: str) -> int:
        """Intern a tenant name to its column index."""
        tid = self._tenant_ids.get(name)
        if tid is None:
            tid = len(self._tenant_names)
            self._tenant_ids[name] = tid
            self._tenant_names.append(name)
        return tid

    def offered(self, index: int, at: float, tenant: str) -> None:
        """Record one arrival (row ``index``) entering admission."""
        if index >= self.capacity:
            self._grow(index + 1)
        if index >= self.size:
            self.size = index + 1
        self.queued_at[index] = at
        self.outcome[index] = QUEUED
        self.tenant[index] = self.tenant_id(tenant)

    def resolve(self, index: int, outcome: int, wait: float = 0.0,
                finished: float = 0.0) -> None:
        """Advance row ``index`` to a terminal/admitted outcome."""
        self.outcome[index] = outcome
        self.wait[index] = wait
        self.finished[index] = finished

    def _grow(self, needed: int) -> None:
        capacity = self.capacity
        while capacity < needed:
            capacity *= 2
        self.queued_at = _grown(self.queued_at, capacity)
        self.wait = _grown(self.wait, capacity)
        self.finished = _grown(self.finished, capacity)
        self.outcome = _grown(self.outcome, capacity)
        self.tenant = _grown(self.tenant, capacity)
        self.capacity = capacity

    # ------------------------------------------------------------- read
    def tenant_name(self, tid: int) -> str:
        return self._tenant_names[tid]

    def tenant_names(self) -> Tuple[str, ...]:
        return tuple(self._tenant_names)

    def count(self, *outcomes: int) -> int:
        """Rows whose outcome is any of ``outcomes``."""
        wanted = set(outcomes)
        column = self.outcome
        return sum(column[i] in wanted for i in range(self.size))

    def admission_waits(self) -> List[float]:
        """The wait column of every session that won a slot (admitted
        rows and their terminal successors), in arrival order."""
        outcome = self.outcome
        wait = self.wait
        return [wait[i] for i in range(self.size)
                if outcome[i] in (ADMITTED, SUCCEEDED, FAILED)]

    def admission_waits_by_tenant(self) -> Dict[str, List[float]]:
        """Tenant name -> admitted-session waits, in arrival order."""
        outcome = self.outcome
        wait = self.wait
        tenant = self.tenant
        waits: Dict[str, List[float]] = {}
        for i in range(self.size):
            if outcome[i] in (ADMITTED, SUCCEEDED, FAILED):
                name = self._tenant_names[tenant[i]]
                waits.setdefault(name, []).append(wait[i])
        return waits

    def sojourns(self) -> List[float]:
        """Queued-to-finished sim-seconds of every completed session
        (terminal SUCCEEDED/FAILED rows), in arrival order."""
        outcome = self.outcome
        queued_at = self.queued_at
        finished = self.finished
        return [finished[i] - queued_at[i] for i in range(self.size)
                if outcome[i] in (SUCCEEDED, FAILED)]

    def outcome_of(self, index: int) -> int:
        """The outcome code of row ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"session row {index} out of range "
                             f"(table has {self.size})")
        return self.outcome[index]

    def by_tenant(self, *outcomes: int) -> Dict[str, int]:
        """Tenant name -> count of rows with any of ``outcomes``."""
        wanted = set(outcomes)
        counts: Dict[str, int] = {}
        outcome = self.outcome
        tenant = self.tenant
        for i in range(self.size):
            if outcome[i] in wanted:
                name = self._tenant_names[tenant[i]]
                counts[name] = counts.get(name, 0) + 1
        return counts

    def rows(self) -> Iterator[Tuple[float, float, int, str]]:
        """(queued_at, wait, outcome, tenant) per session, in order."""
        for i in range(self.size):
            yield (self.queued_at[i], self.wait[i], self.outcome[i],
                   self._tenant_names[self.tenant[i]])


class GatewayTable:
    """Cumulative monitor counters for a whole ladder, column-wise.

    One row per gateway: ``acquires``/``timeouts``/``peak_queue`` as
    unsigned machine ints and ``total_wait`` as a float column.  The
    arithmetic per update is identical to the legacy per-gateway
    dataclass (same operations on the same Python numbers), so the
    table is pure storage — it can never change a simulated number.
    """

    __slots__ = ("acquires", "timeouts", "peak_queue", "total_wait",
                 "rows")

    def __init__(self, gateways: int):
        gateways = max(1, int(gateways))
        self.rows = gateways
        self.acquires = array("Q", bytes(8 * gateways))
        self.timeouts = array("Q", bytes(8 * gateways))
        self.peak_queue = array("Q", bytes(8 * gateways))
        self.total_wait = array("d", bytes(8 * gateways))

    def view(self, row: int) -> "GatewayStatsView":
        return GatewayStatsView(self, row)


class GatewayStatsView:
    """One gateway's window onto a :class:`GatewayTable` row.

    Attribute-compatible with the historical ``GatewayStats``
    dataclass (``acquires``/``timeouts``/``total_wait``/``peak_queue``
    plus ``mean_wait()``), which is what keeps the throttle code and
    every stats consumer unchanged.
    """

    __slots__ = ("_table", "_row")

    def __init__(self, table: GatewayTable, row: int):
        if not 0 <= row < table.rows:
            raise IndexError(f"gateway row {row} out of range "
                             f"(table has {table.rows})")
        self._table = table
        self._row = row

    @property
    def acquires(self) -> int:
        return self._table.acquires[self._row]

    @acquires.setter
    def acquires(self, value: int) -> None:
        self._table.acquires[self._row] = value

    @property
    def timeouts(self) -> int:
        return self._table.timeouts[self._row]

    @timeouts.setter
    def timeouts(self, value: int) -> None:
        self._table.timeouts[self._row] = value

    @property
    def peak_queue(self) -> int:
        return self._table.peak_queue[self._row]

    @peak_queue.setter
    def peak_queue(self, value: int) -> None:
        self._table.peak_queue[self._row] = value

    @property
    def total_wait(self) -> float:
        return self._table.total_wait[self._row]

    @total_wait.setter
    def total_wait(self, value: float) -> None:
        self._table.total_wait[self._row] = value

    def mean_wait(self) -> float:
        acquires = self.acquires
        return self.total_wait / acquires if acquires else 0.0
