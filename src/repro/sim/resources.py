"""Shared resources for processes: counted semaphores and stores.

:class:`Resource` is a FIFO counted semaphore — the building block for
CPUs, disk channels, memory-grant queues and the paper's compilation
gateways.  A request is itself an event; processes ``yield`` it and are
resumed when a slot is granted.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event


class Request(Event):
    """A pending claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        #: set True once the slot has been granted
        self.granted = False

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """A counted FIFO resource with ``capacity`` slots.

    Usage from a process::

        req = resource.request()
        yield req
        ...           # critical section
        resource.release(req)

    ``cancel`` withdraws a queued request (used to implement timeouts:
    wait on ``AnyOf([req, env.timeout(t)])`` and cancel on timeout).
    """

    def __init__(self, env, capacity: int = 1):
        if capacity < 0:
            raise SimulationError(f"negative capacity {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self.queue)

    def set_capacity(self, capacity: int) -> None:
        """Resize the resource.

        Growing wakes queued waiters; shrinking never evicts current
        users — the resource simply stops granting until usage drops
        below the new capacity.  (This is exactly the behaviour the
        paper's dynamic gateway thresholds need.)
        """
        if capacity < 0:
            raise SimulationError(f"negative capacity {capacity}")
        self._capacity = capacity
        self._grant()

    def request(self) -> Request:
        """Ask for one slot; returns an event that fires when granted."""
        req = Request(self)
        self.queue.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (or withdraw a queued request)."""
        if request.granted:
            self.users.remove(request)
            request.granted = False
            self._grant()
        else:
            self.cancel(request)

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet (no-op if
        already granted or not queued)."""
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            req = self.queue.popleft()
            req.granted = True
            self.users.append(req)
            req.succeed(self)


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Used for message passing between processes (e.g. broker
    notifications in tests).
    """

    def __init__(self, env):
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking one waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
