"""The compiled-plan cache.

Caches compiled plans keyed by a hash of the (normalized) query text.
The paper's SALES workload deliberately defeats this cache by making
every query textually unique (§5.1), which turns the cache into a pure
memory consumer — realistic ad-hoc plan-cache bloat — while the OLTP
and TPC-H workloads benefit from it.  The cache registers a shrink
callback with the memory manager and responds to broker SHRINK
notifications by evicting cold plans.
"""

from repro.plancache.cache import CachedPlan, PlanCache

__all__ = ["CachedPlan", "PlanCache"]
