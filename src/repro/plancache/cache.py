"""Hash-keyed plan cache with cost-aware clock eviction."""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.config import PlanCacheConfig
from repro.memory.manager import MemoryManager


def query_hash(text: str) -> str:
    """Cache key for a query text (whitespace-insensitive)."""
    normalized = " ".join(text.split()).lower()
    return hashlib.sha1(normalized.encode()).hexdigest()


@dataclass
class CachedPlan:
    """One cache entry."""

    key: str
    plan: object
    nbytes: int
    compile_cost: float
    hits: int = 0
    inserted_at: float = 0.0
    last_used: float = 0.0


class PlanCache:
    """LRU-with-cost plan cache backed by the ``plan_cache`` clerk."""

    def __init__(self, manager: MemoryManager, config: PlanCacheConfig):
        self.clerk = manager.clerk("plan_cache")
        manager.register_shrinker("plan_cache", self.shrink)
        self.config = config
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # -- lookup -----------------------------------------------------------
    def get(self, key: str, now: float = 0.0) -> Optional[CachedPlan]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        entry.hits += 1
        entry.last_used = now
        self._entries.move_to_end(key)
        return entry

    def put(self, key: str, plan: object, nbytes: int,
            compile_cost: float, now: float = 0.0) -> bool:
        """Insert a plan; returns False if it could not be cached.

        Never forces other components to give up memory: the cache only
        grows into free memory, evicting its own cold entries first.
        """
        if key in self._entries:
            return True
        while (self.clerk.used + nbytes > self.config.max_bytes
               and self._entries):
            self._evict_one()
        if self.clerk.used + nbytes > self.config.max_bytes:
            return False
        while not self.clerk.try_allocate(nbytes):
            if not self._entries:
                return False
            self._evict_one()
        entry = CachedPlan(key=key, plan=plan, nbytes=nbytes,
                           compile_cost=compile_cost,
                           inserted_at=now, last_used=now)
        self._entries[key] = entry
        self.insertions += 1
        return True

    # -- memory pressure ------------------------------------------------------
    def shrink(self, goal: int) -> int:
        """Evict cold plans until ``goal`` bytes are freed (manager
        shrink callback and broker SHRINK handler)."""
        freed = 0
        while freed < goal and self._entries:
            freed += self._evict_one()
        return freed

    def on_broker_notification(self, note) -> None:
        """Broker subscriber: release a step of the cache on SHRINK."""
        from repro.broker.broker import BrokerSignal

        if note.signal is BrokerSignal.SHRINK:
            overshoot = max(0, self.clerk.used - note.target)
            step = int(self.clerk.used * self.config.shrink_step)
            self.shrink(max(overshoot, step))

    def _evict_one(self) -> int:
        """Remove the least recently used entry, preferring cheap plans.

        Scans the LRU end for the entry with the lowest
        ``compile_cost`` among the two oldest — expensive plans get a
        second chance, which is the "cost" part of SQL Server's
        cost-based eviction clock.
        """
        keys = list(self._entries)
        candidates = keys[:2]
        victim_key = min(
            candidates, key=lambda k: self._entries[k].compile_cost)
        entry = self._entries.pop(victim_key)
        self.clerk.free(entry.nbytes)
        self.evictions += 1
        return entry.nbytes

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self.clerk.used

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
