"""DMV-style introspection of a running server.

SQL Server exposes its memory state through dynamic management views
(``sys.dm_os_memory_clerks``, ``sys.dm_exec_query_memory_grants``,
``sys.dm_exec_query_optimizer_memory_gateways``); operators of the
paper's feature watch exactly these.  This module provides the same
observability for the simulated server: structured snapshots plus a
rendered report, safe to call at any simulated instant.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.metrics.report import render_table
from repro.units import format_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import DatabaseServer


@dataclass(frozen=True)
class MemoryClerkRow:
    """One row of the memory-clerks view."""

    name: str
    used_bytes: int
    peak_bytes: int
    total_allocated: int


@dataclass(frozen=True)
class GatewayRow:
    """One row of the optimizer-memory-gateways view."""

    name: str
    threshold_bytes: int
    capacity: int
    active: int
    waiting: int
    acquires: int
    timeouts: int
    mean_wait: float


@dataclass(frozen=True)
class GrantQueueRow:
    """Aggregate state of the execution memory-grant queue."""

    capacity_bytes: int
    outstanding_bytes: int
    waiting: int
    grants: int
    timeouts: int
    mean_wait: float


@dataclass(frozen=True)
class CompilationRow:
    """One in-flight compilation."""

    label: str
    used_bytes: int
    peak_bytes: int


class ServerViews:
    """Snapshot accessors over one :class:`DatabaseServer`."""

    def __init__(self, server: "DatabaseServer"):
        self.server = server

    # -- views -----------------------------------------------------------
    def memory_clerks(self) -> List[MemoryClerkRow]:
        """Analogue of ``sys.dm_os_memory_clerks``."""
        return [MemoryClerkRow(name=clerk.name, used_bytes=clerk.used,
                               peak_bytes=clerk.peak,
                               total_allocated=clerk.total_allocated)
                for clerk in self.server.memory.clerks()]

    def memory_gateways(self) -> List[GatewayRow]:
        """Analogue of ``… query_optimizer_memory_gateways``."""
        governor = self.server.governor
        rows = []
        for gateway, threshold in zip(governor.gateways,
                                      governor.thresholds):
            rows.append(GatewayRow(
                name=gateway.name, threshold_bytes=threshold,
                capacity=gateway.capacity, active=gateway.active,
                waiting=gateway.waiting,
                acquires=gateway.stats.acquires,
                timeouts=gateway.stats.timeouts,
                mean_wait=gateway.stats.mean_wait()))
        return rows

    def grant_queue(self) -> GrantQueueRow:
        """Analogue of ``sys.dm_exec_query_memory_grants`` (aggregate)."""
        semaphore = self.server.grant_semaphore
        return GrantQueueRow(
            capacity_bytes=semaphore.capacity_bytes,
            outstanding_bytes=semaphore.outstanding_bytes,
            waiting=semaphore.queued,
            grants=semaphore.stats.grants,
            timeouts=semaphore.stats.timeouts,
            mean_wait=semaphore.stats.mean_wait())

    def compilations(self) -> List[CompilationRow]:
        """In-flight compilations with their memory accounts."""
        return [CompilationRow(label=str(label), used_bytes=account.used,
                               peak_bytes=account.peak)
                for label, account
                in self.server.pipeline.live_accounts.items()]

    def summary(self) -> Dict[str, float]:
        """One-line health summary (counters plus derived rates)."""
        server = self.server
        return {
            "now": server.env.now,
            "memory_used": server.memory.used,
            "memory_available": server.memory.available,
            "oom_count": server.memory.oom_count,
            "buffer_pool_hit_rate": server.buffer_pool.hit_rate(),
            "plan_cache_entries": len(server.plan_cache),
            "plan_cache_hit_rate": server.plan_cache.hit_rate(),
            "active_compilations": server.pipeline.active,
            "degraded_plans": server.pipeline.degraded_plans,
            "search_replays": server.pipeline.search_replays,
            "soft_denials": server.pipeline.soft_denials,
            "broker_pressure": float(server.broker.under_pressure),
            "broker_sweeps": server.broker.sweeps,
        }

    def snapshot(self) -> Dict:
        """All views as one JSON-ready document.

        The structured sibling of :meth:`report`: everything an
        operator dashboard (or a shard artifact post-mortem) needs in
        one serializable value — plain dicts and lists only, safe to
        ``json.dump`` as-is.
        """
        return {
            "summary": self.summary(),
            "memory_clerks": [asdict(row) for row in self.memory_clerks()],
            "memory_gateways": [asdict(row)
                                for row in self.memory_gateways()],
            "grant_queue": asdict(self.grant_queue()),
            "compilations": [asdict(row) for row in self.compilations()],
        }

    # -- rendering ------------------------------------------------------------
    def report(self) -> str:
        """Render all views as one plain-text status report."""
        parts = [f"server status at t={self.server.env.now:.1f}s"]

        clerk_rows = [(r.name, format_bytes(r.used_bytes),
                       format_bytes(r.peak_bytes))
                      for r in self.memory_clerks()]
        parts.append("\nmemory clerks:")
        parts.append(render_table(("clerk", "used", "peak"), clerk_rows))

        gw_rows = [(r.name, format_bytes(r.threshold_bytes),
                    f"{r.active}/{r.capacity}", r.waiting, r.timeouts)
                   for r in self.memory_gateways()]
        parts.append("\ncompilation gateways:")
        parts.append(render_table(
            ("monitor", "threshold", "active/cap", "waiting", "timeouts"),
            gw_rows))

        grant = self.grant_queue()
        parts.append(
            f"\ngrant queue: {format_bytes(grant.outstanding_bytes)} of "
            f"{format_bytes(grant.capacity_bytes)} outstanding, "
            f"{grant.waiting} waiting, {grant.timeouts} timeouts")

        pipeline = self.server.pipeline
        parts.append(
            f"\ncompilation counters: {pipeline.compilations} compiled, "
            f"{pipeline.degraded_plans} degraded, "
            f"{pipeline.search_replays} search replays, "
            f"{pipeline.soft_denials} soft denials")

        compiles = self.compilations()
        if compiles:
            parts.append("\nin-flight compilations:")
            parts.append(render_table(
                ("label", "used", "peak"),
                [(c.label, format_bytes(c.used_bytes),
                  format_bytes(c.peak_bytes)) for c in compiles]))
        return "\n".join(parts)
