"""One query's journey through the server."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import QueryError
from repro.execution.operators import build_profile
from repro.plancache.cache import query_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import DatabaseServer


@dataclass
class QueryOutcome:
    """What the client sees, plus the timing breakdown."""

    ok: bool
    error_kind: Optional[str] = None
    error_message: str = ""
    cached_plan: bool = False
    degraded_plan: bool = False
    compile_time: float = 0.0
    gateway_wait: float = 0.0
    grant_wait: float = 0.0
    execution_time: float = 0.0
    compile_peak_bytes: int = 0
    spilled: bool = False
    output_rows: float = 0.0


class Session:
    """Executes one query text against the server."""

    def __init__(self, server: "DatabaseServer"):
        self.server = server

    def run(self, text: str, label: str = ""):
        """Process generator: cache lookup → compile → execute.

        Always returns a :class:`QueryOutcome`; per-query failures are
        captured, not raised, so the client can decide to retry.
        """
        server = self.server
        env = server.env
        outcome = QueryOutcome(ok=False)
        key = query_hash(text)
        try:
            cached = server.plan_cache.get(key, now=env.now)
            if cached is not None:
                compiled = cached.plan
                outcome.cached_plan = True
            else:
                compiled = yield from server.pipeline.compile(text, label)
                outcome.compile_time = compiled.compile_time
                outcome.gateway_wait = compiled.gateway_wait
                outcome.compile_peak_bytes = compiled.peak_memory
                outcome.degraded_plan = compiled.degraded
                server.plan_cache.put(
                    key, compiled, compiled.cache_bytes,
                    compile_cost=compiled.compile_time, now=env.now)

            profile = build_profile(compiled.plan, server.catalog,
                                    server.optimizer.cost_model)
            execution = yield from server.executor.execute(
                profile, server.catalog)
            outcome.grant_wait = execution.grant_wait
            outcome.execution_time = execution.elapsed
            outcome.spilled = execution.spilled
            outcome.output_rows = profile.output_rows
            outcome.ok = True
        except QueryError as exc:
            outcome.error_kind = exc.kind
            outcome.error_message = str(exc)
        except Exception as exc:
            # non-query errors are still returned to the client, tagged
            # distinctly so tests can spot unexpected failure modes
            outcome.error_kind = type(exc).__name__
            outcome.error_message = str(exc)
        return outcome
