"""The integrated database server."""

from __future__ import annotations

from typing import Optional

from repro.broker.broker import BrokerSignal, MemoryBroker
from repro.catalog.catalog import Catalog
from repro.compilation.pipeline import CompilationPipeline
from repro.config import ServerConfig
from repro.execution.executor import QueryExecutor
from repro.execution.grants import ResourceSemaphore
from repro.memory.manager import MemoryManager
from repro.metrics.collector import MetricsCollector
from repro.optimizer.optimizer import Optimizer
from repro.plancache.cache import PlanCache
from repro.server.scheduler import CpuScheduler
from repro.server.session import QueryOutcome, Session
from repro.sim import Environment
from repro.sql.binder import Binder
from repro.storage.bufferpool import BufferPool
from repro.storage.disk import DiskModel
from repro.throttle.governor import CompilationGovernor


class DatabaseServer:
    """A simulated DBMS with the paper's memory-management stack.

    Parameters
    ----------
    config:
        Full server configuration (hardware, throttling, broker, …).
    catalog:
        Schema + statistics of the attached database (workload modules
        build this).
    env:
        Optional existing simulation environment; a fresh one is
        created when omitted.
    metrics:
        Optional existing collector (experiments share one between the
        server and the load generator).
    """

    def __init__(self, config: ServerConfig, catalog: Catalog,
                 env: Optional[Environment] = None,
                 metrics: Optional[MetricsCollector] = None):
        self.config = config
        self.catalog = catalog
        self.env = env or Environment()
        self.metrics = metrics or MetricsCollector()
        scale = config.time_scale
        hw = config.hardware

        # -- substrates -----------------------------------------------------
        self.memory = MemoryManager(hw.physical_memory)
        self.disk = DiskModel(self.env, hw, time_scale=scale)
        floor = int(hw.physical_memory
                    * config.broker.buffer_pool_floor_fraction)
        self.buffer_pool = BufferPool(self.env, self.memory, self.disk,
                                      floor_bytes=floor)
        self.plan_cache = PlanCache(self.memory, config.plan_cache)
        self.scheduler = CpuScheduler(self.env, hw, time_scale=scale)

        # -- compilation side --------------------------------------------------
        self.compile_clerk = self.memory.clerk("compilation")
        self.governor = CompilationGovernor(
            self.env, config.throttle, hw.cpus, time_scale=scale)
        self.optimizer = Optimizer(
            catalog,
            effort_multiplier=config.optimizer_effort,
            memory_multiplier=config.optimizer_memory_multiplier,
            spec=config.optimizer)
        self.binder = Binder(catalog)
        self.broker = MemoryBroker(self.env, self.memory, config.broker,
                                   time_scale=scale)
        best_plan = (config.throttle.enabled
                     and config.throttle.best_plan_so_far)
        if config.broker.enabled:
            # soft-grant handshake: compilation allocations consult the
            # broker before touching physical memory (extension (b))
            self.compile_clerk.advisor = self.broker.advise_compile_grant
        self.pipeline = CompilationPipeline(
            self.env, self.scheduler, self.governor, self.optimizer,
            self.binder, self.compile_clerk,
            broker=self.broker if config.broker.enabled else None,
            best_plan_so_far=best_plan, time_scale=scale)

        # -- execution side -----------------------------------------------------
        workspace_clerk = self.memory.clerk("workspace")
        workspace_bytes = int(hw.physical_memory
                              * config.execution.workspace_fraction)
        self.grant_semaphore = ResourceSemaphore(
            self.env, workspace_clerk, workspace_bytes)
        self.executor = QueryExecutor(
            self.env, self.scheduler, self.buffer_pool,
            self.grant_semaphore, config.execution, time_scale=scale)

        self._wire_broker()
        self._started = False

    # -- broker wiring ------------------------------------------------------
    def _wire_broker(self) -> None:
        self.broker.subscribe("buffer_pool", self._on_buffer_pool_note)
        self.broker.subscribe("plan_cache",
                              self.plan_cache.on_broker_notification)
        self.broker.subscribe("compilation", self._on_compilation_note)

    def _on_buffer_pool_note(self, note) -> None:
        if note.signal is BrokerSignal.GROW:
            self.buffer_pool.set_target(None)
        else:
            self.buffer_pool.set_target(note.target)

    def _on_compilation_note(self, note) -> None:
        """Feed the broker's compilation target to the dynamic
        gateway-threshold computation (extension (a))."""
        if note.signal is BrokerSignal.GROW:
            self.governor.set_compile_target(None)
        else:
            self.governor.set_compile_target(self.broker.compile_target())

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Launch background processes (broker sweeps, memory sampling)."""
        if self._started:
            return
        self._started = True
        self.broker.start()
        self.env.process(self._memory_sampler())

    def _memory_sampler(self):
        """Sample per-clerk memory into the metrics collector."""
        interval = max(self.config.broker.interval,
                       1.0) / self.config.time_scale
        while True:
            yield self.env.timeout(interval)
            self.metrics.sample_memory(self.env.now,
                                       self.memory.usage_by_clerk())

    # -- introspection -----------------------------------------------------------
    def views(self):
        """DMV-style snapshot views (see :mod:`repro.server.dmv`)."""
        from repro.server.dmv import ServerViews

        return ServerViews(self)

    # -- query entry points --------------------------------------------------------
    def session(self) -> Session:
        return Session(self)

    def run_query(self, text: str, label: str = ""):
        """Process generator: run one query, returning QueryOutcome."""
        return Session(self).run(text, label)

    def submit(self, text: str, label: str = ""):
        """Start a query as a detached process; returns the Process
        (wait on it to get the QueryOutcome)."""
        return self.env.process(self.run_query(text, label))

    # -- convenience for tests/examples ------------------------------------------------
    def execute_sync(self, text: str) -> QueryOutcome:
        """Run one query to completion on a quiet server."""
        process = self.submit(text)
        self.env.run()
        return process.value
