"""The integrated database server.

:class:`~repro.server.server.DatabaseServer` wires every substrate
together — memory manager, disk, buffer pool, plan cache, CPU
scheduler, compilation pipeline with throttling governor, execution
engine with memory grants, and the Memory Broker — into one simulated
process a workload can submit queries to.
"""

from repro.server.scheduler import CpuScheduler
from repro.server.session import QueryOutcome, Session
from repro.server.server import DatabaseServer
from repro.server.dmv import ServerViews

__all__ = ["CpuScheduler", "DatabaseServer", "QueryOutcome",
           "ServerViews", "Session"]
