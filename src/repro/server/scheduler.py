"""A cooperative CPU scheduler (SQLOS-style).

All CPU work — optimization steps, hash builds, probes — flows through
:meth:`CpuScheduler.consume`, which slices the work into quanta and
competes for one of the machine's CPUs per quantum.  Under overload the
runnable queue grows and every task progresses more slowly, which is
the paper's Figure 2 observation that a throttled thread "sometimes
receives less time for its work" without any explicit slowdown being
scripted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HardwareConfig
from repro.sim import Environment, Resource


@dataclass
class CpuStats:
    """Cumulative scheduler counters."""

    busy_time: float = 0.0
    quanta: int = 0
    queue_wait: float = 0.0


class CpuScheduler:
    """``cpus`` processors served FIFO in fixed quanta."""

    #: seconds of CPU work per scheduling quantum (simulated)
    QUANTUM = 1.0

    def __init__(self, env: Environment, hardware: HardwareConfig,
                 time_scale: float = 1.0):
        self.env = env
        self.hardware = hardware
        self._time_scale = time_scale
        self._cpus = Resource(env, capacity=hardware.cpus)
        self.stats = CpuStats()

    @property
    def runnable(self) -> int:
        """Tasks waiting for a CPU right now."""
        return self._cpus.queued

    def consume(self, cpu_seconds: float):
        """Process generator: burn ``cpu_seconds`` of CPU work.

        The work is divided by the hardware's speed multiplier and
        executed quantum by quantum, requeueing after each quantum so
        concurrent tasks interleave fairly.
        """
        remaining = cpu_seconds / self.hardware.cpu_speed
        while remaining > 1e-12:
            quantum = min(self.QUANTUM, remaining)
            started = self.env.now
            req = self._cpus.request()
            yield req
            self.stats.queue_wait += self.env.now - started
            try:
                yield self.env.timeout(quantum / self._time_scale)
            finally:
                self._cpus.release(req)
            self.stats.busy_time += quantum
            self.stats.quanta += 1
            remaining -= quantum
