"""The cell wire protocol: stream cells to a worker pool over TCP.

One coordinator (:class:`CellQueueServer`, usually wrapped by
:class:`~repro.experiments.executors.StreamExecutor`) owns the cell
queue; any number of workers (:func:`run_worker`, the loop behind
``repro workers join``) connect and *pull* cells one at a time —
pull-based scheduling is the work stealing: a fast worker simply asks
again sooner, so runtime imbalance never strands cells the way a
static ``k/N`` shard assignment can.

Messages are newline-delimited JSON objects; every payload reuses the
schema-3/4 shard-document shapes (cells as ``[scenario, variant,
seed]`` triples, specs as their ``to_dict`` documents, results as
``summarize_result`` summaries), so the wire format is the artifact
format and nothing needs a second serializer.

The conversation::

    worker                        coordinator
    ------                        -----------
    {"op": "hello", ...}     ->
                             <-   {"op": "welcome", "protocol": 1, ...}
    {"op": "next"}           ->
                             <-   {"op": "cell", "task": {...}}
    {"op": "result", ...}    ->
    {"op": "next"}           ->
                             <-   {"op": "drain"}        (queue is done)

Fault model: a worker that disconnects mid-cell gets its cell
re-queued for the survivors; a duplicate result for an already-merged
cell is ignored (results are deterministic, so either copy is
correct).  Workers may join at any time, including before the queue
has work.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.experiments.engine import ARTIFACT_SCHEMA, _trim_search_pool

#: version of the wire conversation itself (bump on incompatible
#: message-flow changes; payload evolution rides ARTIFACT_SCHEMA)
WIRE_PROTOCOL = 1


class WireError(ReproError):
    """A wire-protocol failure (handshake mismatch, malformed frame,
    or a queue served to completion-impossible state)."""


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` address (port 0 = pick an ephemeral one)."""
    host, sep, port_text = text.rpartition(":")
    try:
        if not sep or not host:
            raise ValueError
        port = int(port_text)
        if not 0 <= port <= 65535:
            raise ValueError
    except ValueError:
        raise ConfigurationError(
            f"address must look like host:port (e.g. 127.0.0.1:7731), "
            f"got {text!r}") from None
    return host, port


# ------------------------------------------------------------- framing
def send_message(stream, doc: dict) -> None:
    """Write one newline-delimited JSON message."""
    stream.write(json.dumps(doc, separators=(",", ":")).encode("utf-8")
                 + b"\n")
    stream.flush()


def recv_message(stream) -> Optional[dict]:
    """Read one message; ``None`` means the peer disconnected."""
    line = stream.readline()
    if not line:
        return None
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed wire frame: {exc}") from None
    if not isinstance(doc, dict) or "op" not in doc:
        raise WireError(f"wire message must be an object with an op, "
                        f"got {doc!r}")
    return doc


# --------------------------------------------------------- coordinator
class CellQueueServer:
    """The coordinator side: a served cell queue with re-queue on loss.

    ``start()`` binds and begins accepting workers (who may connect
    and block before any work exists); ``serve(tasks)`` enqueues the
    tasks and yields results as workers deliver them, re-queuing the
    cell of any worker that disconnects mid-flight.  ``serve`` may be
    called again for further batches — workers idle between batches
    and are only told to drain by ``close()``/``cancel()``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._requested = (host, port)
        self.address: Optional[Tuple[str, int]] = None
        self._listener: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._pending: deque = deque()
        self._done: set = set()
        self._expected: set = set()
        self._draining = False
        self._cancelled = False
        self._results: "deque" = deque()
        self._delivered = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        #: observability: how many cells were re-queued after a worker
        #: loss, how many workers ever said hello, and how many are
        #: connected right now
        self.requeues = 0
        self.workers_seen = 0
        self.active_workers = 0
        #: per-batch claim callback (see :meth:`serve`)
        self._on_dispatch: Optional[Callable] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._requested)
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._accept_thread = accept
        return self.address

    def close(self) -> None:
        with self._lock:
            self._draining = True
            self._work.notify_all()
        # give handlers a moment to send their drain frames, so well-
        # behaved workers exit cleanly on an explicit drain instead of
        # seeing a severed socket and reporting a coordinator loss
        deadline = time.monotonic() + 5.0
        for thread in list(self._threads):
            if thread is threading.current_thread():
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._listener = None

    def cancel(self) -> None:
        """Drop the pending queue; in-flight cells may still finish."""
        with self._lock:
            self._cancelled = True
            self._pending.clear()
            self._work.notify_all()
            self._delivered.notify_all()

    # -- serving ---------------------------------------------------------
    def serve(self, tasks: Iterable, timeout: Optional[float] = None,
              liveness: Optional[Callable[[], None]] = None,
              on_dispatch: Optional[Callable] = None) -> Iterator:
        """Enqueue ``tasks``; yield one result per cell as delivered.

        ``timeout`` bounds the wait for *each* next result; expiring
        raises :class:`WireError` naming the still-outstanding cells
        (a hung or worker-less queue fails loudly, never silently).
        ``liveness`` is invoked every few seconds while waiting; it may
        raise to abort the wait (the stream executor uses it to detect
        that every worker it spawned has died).  ``on_dispatch(task)``
        is invoked from the handling thread each time a worker claims
        a cell — the wire-level dispatch moment a run journal records.
        """
        self.start()
        self._on_dispatch = on_dispatch
        tasks = list(tasks)
        expected = {task.cell for task in tasks}
        if len(expected) != len(tasks):
            raise ConfigurationError("duplicate cells in submission")
        with self._lock:
            if self._draining:
                raise WireError("cell queue server is closed")
            self._expected = set(expected)
            self._done -= expected  # allow re-running cells next batch
            # stale deliveries and queued tasks from an aborted earlier
            # batch must not count against this one: drop both and let
            # the batch's own cells run fresh (re-execution is safe —
            # results are deterministic — and _done dedups deliveries)
            self._results.clear()
            self._pending.clear()
            self._pending.extend(tasks)
            self._work.notify_all()
        served = 0
        while served < len(expected):
            with self._lock:
                deadline = None if timeout is None \
                    else time.monotonic() + timeout
                while not self._results and not self._cancelled:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        outstanding = sorted(
                            cell.describe() for cell in expected
                            if cell not in self._done)
                        raise WireError(
                            f"no worker progress within {timeout:.0f}s; "
                            f"outstanding cell(s): "
                            + ", ".join(outstanding))
                    slice_ = 2.0 if remaining is None \
                        else min(2.0, remaining)
                    self._delivered.wait(timeout=slice_)
                    if liveness is not None:
                        liveness()
                if self._cancelled and not self._results:
                    return
                result = self._results.popleft()
            served += 1
            yield result

    # -- connection handling ---------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener  # close() nulls the attribute
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:  # listener closed
                return
            handler = threading.Thread(target=self._handle,
                                       args=(conn,), daemon=True)
            handler.start()
            with self._lock:
                # prune finished handlers so a long-lived coordinator
                # doesn't accumulate one dead Thread per connection
                self._threads = [thread for thread in self._threads
                                 if thread.is_alive()]
                self._threads.append(handler)

    def _handle(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        assigned = None
        welcomed = False
        try:
            hello = recv_message(stream)
            if hello is None or hello.get("op") != "hello":
                return
            if hello.get("protocol") != WIRE_PROTOCOL:
                send_message(stream, {
                    "op": "reject",
                    "reason": f"wire protocol {hello.get('protocol')!r} "
                              f"!= {WIRE_PROTOCOL}"})
                return
            if hello.get("schema") != ARTIFACT_SCHEMA:
                # a stale worker's summaries would silently corrupt a
                # merged artifact; refuse at the handshake instead
                send_message(stream, {
                    "op": "reject",
                    "reason": f"artifact schema {hello.get('schema')!r} "
                              f"!= {ARTIFACT_SCHEMA}"})
                return
            with self._lock:
                self.workers_seen += 1
                self.active_workers += 1
                welcomed = True
            send_message(stream, {"op": "welcome",
                                  "protocol": WIRE_PROTOCOL,
                                  "schema": ARTIFACT_SCHEMA})
            while True:
                message = recv_message(stream)
                if message is None:
                    return
                op = message.get("op")
                if op == "next":
                    task = self._claim()
                    if task is None:
                        send_message(stream, {"op": "drain"})
                        return
                    assigned = task
                    dispatch = self._on_dispatch
                    if dispatch is not None:
                        dispatch(task)
                    send_message(stream, {"op": "cell",
                                          "task": task.to_doc()})
                elif op == "result":
                    self._deliver(message.get("result"))
                    assigned = None
                else:
                    raise WireError(f"unexpected worker op {op!r}")
        except (WireError, OSError):
            pass  # treated as a worker loss; the cell is re-queued
        finally:
            if welcomed:
                with self._lock:
                    self.active_workers -= 1
            if assigned is not None:
                self._requeue(assigned)
            try:
                stream.close()
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _claim(self):
        """Block until a cell is available; ``None`` means drain."""
        with self._lock:
            while not self._pending:
                if self._draining or self._cancelled:
                    return None
                self._work.wait()
            return self._pending.popleft()

    def _deliver(self, doc) -> None:
        from repro.experiments.executors import CellResult

        try:
            result = CellResult.from_doc(doc)
        except ConfigurationError as exc:
            # malformed payload = worker loss: the handler's except
            # clause severs the connection and re-queues the cell
            raise WireError(f"malformed result payload: {exc}") from None
        with self._lock:
            if result.cell not in self._expected:
                return  # stale delivery from an aborted earlier batch
            if result.cell in self._done:
                return  # duplicate of a re-queued cell; either copy is fine
            self._done.add(result.cell)
            self._results.append(result)
            self._delivered.notify_all()

    def _requeue(self, task) -> None:
        with self._lock:
            if task.cell in self._done or self._cancelled:
                return
            self.requeues += 1
            self._pending.appendleft(task)
            self._work.notify_all()


# -------------------------------------------------------------- worker
def run_worker(host: str, port: int,
               progress: Optional[Callable[[str], None]] = None) -> int:
    """The ``repro workers join`` loop: pull, execute, push, repeat.

    Connects to a coordinator, pulls cells until it drains, and runs
    each through the shared :func:`~repro.experiments.executors.
    execute_cell` primitive with a worker-local recorded-search pool.
    Returns how many cells this worker executed.  Exceptions inside a
    cell become error results (shipped back, never crashing the
    worker); protocol failures raise :class:`WireError`.
    """
    from repro.experiments.executors import CellResult, CellTask, \
        execute_cell

    try:
        conn = socket.create_connection((host, port))
    except OSError as exc:
        raise WireError(
            f"cannot reach coordinator at {host}:{port}: {exc}") from None
    stream = conn.makefile("rwb")
    executed = 0
    try:
        send_message(stream, {"op": "hello", "protocol": WIRE_PROTOCOL,
                              "schema": ARTIFACT_SCHEMA})
        welcome = recv_message(stream)
        if welcome is None or welcome.get("op") == "reject":
            reason = (welcome or {}).get("reason", "connection closed")
            raise WireError(f"coordinator rejected worker: {reason}")
        if welcome.get("op") != "welcome" \
                or welcome.get("protocol") != WIRE_PROTOCOL \
                or welcome.get("schema") != ARTIFACT_SCHEMA:
            raise WireError(f"unexpected handshake reply: {welcome!r}")
        searches: dict = {}
        while True:
            send_message(stream, {"op": "next"})
            message = recv_message(stream)
            if message is None:
                # only an explicit drain means the queue completed; a
                # severed connection is a coordinator loss, not success
                raise WireError(
                    f"connection to coordinator lost after "
                    f"{executed} cell(s), before the queue drained")
            if message.get("op") == "drain":
                return executed
            if message.get("op") != "cell":
                raise WireError(
                    f"unexpected coordinator op {message.get('op')!r}")
            task = CellTask.from_doc(message.get("task"))
            if progress is not None:
                progress(f"cell {task.cell.describe()}")
            try:
                result = execute_cell(task, shared_searches=searches)
            except Exception as exc:  # noqa: BLE001 - ship, don't die
                result = CellResult(cell=task.cell,
                                    error=f"{type(exc).__name__}: {exc}")
            _trim_search_pool(searches)
            send_message(stream, {"op": "result",
                                  "result": result.to_doc()})
            executed += 1
    finally:
        try:
            stream.close()
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
