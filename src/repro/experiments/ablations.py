"""Ablations of the design choices the paper reports tuning (§4.1).

* gateway count — "Experimental analysis showed that dividing query
  compilations into four memory usage categories gives the best
  balance";
* static vs dynamic thresholds (extension a);
* best-plan-so-far vs hard out-of-memory failures (extension b).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config import (
    GatewayConfig,
    ServerConfig,
    ThrottleConfig,
    default_gateways,
    paper_server_config,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    make_workload,
    run_experiment,
)
from repro.units import MiB


def gateway_ladder(count: int) -> Tuple[GatewayConfig, ...]:
    """The first ``count`` monitors of the default ladder (0 = throttle
    disabled entirely)."""
    if not 0 <= count <= 3:
        raise ValueError("gateway count must be 0..3")
    return default_gateways()[:count]


def config_with_gateways(count: int) -> ServerConfig:
    """A paper config restricted to ``count`` monitors."""
    base = paper_server_config(throttling=count > 0)
    if count == 0:
        return base
    throttle = replace(base.throttle, gateways=gateway_ladder(count))
    return replace(base, throttle=throttle)


def config_with_dynamic(dynamic: bool) -> ServerConfig:
    base = paper_server_config(throttling=True)
    return replace(base, throttle=replace(base.throttle,
                                          dynamic_thresholds=dynamic))


def config_with_best_plan(enabled: bool) -> ServerConfig:
    base = paper_server_config(throttling=True)
    return replace(base, throttle=replace(base.throttle,
                                          best_plan_so_far=enabled))


@dataclass
class AblationResult:
    """One ablation sweep: variant label -> run result."""

    name: str
    results: Dict[str, ExperimentResult]

    def completions(self) -> Dict[str, int]:
        return {label: r.completed for label, r in self.results.items()}

    def errors(self) -> Dict[str, int]:
        return {label: r.failed for label, r in self.results.items()}


def _run_variants(name: str, variants: Dict[str, ServerConfig],
                  clients: int, preset: str, seed: int,
                  workload_name: str = "sales") -> AblationResult:
    workload = make_workload(workload_name)
    results: Dict[str, ExperimentResult] = {}
    for label, server_config in variants.items():
        config = ExperimentConfig(
            workload=workload_name, clients=clients,
            throttling=server_config.throttle.enabled, preset=preset,
            seed=seed, server_overrides=server_config)
        results[label] = run_experiment(config, workload=workload)
    return AblationResult(name=name, results=results)


def ablate_gateway_count(clients: int = 30, preset: str = "smoke",
                         seed: int = 1) -> AblationResult:
    """ABL-GATES: 0, 1, 2 and 3 monitors."""
    variants = {f"{n}_monitors": config_with_gateways(n)
                for n in (0, 1, 2, 3)}
    return _run_variants("gateway_count", variants, clients, preset, seed)


def ablate_dynamic_thresholds(clients: int = 35, preset: str = "smoke",
                              seed: int = 1) -> AblationResult:
    """ABL-DYN: static vs broker-driven thresholds."""
    variants = {
        "static": config_with_dynamic(False),
        "dynamic": config_with_dynamic(True),
    }
    return _run_variants("dynamic_thresholds", variants, clients, preset,
                         seed)


def ablate_best_plan(clients: int = 40, preset: str = "smoke",
                     seed: int = 1) -> AblationResult:
    """ABL-BPSF: best-plan-so-far on/off."""
    variants = {
        "hard_oom": config_with_best_plan(False),
        "best_plan": config_with_best_plan(True),
    }
    return _run_variants("best_plan_so_far", variants, clients, preset,
                         seed)
