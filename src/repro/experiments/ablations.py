"""Ablations of the design choices the paper reports tuning (§4.1).

* gateway count — "Experimental analysis showed that dividing query
  compilations into four memory usage categories gives the best
  balance";
* static vs dynamic thresholds (extension a);
* best-plan-so-far vs hard out-of-memory failures (extension b).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config import (
    GatewayConfig,
    ServerConfig,
    ThrottleConfig,
    default_gateways,
    paper_server_config,
)
from repro.experiments.engine import ExperimentJob, run_jobs
from repro.experiments.runner import ExperimentConfig, ExperimentResult
from repro.units import MiB


def gateway_ladder(count: int) -> Tuple[GatewayConfig, ...]:
    """The first ``count`` monitors of the default ladder (0 = throttle
    disabled entirely)."""
    if not 0 <= count <= 3:
        raise ValueError("gateway count must be 0..3")
    return default_gateways()[:count]


def config_with_gateways(count: int) -> ServerConfig:
    """A paper config restricted to ``count`` monitors."""
    base = paper_server_config(throttling=count > 0)
    if count == 0:
        return base
    throttle = replace(base.throttle, gateways=gateway_ladder(count))
    return replace(base, throttle=throttle)


def config_with_dynamic(dynamic: bool) -> ServerConfig:
    base = paper_server_config(throttling=True)
    return replace(base, throttle=replace(base.throttle,
                                          dynamic_thresholds=dynamic))


def config_with_best_plan(enabled: bool) -> ServerConfig:
    base = paper_server_config(throttling=True)
    return replace(base, throttle=replace(base.throttle,
                                          best_plan_so_far=enabled))


@dataclass
class AblationResult:
    """One ablation sweep: variant label -> run result."""

    name: str
    results: Dict[str, ExperimentResult]

    def completions(self) -> Dict[str, int]:
        return {label: r.completed for label, r in self.results.items()}

    def errors(self) -> Dict[str, int]:
        return {label: r.failed for label, r in self.results.items()}


def jobs_from_variants(variants: Dict[str, ServerConfig], clients: int,
                       preset: str, seed: int,
                       workload_name: str = "sales",
                       prefix: str = "") -> List[ExperimentJob]:
    """One :class:`ExperimentJob` per server-config variant — the
    single mapping used by both the ablate_* entry points and the
    engine's flat suite, so they can never run different configs."""
    return [ExperimentJob(
        name=f"{prefix}{label}",
        config=ExperimentConfig(
            workload=workload_name, clients=clients,
            throttling=server_config.throttle.enabled, preset=preset,
            seed=seed, server_overrides=server_config))
        for label, server_config in variants.items()]


def _run_variants(name: str, variants: Dict[str, ServerConfig],
                  clients: int, preset: str, seed: int,
                  workload_name: str = "sales",
                  workers: int = 1) -> AblationResult:
    """Run every variant through the experiment engine.

    With ``workers > 1`` the variants fan out across processes; the
    result dict always preserves the variant declaration order.
    """
    jobs = jobs_from_variants(variants, clients, preset, seed,
                              workload_name=workload_name)
    batch = run_jobs(jobs, workers=workers)
    if batch.errors:
        failures = ", ".join(f"{k}: {v}" for k, v in batch.errors.items())
        raise RuntimeError(f"ablation {name!r} had failing runs: {failures}")
    results = {label: batch.results[label] for label in variants}
    return AblationResult(name=name, results=results)


def gateway_variants() -> Dict[str, ServerConfig]:
    return {f"{n}_monitors": config_with_gateways(n) for n in (0, 1, 2, 3)}


def dynamic_variants() -> Dict[str, ServerConfig]:
    return {
        "static": config_with_dynamic(False),
        "dynamic": config_with_dynamic(True),
    }


def best_plan_variants() -> Dict[str, ServerConfig]:
    return {
        "hard_oom": config_with_best_plan(False),
        "best_plan": config_with_best_plan(True),
    }


#: every ablation: (suite prefix, default clients, variant factory) —
#: the single source for both the ablate_* entry points and the
#: engine's flat suite, so the two can never drift apart
ABLATIONS = (
    ("gates", 30, gateway_variants),
    ("dyn", 35, dynamic_variants),
    ("bpsf", 40, best_plan_variants),
)


def ablate_gateway_count(clients: int = 30, preset: str = "smoke",
                         seed: int = 1, workers: int = 1) -> AblationResult:
    """ABL-GATES: 0, 1, 2 and 3 monitors."""
    return _run_variants("gateway_count", gateway_variants(), clients,
                         preset, seed, workers=workers)


def ablate_dynamic_thresholds(clients: int = 35, preset: str = "smoke",
                              seed: int = 1,
                              workers: int = 1) -> AblationResult:
    """ABL-DYN: static vs broker-driven thresholds."""
    return _run_variants("dynamic_thresholds", dynamic_variants(), clients,
                         preset, seed, workers=workers)


def ablate_best_plan(clients: int = 40, preset: str = "smoke",
                     seed: int = 1, workers: int = 1) -> AblationResult:
    """ABL-BPSF: best-plan-so-far on/off."""
    return _run_variants("best_plan_so_far", best_plan_variants(), clients,
                         preset, seed, workers=workers)


def ablation_suite_jobs(preset: str = "smoke",
                        seed: int = 1) -> list:
    """Every ablation variant as one flat engine batch."""
    jobs = []
    for prefix, clients, variant_factory in ABLATIONS:
        jobs.extend(jobs_from_variants(
            variant_factory(), clients, preset, seed,
            prefix=f"{prefix}_"))
    return jobs
