"""Ablations of the design choices the paper reports tuning (§4.1).

* gateway count — "Experimental analysis showed that dividing query
  compilations into four memory usage categories gives the best
  balance";
* static vs dynamic thresholds (extension a);
* best-plan-so-far vs hard out-of-memory failures (extension b).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.config import (
    GatewayConfig,
    ServerConfig,
    default_gateways,
    paper_server_config,
)
from repro.experiments.runner import ExperimentResult


def gateway_ladder(count: int) -> Tuple[GatewayConfig, ...]:
    """The first ``count`` monitors of the default ladder (0 = throttle
    disabled entirely)."""
    if not 0 <= count <= 3:
        raise ValueError("gateway count must be 0..3")
    return default_gateways()[:count]


def config_with_gateways(count: int) -> ServerConfig:
    """A paper config restricted to ``count`` monitors."""
    base = paper_server_config(throttling=count > 0)
    if count == 0:
        return base
    throttle = replace(base.throttle, gateways=gateway_ladder(count))
    return replace(base, throttle=throttle)


def config_with_dynamic(dynamic: bool) -> ServerConfig:
    base = paper_server_config(throttling=True)
    return replace(base, throttle=replace(base.throttle,
                                          dynamic_thresholds=dynamic))


def config_with_best_plan(enabled: bool) -> ServerConfig:
    base = paper_server_config(throttling=True)
    return replace(base, throttle=replace(base.throttle,
                                          best_plan_so_far=enabled))


@dataclass
class AblationResult:
    """One ablation sweep: variant label -> run result."""

    name: str
    results: Dict[str, ExperimentResult]

    def completions(self) -> Dict[str, int]:
        return {label: r.completed for label, r in self.results.items()}

    def errors(self) -> Dict[str, int]:
        return {label: r.failed for label, r in self.results.items()}


def _run_scenario_ablation(name: str, spec, workers: int) -> AblationResult:
    """Run one ablation scenario through the facade.

    With ``workers > 1`` the variants fan out across processes; the
    result dict always preserves the variant declaration order.
    """
    from repro.scenarios import run_scenario

    scenario = run_scenario(spec, workers=workers)
    batch = scenario.batch
    if batch.errors:
        failures = ", ".join(f"{k}: {v}" for k, v in batch.errors.items())
        raise RuntimeError(f"ablation {name!r} had failing runs: {failures}")
    results = {variant.name: batch.results[variant.name]
               for variant in spec.variants}
    return AblationResult(name=name, results=results)


def gateway_variants() -> Dict[str, ServerConfig]:
    return {f"{n}_monitors": config_with_gateways(n) for n in (0, 1, 2, 3)}


def dynamic_variants() -> Dict[str, ServerConfig]:
    return {
        "static": config_with_dynamic(False),
        "dynamic": config_with_dynamic(True),
    }


def best_plan_variants() -> Dict[str, ServerConfig]:
    return {
        "hard_oom": config_with_best_plan(False),
        "best_plan": config_with_best_plan(True),
    }


def ablate_gateway_count(clients: int = 30, preset: str = "smoke",
                         seed: int = 1, workers: int = 1) -> AblationResult:
    """ABL-GATES: 0, 1, 2 and 3 monitors (scenario shim)."""
    from repro.scenarios import gateway_ablation_scenario

    return _run_scenario_ablation(
        "gateway_count",
        gateway_ablation_scenario(clients=clients, preset=preset,
                                  seed=seed),
        workers=workers)


def ablate_dynamic_thresholds(clients: int = 35, preset: str = "smoke",
                              seed: int = 1,
                              workers: int = 1) -> AblationResult:
    """ABL-DYN: static vs broker-driven thresholds (scenario shim)."""
    from repro.scenarios import dynamic_ablation_scenario

    return _run_scenario_ablation(
        "dynamic_thresholds",
        dynamic_ablation_scenario(clients=clients, preset=preset,
                                  seed=seed),
        workers=workers)


def ablate_best_plan(clients: int = 40, preset: str = "smoke",
                     seed: int = 1, workers: int = 1) -> AblationResult:
    """ABL-BPSF: best-plan-so-far on/off (scenario shim)."""
    from repro.scenarios import best_plan_ablation_scenario

    return _run_scenario_ablation(
        "best_plan_so_far",
        best_plan_ablation_scenario(clients=clients, preset=preset,
                                    seed=seed),
        workers=workers)


def ablation_suite_jobs(preset: str = "smoke",
                        seed: int = 1) -> list:
    """Every ablation variant as one flat engine batch, derived from
    the registered ablation scenarios."""
    from repro.scenarios import ABLATION_SCENARIOS, jobs_for_scenario

    jobs = []
    for _name, prefix, builder in ABLATION_SCENARIOS:
        spec = builder(preset=preset, seed=seed)
        jobs.extend(jobs_for_scenario(spec, prefix=f"{prefix}_"))
    return jobs
