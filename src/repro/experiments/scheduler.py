"""Latency-aware cell scheduling: run the slow cells first.

Cells are independent, so any order produces the same artifacts — but
order decides the *tail*: a queue that saves its slowest cell for last
leaves every other worker idle while one finishes.  A
:class:`CellScheduler` estimates each cell's wall-clock cost and
``--order cost`` submits the queue longest-first (LPT scheduling), so
runtime imbalance is absorbed early while there is still other work to
overlap with.

Cost estimates come from two sources, best first:

1. **Observed history** — per-cell ``wall_seconds`` recorded in prior
   run journals (:mod:`repro.experiments.journal`), in existing
   ``BENCH_*.json`` artifacts (per-variant summaries carry the wall
   clock of exactly one cell), and in a results warehouse
   (:mod:`repro.results` — the whole trajectory of past runs in one
   ``--warehouse`` file).
2. **Workload-size heuristics** — for cells never seen before: an
   experiment cell's cost scales with how many queries its run will
   simulate (clients × measured duration / think time, discounted by
   the preset's optimizer ``fast_factor``); monitors/trace renders are
   near-free constants.

Ordering is a pure scheduling decision: results are re-grouped by spec
afterwards, so ``--order cost`` never changes a single artifact byte
(pinned by tests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.executors import CellTask

#: queue orders the CLI accepts: ``spec`` (selection order, the
#: historical behaviour) and ``cost`` (expected-slowest first)
ORDER_NAMES = ("spec", "cost")

#: heuristic render costs (seconds-ish; only the relative magnitudes
#: matter) for the cell kinds that never touch the load generator
_RENDER_COSTS = {"monitors": 0.01, "trace": 0.1}


def heuristic_cost(task: CellTask) -> float:
    """A deterministic expected-cost proxy for a never-observed cell.

    Experiment cells: the number of queries the run will simulate —
    ``clients × measured window / think time`` — discounted by the
    preset's ``fast_factor`` (higher = cheaper optimizer searches).
    Monitors/trace cells render in microseconds and sort last.
    """
    from repro.experiments.runner import PRESETS

    spec = task.spec
    if spec.kind != "experiment":
        return _RENDER_COSTS.get(spec.kind, 0.01)
    variant = next((v for v in spec.variants
                    if v.name == task.cell.variant), None)
    clients = spec.clients
    think_time = spec.think_time
    if variant is not None:
        if variant.clients is not None:
            clients = variant.clients
        if variant.think_time is not None:
            think_time = variant.think_time
    preset = PRESETS.get(spec.preset)
    duration = (preset.warmup + preset.measure) if preset else 3000.0
    fast_factor = preset.fast_factor if preset else 1.0
    return clients * duration / max(think_time, 1.0) / max(fast_factor, 1.0)


@dataclass
class CellScheduler:
    """Orders a cell queue by expected cost, observed over heuristic.

    ``history`` maps :meth:`CellTask.key` labels
    (``scenario/variant#seed``) to observed wall seconds; cells
    without history fall back to :func:`heuristic_cost`.
    """

    history: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_sources(cls, journals: Sequence[str] = (),
                     artifact_dirs: Sequence[str] = (),
                     warehouses: Sequence[str] = ()
                     ) -> "CellScheduler":
        """Build a scheduler from journals, artifact dirs, warehouses.

        Sources are advisory: a path that does not exist or a document
        that does not carry usable timings contributes nothing (never
        an error — cost ordering must not make a run *harder* to
        start).  Later sources win on key collisions: artifacts, then
        warehouses (the aggregated trajectory), then journals — so the
        most recent observation of a cell is the one used.
        """
        scheduler = cls()
        for directory in artifact_dirs:
            scheduler.history.update(history_from_artifacts(directory))
        for path in warehouses:
            scheduler.history.update(history_from_warehouse(path))
        for path in journals:
            scheduler.history.update(history_from_journal(path))
        return scheduler

    def estimate(self, task: CellTask) -> float:
        observed = self.history.get(task.key())
        if observed is not None and observed > 0:
            return observed
        return heuristic_cost(task)

    def order(self, tasks: Iterable[CellTask]) -> List[CellTask]:
        """Expected-slowest first; ties keep submission order (the
        sort is stable), so the result is fully deterministic."""
        tasks = list(tasks)
        return sorted(tasks, key=lambda task: -self.estimate(task))


def order_tasks(tasks: Iterable[CellTask], order: str = "spec",
                scheduler: Optional[CellScheduler] = None
                ) -> List[CellTask]:
    """Apply a queue order by name — the one switch every surface uses."""
    tasks = list(tasks)
    if order == "spec":
        return tasks
    if order == "cost":
        return (scheduler or CellScheduler()).order(tasks)
    raise ConfigurationError(
        f"unknown queue order {order!r}; valid orders: "
        f"{', '.join(ORDER_NAMES)}")


# ------------------------------------------------------- cost history
def _cell_key(scenario_id: str, variant: str, seed) -> str:
    return f"{scenario_id}/{variant}#{seed}"


def history_from_state(state) -> Dict[str, float]:
    """Per-cell wall seconds from an already-loaded
    :class:`~repro.experiments.journal.JournalState` (what a resume
    has in hand anyway — no second parse of the journal file)."""
    return {
        _cell_key(cell.scenario_id, cell.variant, cell.seed):
            result.wall_seconds
        for cell, result in state.results.items()
        if result.ok and result.wall_seconds > 0
    }


def history_from_journal(path: str) -> Dict[str, float]:
    """Per-cell wall seconds observed in one run journal.

    Tolerant by design: a missing or unparseable journal contributes
    an empty history (the scheduler's sources are advisory, unlike a
    ``--resume`` which must parse).
    """
    from repro.experiments.journal import load_journal

    try:
        state = load_journal(path)
    except ConfigurationError:
        return {}
    return history_from_state(state)


def history_from_artifacts(directory: str) -> Dict[str, float]:
    """Per-cell wall seconds recorded in a ``BENCH_*.json`` directory.

    Reads per-variant summaries out of scenario artifacts and shard
    documents — each summary's ``wall_seconds`` is the wall clock of
    exactly one cell.  Non-experiment scenarios contribute their
    single render cell.  Malformed or schema-foreign documents are
    skipped, never fatal.
    """
    from repro.experiments.shards import iter_bench_documents

    history: Dict[str, float] = {}
    for _path, doc in iter_bench_documents(directory):
        if doc.get("kind") == "shard":
            entries = doc.get("scenarios")
        elif isinstance(doc.get("spec"), dict):
            entries = {doc["spec"].get("scenario_id"): doc}
        else:
            continue
        if not isinstance(entries, dict):
            continue
        for scenario_id, entry in entries.items():
            if not isinstance(entry, dict) or not scenario_id:
                continue
            history.update(_history_from_entry(scenario_id, entry))
    return history


def history_from_warehouse(path: str) -> Dict[str, float]:
    """Per-cell wall seconds recorded in a results warehouse.

    The warehouse (:mod:`repro.results`) aggregates *every* loaded
    run, so one ``--warehouse`` file replaces pointing the scheduler
    at a pile of artifact directories.  Rows are read oldest-run
    first, so the latest observation of each cell wins.  Tolerant
    like every history source: a missing file or a non-warehouse
    sqlite contributes an empty history.
    """
    import sqlite3

    if not path or not os.path.exists(path):
        return {}
    history: Dict[str, float] = {}
    try:
        connection = sqlite3.connect(path)
        try:
            rows = connection.execute(
                "SELECT c.scenario_id, c.variant, c.seed, m.value"
                " FROM metrics m JOIN cells c ON c.cell_id = m.cell_id"
                " WHERE m.metric = 'wall_seconds' AND m.value > 0"
                " ORDER BY m.run_id")
            for scenario_id, variant, seed, wall in rows:
                history[_cell_key(scenario_id, variant, seed)] = \
                    float(wall)
        finally:
            connection.close()
    except sqlite3.Error:
        return {}
    return history


def _history_from_entry(scenario_id: str, entry: dict) -> Dict[str, float]:
    spec_doc = entry.get("spec", {})
    if not isinstance(spec_doc, dict):
        return {}
    history: Dict[str, float] = {}
    if "results" in entry:
        # an experiment entry, even when every variant errored
        # (results == {}): per-variant summaries are the only honest
        # per-cell timings; the scenario-level wall clock includes
        # errored cells and must not be attributed to any one variant
        results = entry.get("results")
        if not isinstance(results, dict):
            return history
        for variant, summary in results.items():
            if not isinstance(summary, dict):
                continue
            seed = summary.get("config", {}).get(
                "seed", spec_doc.get("seed"))
            wall = summary.get("wall_seconds")
            if isinstance(wall, (int, float)) and wall > 0:
                history[_cell_key(scenario_id, variant, seed)] = \
                    float(wall)
        return history
    # monitors/trace: one render cell, timed at the scenario level
    variants = spec_doc.get("variants") or [{"name": "run"}]
    name = variants[0].get("name", "run") if isinstance(variants[0], dict) \
        else "run"
    wall = entry.get("wall_seconds")
    if isinstance(wall, (int, float)) and wall > 0:
        history[_cell_key(scenario_id, name, spec_doc.get("seed"))] = \
            float(wall)
    return history
