"""The parallel experiment engine.

One :class:`ExperimentJob` names one :class:`ExperimentConfig`; the
engine fans a batch of jobs out across worker processes, aggregates
their :class:`ExperimentResult`\\ s deterministically (by job order —
each job carries its own seed, so the output is reproducible regardless
of scheduling), accounts for per-job failures without killing the
batch, and writes ``BENCH_*.json`` artifacts that CI uploads and the
bench trajectory consumes.

Workers rebuild their workload from the config by name, so nothing but
plain dataclasses crosses the process boundary.  ``workers <= 1`` runs
the batch serially in-process, which is also the fallback when
multiprocessing is unavailable (restricted environments).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

#: artifact schema version — bump when the JSON layout changes
#: (2: workload_params in configs, search_replays/soft_denials counters;
#: 3: versioned scenario specs, shard artifacts with shard/selection
#: metadata and mergeable per-variant results;
#: 4: optional per-run DMV ``snapshot`` behind ``--snapshot``,
#: cross-variant expectation checks carrying a ``reference`` value.
#: Amendment under 4 (backward compatible, no bump): open-loop runs add
#: a ``traffic`` key to their config doc and an ``open_loop`` fact
#: block to their summary; both appear only when a run carries a
#: traffic spec, so closed-loop artifacts are byte-identical.
#: Second amendment under 4: runs on a non-default scheduler core add
#: a ``kernel`` key to their config doc — again only when non-default,
#: so legacy-kernel artifacts keep their exact bytes.
#: Third amendment under 4: runs with an admission policy and/or SLO
#: objectives add ``admission``/``slo`` keys to their config doc and an
#: ``slo`` fact block to their summary — all three appear only when the
#: config carries them, so policy-free artifacts keep their exact bytes.
#: Fourth amendment under 4: runs with an explicit optimizer pipeline
#: spec add an ``optimizer`` key to their config doc — only when the
#: config carries one, so spec-free artifacts keep their exact bytes)
ARTIFACT_SCHEMA = 4

#: recordings kept per search profile in a shared pool
SHARED_SEARCH_POOL_CAP = 1024


@dataclass(frozen=True)
class ExperimentJob:
    """One named unit of work for the engine."""

    name: str
    config: ExperimentConfig


@dataclass
class BatchResult:
    """Everything one engine run produced.

    ``results`` maps job name -> result for jobs that finished;
    ``errors`` maps job name -> formatted exception for jobs that did
    not.  ``ordered`` preserves submission order (with ``None`` holes
    for failed jobs) so positional consumers stay deterministic.
    """

    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    ordered: List[Optional[ExperimentResult]] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every job of the batch finished without error."""
        return not self.errors


#: per-worker-process shared search pool: profile -> {text: recording}.
#: Each pool worker accumulates recordings across the jobs it executes;
#: new entries are shipped back to the parent for later batches and for
#: the serial fallback path.
_WORKER_SEARCHES: Dict[tuple, dict] = {}


def _init_worker(seed_pool: Dict[tuple, dict]) -> None:
    global _WORKER_SEARCHES
    _WORKER_SEARCHES = {profile: dict(texts)
                        for profile, texts in seed_pool.items()}


def _trim_search_pool(pool: Dict[tuple, dict],
                      cap: int = SHARED_SEARCH_POOL_CAP) -> None:
    """Drop the oldest recordings beyond ``cap`` per profile."""
    for texts in pool.values():
        while len(texts) > cap:
            del texts[next(iter(texts))]


def _export_new_searches(pool: Dict[tuple, dict],
                         before: Dict[tuple, frozenset]) -> Optional[bytes]:
    """Pickle the recordings this job added to the worker pool.

    Pre-pickling here (instead of letting the pool serialize live
    recording objects inside the outcome tuple) means a pathological
    unpicklable recording degrades to "no sharing" instead of killing
    the batch.
    """
    new = {}
    for profile, texts in pool.items():
        seen = before.get(profile, frozenset())
        fresh = {t: rec for t, rec in texts.items() if t not in seen}
        if fresh:
            new[profile] = fresh
    if not new:
        return None
    try:
        return pickle.dumps(new, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # pragma: no cover - defensive: drop the export
        return None


def _merge_search_blob(pool: Dict[tuple, dict],
                       blob: Optional[bytes]) -> None:
    if blob is None:
        return
    try:
        new = pickle.loads(blob)
    except Exception:  # pragma: no cover - defensive: drop the import
        return
    for profile, texts in new.items():
        pool.setdefault(profile, {}).update(texts)
    _trim_search_pool(pool)


def _run_job(payload: Tuple[int, str, ExperimentConfig, bool]):
    """Worker entry point: run one experiment, never raise."""
    index, name, config, share = payload
    pool = _WORKER_SEARCHES if share else None
    before = None
    if pool is not None:
        before = {profile: frozenset(texts)
                  for profile, texts in pool.items()}
    try:
        result = run_experiment(config, shared_searches=pool)
    except Exception as exc:  # noqa: BLE001 - error accounting, not control flow
        return index, name, None, f"{type(exc).__name__}: {exc}", None
    blob = None
    if pool is not None:
        _trim_search_pool(pool)
        blob = _export_new_searches(pool, before)
    return index, name, result, None, blob


class ExperimentEngine:
    """Runs experiment batches, serially or across processes.

    The engine threads one shared search pool through every batch it
    runs: recorded optimizer searches from finished jobs seed later
    jobs (directly when serial; via worker-local accumulation plus a
    parent-side merge when pooled), so retried query texts replay
    instead of re-running their search.  Replays are charge-identical
    to live searches — sharing never changes simulated results.
    """

    def __init__(self, workers: int = 1, share_searches: bool = True):
        self.workers = max(1, int(workers))
        self.share_searches = bool(share_searches)
        #: profile -> {text: recording}; persists across run() calls
        self.search_pool: Dict[tuple, dict] = {}

    def run(self, jobs: Sequence[ExperimentJob],
            progress: Optional[Callable[[str], None]] = None) -> BatchResult:
        """Execute ``jobs``; aggregation order == submission order."""
        started = time.time()
        outcomes = list(self.run_iter(jobs, progress=progress))
        workers = min(self.workers, len(jobs)) or 1

        batch = BatchResult(workers=workers)
        batch.ordered = [None] * len(jobs)
        # sort by submission index: with per-job seeds this makes the
        # aggregate independent of worker scheduling
        for index, name, result, error in sorted(
                outcomes, key=lambda outcome: outcome[0]):
            if error is not None:
                batch.errors[name] = error
            else:
                batch.results[name] = result
                batch.ordered[index] = result
        batch.wall_seconds = time.time() - started
        return batch

    def run_iter(self, jobs: Sequence[ExperimentJob],
                 progress: Optional[Callable[[str], None]] = None):
        """Execute ``jobs``, yielding ``(index, name, result, error)``
        outcomes in completion order.

        The streaming sibling of :meth:`run`: consumers that persist
        per-job (the pool cell executor) see each outcome as soon as
        its job finishes instead of after the whole batch.  Search
        blobs shipped back by pool workers are merged into the engine
        pool as they arrive.
        """
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names in batch: {names}")
        payloads = [(i, job.name, job.config, self.share_searches)
                    for i, job in enumerate(jobs)]
        workers = min(self.workers, len(payloads)) or 1
        if workers > 1:
            outcomes = self._iter_pool(payloads, workers, progress)
        else:
            outcomes = self._iter_serial(payloads, progress)
        for index, name, result, error, blob in outcomes:
            _merge_search_blob(self.search_pool, blob)
            yield index, name, result, error

    def _iter_serial(self, payloads, progress):
        for payload in payloads:
            outcome = self._run_serial(payload)
            self._note(progress, outcome)
            yield outcome

    def _run_serial(self, payload) -> tuple:
        """Run one job in-process, sharing the engine pool directly."""
        index, name, config, share = payload
        pool = self.search_pool if share else None
        try:
            result = run_experiment(config, shared_searches=pool)
        except Exception as exc:  # noqa: BLE001 - error accounting
            return index, name, None, f"{type(exc).__name__}: {exc}", None
        if pool is not None:
            _trim_search_pool(pool)
        return index, name, result, None, None

    def _iter_pool(self, payloads, workers: int, progress):
        try:
            ctx = multiprocessing.get_context("fork")
            # forked workers inherit the seed pool without pickling
            seed_pool = self.search_pool
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
            seed_pool = {}
        done = set()
        try:
            with ctx.Pool(processes=workers, initializer=_init_worker,
                          initargs=(seed_pool,)) as pool:
                for outcome in pool.imap_unordered(_run_job, payloads):
                    self._note(progress, outcome)
                    done.add(outcome[0])
                    yield outcome
        except (OSError, PermissionError):  # pragma: no cover - sandboxed
            # no process spawning allowed: degrade to the serial path
            for payload in payloads:
                if payload[0] not in done:
                    outcome = self._run_serial(payload)
                    self._note(progress, outcome)
                    yield outcome

    @staticmethod
    def _note(progress, outcome) -> None:
        if progress is None:
            return
        _, name, result, error, _blob = outcome
        if error is not None:
            progress(f"{name}: FAILED ({error})")
        else:
            progress(f"{name}: completed={result.completed} "
                     f"failed={result.failed} "
                     f"wall={result.wall_seconds:.1f}s")


def run_jobs(jobs: Sequence[ExperimentJob], workers: int = 1,
             progress: Optional[Callable[[str], None]] = None,
             share_searches: bool = True) -> BatchResult:
    """Convenience wrapper: one engine, one batch."""
    engine = ExperimentEngine(workers=workers,
                              share_searches=share_searches)
    return engine.run(jobs, progress=progress)


# ------------------------------------------------------------- artifacts
def summarize_result(result: ExperimentResult) -> dict:
    """The JSON-ready summary of one run (stable key order).

    The optional trailing ``snapshot`` key (the end-of-run DMV dump,
    present only when the run was configured with
    ``capture_snapshot``) is execution metadata: it is zeroed by
    :func:`~repro.experiments.shards.canonical_document` and never
    feeds back into metrics.
    """
    config = result.config
    config_doc = {
        "workload": config.workload,
        "workload_params": dict(config.workload_params),
        "clients": config.clients,
        "throttling": config.throttling,
        "preset": config.preset,
        "seed": config.seed,
        "think_time": config.think_time,
    }
    if config.traffic is not None:
        config_doc["traffic"] = config.traffic.to_dict()
    if config.kernel != "legacy":
        config_doc["kernel"] = config.kernel
    if config.admission is not None:
        config_doc["admission"] = config.admission.to_dict()
    if config.slo is not None:
        config_doc["slo"] = config.slo.to_dict()
    if config.optimizer is not None:
        config_doc["optimizer"] = config.optimizer.to_dict()
    summary = {
        "config": config_doc,
        "completed": result.completed,
        "failed": result.failed,
        "error_counts": dict(sorted(result.error_counts.items())),
        "degraded": result.degraded,
        "retries": result.retries,
        "search_replays": result.search_replays,
        "soft_denials": result.soft_denials,
        "mean_per_bucket": result.mean_per_bucket,
        "mean_compile_time": result.mean_compile_time,
        "mean_execution_time": result.mean_execution_time,
        "memory_by_clerk": dict(sorted(result.memory_by_clerk.items())),
        "gateway_stats": [list(row) for row in result.gateway_stats],
        "throughput": [[t, c] for t, c in result.throughput],
        "wall_seconds": result.wall_seconds,
    }
    if result.open_loop is not None:
        # deterministic simulated admission facts — pinned, unlike the
        # wall-clock fields above
        summary["open_loop"] = dict(sorted(result.open_loop.items()))
    if result.slo is not None:
        # SLO verdicts over the open-loop facts — pinned as well
        summary["slo"] = dict(sorted(result.slo.items()))
    if result.snapshot is not None:
        summary["snapshot"] = result.snapshot
    return summary


def write_bench_document(out_dir: str, name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` with the standard envelope.

    Every artifact (engine batches, the benchmark session summary)
    goes through here so the schema version, filename convention and
    serialization stay uniform for CI consumers.
    """
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    doc = {
        "schema": ARTIFACT_SCHEMA,
        "name": name,
        "python": platform.python_version(),
    }
    doc.update(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def write_artifact(out_dir: str, name: str, batch: BatchResult) -> str:
    """Write one batch's ``BENCH_<name>.json``; returns the path.

    The artifact is deterministic apart from the wall-clock fields, so
    diffs between CI runs surface real behaviour changes.
    """
    return write_bench_document(out_dir, name, {
        "workers": batch.workers,
        "wall_seconds": batch.wall_seconds,
        "errors": dict(sorted(batch.errors.items())),
        "results": {job_name: summarize_result(result)
                    for job_name, result in batch.results.items()},
    })


# ------------------------------------------------------------- suites
def figure_suite_jobs(preset: str = "smoke", seed: int = 3,
                      workload: str = "sales") -> List[ExperimentJob]:
    """The six runs behind Figures 3/4/5 (30/35/40 clients, throttled
    and un-throttled), derived from the registered figure scenarios."""
    from repro.scenarios import jobs_for_scenario, throughput_scenario

    jobs = []
    for clients in (30, 35, 40):
        spec = throughput_scenario(clients, preset=preset, seed=seed,
                                   workload=workload)
        jobs.extend(jobs_for_scenario(spec, prefix=f"fig_{clients}c_"))
    return jobs


def saturation_suite_jobs(preset: str = "smoke", seed: int = 3,
                          clients: Sequence[int] = (5, 15, 30, 40),
                          workload: str = "sales") -> List[ExperimentJob]:
    """The CLAIM-SAT client sweep, derived from the scenario spec."""
    from repro.scenarios import jobs_for_scenario, saturation_scenario

    spec = saturation_scenario(clients, preset=preset, seed=seed,
                               workload=workload)
    return jobs_for_scenario(spec)
