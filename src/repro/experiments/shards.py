"""Sharded scenario execution: partition, run anywhere, merge.

The single-machine engine saturates one worker pool; this module is the
step past it.  A :class:`ShardPlan` partitions any scenario selection
into ``N`` independent shards at **cell** granularity (one cell = one
scenario × variant × seed), ``repro shards run --shard k/N`` executes
one shard in its own process — shards share nothing but the spec JSON,
so the N processes can live on N machines — and ``repro shards merge``
combines the per-shard ``BENCH_shard_*.json`` artifacts back into the
same per-scenario ``BENCH_scenario_*.json`` artifacts a single-machine
``repro scenarios run`` writes.

Determinism contract
--------------------
Every simulated number (completions, errors, degradations, throughput
series, gateway stats, ``soft_denials``) depends only on the cell's
config and seed, never on which shard or machine ran it, so a merge is
byte-identical to the single-machine artifact apart from two
execution-dependent fields: ``wall_seconds`` (real time) and
``search_replays`` (how often the optimizer-search cache of *this*
process happened to hit — replays are charge-identical, see
``repro.compilation.pipeline``).  :func:`canonical_document` zeroes
exactly those fields; tests pin byte-equality of the canonical forms.

Merge safety
------------
Shard documents carry the full selection (every cell of the plan), so
the merge can verify that the shards it was handed belong to one plan,
cover every cell exactly once (missing shards and overlapping cells are
hard errors naming the cells), and agree on every spec.  Pre-shard
schema-2 ``BENCH_scenario_*.json`` artifacts are accepted alongside
shard documents: each one is a complete scenario and merges as-is.
"""

from __future__ import annotations

import glob
import json
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.engine import (
    ARTIFACT_SCHEMA,
    write_bench_document,
)
from repro.scenarios.facade import (
    rebuild_scenario_payload,
    scenario_artifact_name,
)
from repro.scenarios.spec import ScenarioSpec

#: volatile artifact fields zeroed by :func:`canonical_document` —
#: wall clock, cache-locality counters and the opt-in DMV ``snapshot``
#: (whose summary embeds ``search_replays``); everything else is
#: pinned.  Corollary: an *expectation* referencing ``wall_seconds``
#: or ``search_replays`` asserts on the executing process and is
#: outside the determinism contract (see docs/sharding.md).
#: ``wall_seconds_percentiles`` (the merge summary's per-cell timing
#: digest) is derived purely from wall clocks and volatile with them.
VOLATILE_FIELDS = frozenset({"wall_seconds", "search_replays", "python",
                             "snapshot", "wall_seconds_percentiles"})

#: sanity ceiling on shard counts — far above any real deployment,
#: low enough that a typo'd `--shard 1/2000000000` fails instantly
MAX_SHARD_COUNT = 4096


# ---------------------------------------------------------------- plan
@dataclass(frozen=True)
class ShardCell:
    """One atomic unit of sharded work: scenario × variant × seed."""

    scenario_id: str
    variant: str
    seed: int

    def as_doc(self) -> list:
        """The JSON form (a 3-element list) used in shard documents."""
        return [self.scenario_id, self.variant, self.seed]

    @classmethod
    def from_doc(cls, doc: Sequence) -> "ShardCell":
        """Parse the JSON form back into a cell.

        Malformed documents (hand-edited or truncated artifacts) raise
        :class:`ConfigurationError` naming the offending value, never a
        bare ``TypeError``/``ValueError``.
        """
        try:
            if isinstance(doc, (str, bytes)) or len(doc) != 3:
                raise ValueError
            return cls(str(doc[0]), str(doc[1]), int(doc[2]))
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"shard cell must be [scenario, variant, seed], "
                f"got {doc!r}") from None

    def describe(self) -> str:
        """Human-readable ``scenario/variant (seed N)`` label."""
        return f"{self.scenario_id}/{self.variant} (seed {self.seed})"


def parse_shard_selector(text: str) -> Tuple[int, int]:
    """Parse a ``k/N`` shard selector into ``(index, count)``.

    ``index`` is 1-based (``--shard 1/4`` … ``--shard 4/4``), matching
    CI matrix conventions.
    """
    head, sep, tail = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(head), int(tail)
    except ValueError:
        raise ConfigurationError(
            f"shard selector must look like k/N (e.g. 2/4), "
            f"got {text!r}") from None
    _check_shard_count(count)
    if not 1 <= index <= count:
        raise ConfigurationError(
            f"shard index {index} out of range 1..{count}")
    return index, count


def _check_shard_count(count: int) -> None:
    if count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {count}")
    if count > MAX_SHARD_COUNT:
        raise ConfigurationError(
            f"shard count {count} exceeds the ceiling of "
            f"{MAX_SHARD_COUNT}")


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a scenario selection into shards.

    Cells are assigned round-robin in selection order, so shards stay
    balanced and every invocation of every shard derives the identical
    plan from the identical selection — the only coordination sharded
    execution needs.
    """

    count: int
    specs: Tuple[ScenarioSpec, ...]
    #: assignments[i] = cells shard ``i + 1`` owns
    assignments: Tuple[Tuple[ShardCell, ...], ...]

    @classmethod
    def partition(cls, specs: Sequence[ScenarioSpec],
                  count: int) -> "ShardPlan":
        """Partition ``specs`` into ``count`` shards, cell-round-robin.

        ``count`` may exceed the number of cells; the surplus shards
        are simply empty (they run and merge as no-ops).
        """
        _check_shard_count(count)
        specs = tuple(specs)
        ids = [spec.scenario_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(
                f"duplicate scenario ids in selection: {ids}")
        cells = [ShardCell(spec.scenario_id, variant, spec.seed)
                 for spec in specs for variant in spec.variant_names()]
        assignments: List[List[ShardCell]] = [[] for _ in range(count)]
        for position, cell in enumerate(cells):
            assignments[position % count].append(cell)
        return cls(count=count, specs=specs,
                   assignments=tuple(tuple(a) for a in assignments))

    def all_cells(self) -> Tuple[ShardCell, ...]:
        """Every cell of the plan, in selection order."""
        return tuple(ShardCell(spec.scenario_id, variant, spec.seed)
                     for spec in self.specs
                     for variant in spec.variant_names())

    def cells_for(self, index: int) -> Tuple[ShardCell, ...]:
        """The cells shard ``index`` (1-based) owns."""
        if not 1 <= index <= self.count:
            raise ConfigurationError(
                f"shard index {index} out of range 1..{self.count}")
        return self.assignments[index - 1]

    def spec_for(self, scenario_id: str) -> ScenarioSpec:
        """The selection's spec for ``scenario_id``."""
        for spec in self.specs:
            if spec.scenario_id == scenario_id:
                return spec
        raise ConfigurationError(
            f"scenario {scenario_id!r} is not part of this plan")

    def selection_doc(self) -> dict:
        """The JSON selection fingerprint embedded in every shard doc.

        Carrying the *full* cell list (not just this shard's) lets the
        merge verify coverage and detect overlap without re-deriving
        the plan; carrying every spec document makes the fingerprint
        sensitive to *all* configuration (preset, clients, overrides…),
        so shards run with differing command lines never compare equal
        — even when no scenario happens to span two shards.
        """
        return {
            "shard_count": self.count,
            "cells": [cell.as_doc() for cell in self.all_cells()],
            "specs": [spec.to_dict() for spec in self.specs],
        }


# ----------------------------------------------------------- execution
def run_shard(plan: ShardPlan, index: int, workers: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              executor=None, snapshot: bool = False,
              capture: Optional[str] = None,
              order: str = "spec", scheduler=None) -> dict:
    """Execute one shard of ``plan``; returns the shard document payload.

    All owned cells go through one :class:`~repro.experiments.
    executors.CellExecutor` submission (``executor=None`` picks inline
    or the process pool from ``workers``, like every other surface),
    then re-group into per-scenario entries in selection order.
    ``order``/``scheduler`` reorder the owned queue by expected cost
    exactly as on :func:`~repro.scenarios.facade.run_scenarios` —
    a scheduling decision only, never visible in the payload.
    ``capture`` is a directory each owned cell writes its replayable
    JSONL admission trace into (per-cell filenames, so shards of one
    plan can share a directory without collisions).  The
    payload carries everything the merge needs: the owned cells, each
    touched scenario's spec, per-variant result summaries and errors.
    """
    from repro.experiments.executors import CellTask, make_executor
    from repro.experiments.scheduler import order_tasks

    owned = plan.cells_for(index)
    owns_executor = executor is None
    if executor is None:
        executor = make_executor(workers=workers)
    tasks = order_tasks(
        [CellTask(cell=cell, spec=plan.spec_for(cell.scenario_id),
                  snapshot=snapshot, capture=capture)
         for cell in owned], order=order, scheduler=scheduler)
    try:
        cell_results = list(executor.submit(tasks, progress=progress))
    finally:
        if owns_executor:
            executor.close()
    by_scenario: Dict[str, list] = {}
    for result in cell_results:
        by_scenario.setdefault(result.cell.scenario_id, []).append(result)
    scenarios: Dict[str, dict] = {}
    for spec in plan.specs:
        cells = by_scenario.get(spec.scenario_id)
        if not cells:
            continue
        entry: dict = {"spec": spec.to_dict()}
        if spec.kind == "experiment":
            by_variant = {c.cell.variant: c for c in cells}
            entry["wall_seconds"] = sum(c.wall_seconds for c in cells)
            entry["errors"] = dict(sorted(
                (name, c.error) for name, c in by_variant.items()
                if c.error is not None))
            # spec variant order, matching the engine's deterministic
            # submission-order aggregation
            entry["results"] = {
                name: by_variant[name].summary
                for name in spec.variant_names()
                if name in by_variant and by_variant[name].ok}
        else:
            cell = cells[0]
            if cell.error is not None:
                # a monitors/trace renderer failure is a bug, not data
                raise RuntimeError(
                    f"scenario {spec.scenario_id!r} cell failed: "
                    f"{cell.error}")
            entry["wall_seconds"] = cell.wall_seconds
            # already JSON-safe and sorted (see executors.execute_cell)
            entry["scenario_metrics"] = dict(cell.scenario_metrics or {})
        scenarios[spec.scenario_id] = entry
    return {
        "kind": "shard",
        "shard": {"index": index, "count": plan.count},
        "selection": plan.selection_doc(),
        "cells": [cell.as_doc() for cell in owned],
        "scenarios": scenarios,
    }


def shard_artifact_name(index: int, count: int) -> str:
    """The document name of one shard's artifact (no extension)."""
    return f"shard_{index}of{count}"


def write_shard_artifact(out_dir: str, payload: dict) -> str:
    """Write one shard's ``BENCH_shard_<k>of<N>.json``; returns the path."""
    shard = payload["shard"]
    return write_bench_document(
        out_dir, shard_artifact_name(shard["index"], shard["count"]),
        payload)


# --------------------------------------------------------------- merge
def load_bench_document(path: str) -> dict:
    """Read one ``BENCH_*.json`` document with useful errors."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read artifact {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"artifact {path!r} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"artifact {path!r} is not a JSON object")
    return doc


def iter_bench_documents(directory: str):
    """Yield ``(path, doc)`` for every readable ``BENCH_*.json``.

    Sorted by filename, so consumers are deterministic.  Unreadable,
    non-JSON or non-object files are silently skipped — this is the
    *advisory* reader (scheduler cost history and other best-effort
    scans); strict consumers like the shard merge and the results
    warehouse go through :func:`load_bench_document` per file so a
    malformed artifact fails loudly.
    """
    if not os.path.isdir(directory):
        return
    for path in sorted(glob.glob(os.path.join(directory,
                                              "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict):
            yield path, doc


def wall_seconds_percentiles(values: Iterable[float]) -> dict:
    """The per-cell wall-clock digest merge summaries carry.

    Nearest-rank percentiles (deterministic, no interpolation) of the
    observed per-cell ``wall_seconds``.  This is the in-repo data
    source cost-based ordering falls back on when no journal exists:
    a prior merge's artifacts say which cells were slow.  Derived
    entirely from wall clocks, so the whole digest is canonically
    volatile (see :data:`VOLATILE_FIELDS`).
    """
    values = sorted(float(v) for v in values
                    if isinstance(v, (int, float)))
    if not values:
        return {"cells": 0, "p50": 0.0, "p90": 0.0, "max": 0.0}

    def rank(quantile: float) -> float:
        position = math.ceil(quantile * len(values)) - 1
        return values[min(len(values) - 1, max(0, position))]

    return {"cells": len(values), "p50": rank(0.5), "p90": rank(0.9),
            "max": values[-1]}


def _entry_cell_walls(entry: dict) -> List[float]:
    """Per-cell wall seconds one shard entry / scenario doc carries.

    Experiment entries time each variant cell in its summary;
    monitors/trace entries time their single render cell at the
    scenario level.  Untimed cells — errored variants, missing or
    zero ``wall_seconds`` — contribute nothing: a phantom ``0.0``
    would inflate the digest's cell count and drag its percentiles
    toward zero.
    """
    if "results" in entry:
        # an experiment entry — even all-errored ones (results == {}),
        # whose scenario-level wall clock covers failed cells and must
        # not masquerade as one timed render cell
        results = entry.get("results")
        walls = [summary.get("wall_seconds")
                 for summary in results.values()
                 if isinstance(summary, dict)] \
            if isinstance(results, dict) else []
    else:
        walls = [entry.get("wall_seconds")]
    return [float(wall) for wall in walls
            if isinstance(wall, (int, float)) and wall > 0]


@dataclass
class MergeResult:
    """Everything one merge produced.

    ``scenarios`` maps scenario id to its rebuilt per-scenario artifact
    payload (plan order, then standalone artifacts in input order);
    ``shard_count``/``cells_total`` describe the merged plan (0 when
    only pre-shard standalone artifacts were merged);
    ``cell_wall_seconds`` are the observed per-cell wall clocks the
    summary digests for cost-based ordering.
    """

    scenarios: Dict[str, dict]
    shard_count: int = 0
    cells_total: int = 0
    sources: int = 0
    cell_wall_seconds: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every merged scenario's checks and runs passed."""
        return all(payload["ok"] for payload in self.scenarios.values())

    def summary_payload(self) -> dict:
        """The JSON payload of the merge-summary artifact."""
        return {
            "kind": "shard_merge",
            "shard_count": self.shard_count,
            "cells_total": self.cells_total,
            "sources": self.sources,
            "ok": self.ok,
            "wall_seconds_percentiles":
                wall_seconds_percentiles(self.cell_wall_seconds),
            "scenarios": {scenario_id: payload["ok"]
                          for scenario_id, payload in
                          self.scenarios.items()},
        }


def _check_shard_schema(doc: dict) -> None:
    schema = doc.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"shard artifact {doc.get('name', '?')!r} has schema "
            f"{schema!r}; this build merges shard schema "
            f"{ARTIFACT_SCHEMA} (pre-shard scenario artifacts of "
            f"older schemas are accepted, shard documents are not)")


def _validate_shard_coverage(shard_docs: List[dict]) -> Tuple[int, int]:
    """Check the shard docs form one complete, overlap-free plan.

    Returns ``(shard_count, cells_total)``.
    """
    selection = shard_docs[0].get("selection")
    for doc in shard_docs[1:]:
        if doc.get("selection") != selection:
            raise ConfigurationError(
                "shard artifacts come from different plans (their "
                "selections disagree); merge shards of one "
                "`repro shards run` selection at a time")
    if not isinstance(selection, dict) or "cells" not in selection:
        raise ConfigurationError("shard artifact carries no selection")
    count = int(selection.get("shard_count", 0))
    expected = [ShardCell.from_doc(c) for c in selection["cells"]]
    seen_indices: Dict[int, str] = {}
    owner: Dict[ShardCell, int] = {}
    overlapping: List[str] = []
    for doc in shard_docs:
        index = int(doc.get("shard", {}).get("index", 0))
        name = doc.get("name", "?")
        if not 1 <= index <= count:
            raise ConfigurationError(
                f"shard artifact {name!r} claims index {index} outside "
                f"the plan's 1..{count}")
        if index in seen_indices:
            raise ConfigurationError(
                f"shard {index}/{count} provided twice "
                f"({seen_indices[index]!r} and {name!r})")
        seen_indices[index] = name
        for cell_doc in doc.get("cells", ()):
            cell = ShardCell.from_doc(cell_doc)
            if cell in owner:
                overlapping.append(
                    f"{cell.describe()} claimed by shards "
                    f"{owner[cell]} and {index}")
            else:
                owner[cell] = index
    # every coverage defect is collected and reported in one error, so
    # one merge attempt diagnoses the whole artifact set instead of
    # revealing problems one re-run at a time
    problems: List[str] = []
    if overlapping:
        problems.append("overlapping shard cell(s): "
                        + "; ".join(overlapping))
    missing_cells = [cell for cell in expected if cell not in owner]
    if missing_cells:
        missing_shards = sorted(set(range(1, count + 1))
                                - set(seen_indices))
        problems.append(
            "missing cell(s) "
            + ", ".join(cell.describe() for cell in missing_cells)
            + (f" (shard(s) {missing_shards} not provided)"
               if missing_shards else ""))
    expected_set = set(expected)
    stray = [cell for cell in owner if cell not in expected_set]
    if stray:
        problems.append(
            "cell(s) outside their selection: "
            + ", ".join(cell.describe() for cell in stray))
    if problems:
        raise ConfigurationError(
            "incomplete shard set: " + "; ".join(problems))
    return count, len(expected)


def _check_claimed_cells_have_data(doc: dict) -> None:
    """A claimed cell must come with a result or an error.

    Coverage validation proves every cell was *claimed*; this proves
    the claiming shard actually carries data for it, so a partially
    written artifact can never merge into silently-wrong aggregates.
    """
    name = doc.get("name", "?")
    for cell_doc in doc.get("cells", ()):
        cell = ShardCell.from_doc(cell_doc)
        entry = doc.get("scenarios", {}).get(cell.scenario_id)
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"shard artifact {name!r} claims cell {cell.describe()} "
                f"but carries no data for scenario "
                f"{cell.scenario_id!r}")
        kind = entry.get("spec", {}).get("kind", "experiment")
        if kind == "experiment" \
                and cell.variant not in entry.get("results", {}) \
                and cell.variant not in entry.get("errors", {}):
            raise ConfigurationError(
                f"shard artifact {name!r} claims cell {cell.describe()} "
                f"but carries neither a result nor an error for it")


def merge_documents(docs: Sequence[dict]) -> MergeResult:
    """Combine shard and/or scenario artifacts into per-scenario payloads.

    Accepts any mix of schema-3 shard documents (which must form one
    complete plan: same selection, every cell covered exactly once) and
    standalone pre-shard ``BENCH_scenario_*.json`` documents (schema 2
    or 3 — each is one complete scenario).  A scenario id appearing in
    more than one place is a conflict.  Raises
    :class:`ConfigurationError` on any inconsistency; returns a
    :class:`MergeResult` whose payloads are byte-compatible with
    single-machine artifacts (see :func:`canonical_document`).
    """
    if not docs:
        raise ConfigurationError("nothing to merge: no artifacts given")
    shard_docs: List[dict] = []
    scenario_docs: List[dict] = []
    for doc in docs:
        if doc.get("kind") == "shard":
            _check_shard_schema(doc)
            shard_docs.append(doc)
        elif "spec" in doc:
            scenario_docs.append(doc)
        else:
            raise ConfigurationError(
                f"artifact {doc.get('name', '?')!r} is neither a shard "
                f"document nor a scenario artifact")

    shard_count = cells_total = 0
    merged: Dict[str, dict] = {}
    spec_docs: Dict[str, dict] = {}
    cell_walls: List[float] = []
    if shard_docs:
        shard_count, cells_total = _validate_shard_coverage(shard_docs)
        shard_docs.sort(key=lambda doc: doc["shard"]["index"])
        for doc in shard_docs:
            for scenario_id, entry in doc.get("scenarios", {}).items():
                spec_doc = entry.get("spec") if isinstance(entry, dict) \
                    else None
                if spec_doc is None:
                    raise ConfigurationError(
                        f"shard artifact {doc.get('name', '?')!r} "
                        f"carries no spec for scenario {scenario_id!r}")
                known = spec_docs.get(scenario_id)
                if known is not None and known != spec_doc:
                    raise ConfigurationError(
                        f"shards disagree about the spec of scenario "
                        f"{scenario_id!r}; they were produced from "
                        f"different selections")
                spec_docs.setdefault(scenario_id, spec_doc)
                slot = merged.setdefault(scenario_id, {
                    "wall_seconds": 0.0, "errors": {}, "results": {}})
                slot["wall_seconds"] += entry.get("wall_seconds", 0.0)
                slot["errors"].update(entry.get("errors", {}))
                slot["results"].update(entry.get("results", {}))
                if "scenario_metrics" in entry:
                    slot["scenario_metrics"] = entry["scenario_metrics"]
                cell_walls.extend(_entry_cell_walls(entry))
            _check_claimed_cells_have_data(doc)
        # plan order, not shard-arrival order
        order = []
        for cell_doc in shard_docs[0]["selection"]["cells"]:
            scenario_id = ShardCell.from_doc(cell_doc).scenario_id
            if scenario_id not in order:
                order.append(scenario_id)
        merged = {scenario_id: merged[scenario_id]
                  for scenario_id in order if scenario_id in merged}

    for doc in scenario_docs:
        spec_doc = doc["spec"]
        scenario_id = spec_doc.get("scenario_id")
        if scenario_id in merged:
            raise ConfigurationError(
                f"scenario {scenario_id!r} appears in more than one "
                f"artifact; refusing to guess which run wins")
        spec_docs[scenario_id] = spec_doc
        merged[scenario_id] = {
            "wall_seconds": doc.get("wall_seconds", 0.0),
            "errors": doc.get("errors", {}),
            "results": doc.get("results", {}),
            "scenario_metrics": doc.get("scenario_metrics", {}),
        }
        cell_walls.extend(_entry_cell_walls(doc))

    scenarios: Dict[str, dict] = {}
    for scenario_id, slot in merged.items():
        try:
            spec = ScenarioSpec.from_dict(spec_docs[scenario_id])
            if spec.kind == "experiment":
                payload = rebuild_scenario_payload(
                    spec, wall_seconds=slot["wall_seconds"],
                    errors=slot["errors"], results=slot["results"])
            else:
                payload = rebuild_scenario_payload(
                    spec, wall_seconds=slot["wall_seconds"],
                    scenario_metrics=slot.get("scenario_metrics", {}))
        except (KeyError, TypeError, ValueError) as exc:
            # malformed hand-edited/truncated artifacts surface as the
            # module's promised ConfigurationError, not a traceback
            raise ConfigurationError(
                f"artifact data for scenario {scenario_id!r} is "
                f"malformed: {type(exc).__name__}: {exc}") from None
        scenarios[scenario_id] = payload
    return MergeResult(scenarios=scenarios, shard_count=shard_count,
                       cells_total=cells_total, sources=len(docs),
                       cell_wall_seconds=cell_walls)


def merge_artifact_files(paths: Iterable[str]) -> MergeResult:
    """Load and merge artifact files (see :func:`merge_documents`)."""
    return merge_documents([load_bench_document(path) for path in paths])


def write_merged_artifacts(out_dir: str, merge: MergeResult) -> List[str]:
    """Write per-scenario artifacts plus the merge summary; returns paths.

    The per-scenario files reproduce the single-machine nightly lane's
    ``BENCH_scenario_*.json`` set; ``BENCH_shard_merge.json`` records
    what was merged for the verify step.
    """
    paths = []
    for payload in merge.scenarios.values():
        spec = ScenarioSpec.from_dict(payload["spec"])
        paths.append(write_bench_document(
            out_dir, scenario_artifact_name(spec), payload))
    paths.append(write_bench_document(out_dir, "shard_merge",
                                      merge.summary_payload()))
    return paths


# ------------------------------------------------------ canonical form
def canonical_document(doc):
    """``doc`` with execution-dependent fields zeroed, recursively.

    Wall-clock fields and cache-locality counters (see
    :data:`VOLATILE_FIELDS`) legitimately differ between two runs of
    the same cells; everything else in an artifact is simulated and
    must not.  Tests and CI diff artifacts in this canonical form —
    ``canonical_document(single_machine) ==
    canonical_document(merged_shards)`` is the sharding correctness
    contract.
    """
    if isinstance(doc, dict):
        return {key: 0 if key in VOLATILE_FIELDS
                else canonical_document(value)
                for key, value in doc.items()}
    if isinstance(doc, list):
        return [canonical_document(item) for item in doc]
    return doc
