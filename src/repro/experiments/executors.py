"""The cell-execution protocol: one contract, three executors.

A **cell** (scenario × variant × seed, :class:`ShardCell`) is the
atomic unit of experiment work everywhere in this codebase; this
module makes its *execution* pluggable.  A :class:`CellExecutor`
accepts :class:`CellTask`\\ s (cell + spec, self-describing enough to
run anywhere) and yields :class:`CellResult`\\ s (JSON-ready summaries,
the same shapes shard documents carry).  Every surface — the
``run_scenario`` facade, ``repro shards run``, and the ``repro
workers`` pair — submits through this protocol, so single-machine,
sharded and remote runs are one code path differing only in executor
choice:

* :class:`InlineExecutor` — serial, in-process, sharing one recorded
  optimizer-search pool across cells.
* :class:`PoolExecutor` — wraps the existing process-pool
  :class:`~repro.experiments.engine.ExperimentEngine`, keeping its
  profile-keyed search-replay sharing.
* :class:`StreamExecutor` — serves the cell queue to remote workers
  over the TCP wire protocol (:mod:`repro.experiments.wire`).  Workers
  *pull* cells one at a time, so slow cells rebalance automatically
  (work stealing), and a cell claimed by a worker that dies is
  re-queued for the survivors.

Determinism contract: every simulated number in a result summary is a
pure function of the cell's config and seed, so all three executors
produce canonically byte-identical artifacts (pinned by tests; see
:func:`repro.experiments.shards.canonical_document`).

Two layers compose with any executor rather than being executors
themselves: :mod:`repro.experiments.journal` wraps one in a durable
run journal (checkpoint/restart — ``--journal``/``--resume``), and
:mod:`repro.experiments.scheduler` reorders the submitted queue by
expected cost (``--order cost``) before it reaches ``submit``.
"""

from __future__ import annotations

import abc
import math
import os
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.engine import (
    ExperimentEngine,
    ExperimentJob,
    _trim_search_pool,
    summarize_result,
)
from repro.experiments.runner import run_experiment

Progress = Optional[Callable[[str], None]]


# ----------------------------------------------------------- the cells
@dataclass(frozen=True)
class CellTask:
    """One self-describing unit of work an executor can run anywhere.

    Carries the cell identity plus the full spec (so a remote worker
    needs nothing but the task document), the ``snapshot`` flag
    (whether the run should capture an end-of-run DMV snapshot) and
    the optional ``capture`` directory (where the run writes its
    replayable JSONL admission trace).
    """

    cell: "ShardCell"
    spec: "ScenarioSpec"
    snapshot: bool = False
    capture: Optional[str] = None

    def key(self) -> str:
        """A batch-unique label: ``scenario/variant#seed``."""
        cell = self.cell
        return f"{cell.scenario_id}/{cell.variant}#{cell.seed}"

    def trace_path(self) -> Optional[str]:
        """Where this cell's admission trace goes (None = no capture)."""
        if self.capture is None:
            return None
        cell = self.cell
        scenario = cell.scenario_id.replace("/", "_")
        return os.path.join(
            self.capture,
            f"TRACE_{scenario}_{cell.variant}_{cell.seed}.jsonl")

    def to_doc(self) -> dict:
        """The JSON wire form (shard-document shapes throughout)."""
        doc = {
            "cell": self.cell.as_doc(),
            "spec": self.spec.to_dict(),
            "snapshot": self.snapshot,
        }
        if self.capture is not None:
            doc["capture"] = self.capture
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "CellTask":
        from repro.experiments.shards import ShardCell
        from repro.scenarios.spec import ScenarioSpec

        if not isinstance(doc, dict) or "cell" not in doc \
                or "spec" not in doc:
            raise ConfigurationError(
                f"cell task must be an object with cell and spec, "
                f"got {doc!r}")
        return cls(cell=ShardCell.from_doc(doc["cell"]),
                   spec=ScenarioSpec.from_dict(doc["spec"]),
                   snapshot=bool(doc.get("snapshot", False)),
                   capture=doc.get("capture"))


@dataclass
class CellResult:
    """Everything one executed cell produced, in JSON-ready form.

    Experiment cells carry a ``summary`` (the exact
    :func:`~repro.experiments.engine.summarize_result` document) or an
    ``error``; monitors/trace cells carry ``scenario_metrics`` (JSON-
    safe, sorted — the shard-document form) plus the rendered ``body``.
    ``wall_seconds`` is execution-dependent and canonically volatile.
    """

    cell: "ShardCell"
    wall_seconds: float = 0.0
    summary: Optional[dict] = None
    error: Optional[str] = None
    scenario_metrics: Optional[dict] = None
    body: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_doc(self) -> dict:
        doc: dict = {"cell": self.cell.as_doc(),
                     "wall_seconds": self.wall_seconds}
        for name in ("summary", "error", "scenario_metrics", "body"):
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "CellResult":
        from repro.experiments.shards import ShardCell

        if not isinstance(doc, dict) or "cell" not in doc:
            raise ConfigurationError(
                f"cell result must be an object with a cell, got {doc!r}")
        return cls(cell=ShardCell.from_doc(doc["cell"]),
                   wall_seconds=float(doc.get("wall_seconds", 0.0)),
                   summary=doc.get("summary"),
                   error=doc.get("error"),
                   scenario_metrics=doc.get("scenario_metrics"),
                   body=doc.get("body"))


def tasks_for_specs(specs, snapshot: bool = False,
                    capture: Optional[str] = None) -> List[CellTask]:
    """Lower a scenario selection to cell tasks, in selection order.

    The same cell enumeration :class:`~repro.experiments.shards.
    ShardPlan` uses, so an executor submission and a shard plan always
    agree about what the unit of work is.
    """
    from repro.experiments.shards import ShardCell

    ids = [spec.scenario_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError(
            f"duplicate scenario ids in selection: {ids}")
    return [CellTask(cell=ShardCell(spec.scenario_id, variant, spec.seed),
                     spec=spec, snapshot=snapshot, capture=capture)
            for spec in specs for variant in spec.variant_names()]


def execute_cell(task: CellTask,
                 shared_searches: Optional[Dict[tuple, dict]] = None
                 ) -> CellResult:
    """Run one cell in-process — the primitive every executor shares.

    Experiment cells lower to their variant's engine config and run
    through :func:`run_experiment`; failures come back as error
    results (error accounting, not control flow), exactly like the
    engine's workers.  Monitors/trace cells render whole.
    """
    from repro.scenarios.facade import jobs_for_scenario, run_cell_scenario

    spec, cell = task.spec, task.cell
    if spec.kind != "experiment":
        started = time.time()
        result = run_cell_scenario(spec)
        metrics = {
            name: (repr(value) if isinstance(value, float)
                   and not math.isfinite(value) else value)
            for name, value in sorted(result.scenario_metrics.items())}
        return CellResult(cell=cell, wall_seconds=time.time() - started,
                          scenario_metrics=metrics, body=result.body)
    try:
        job = next((job for job in jobs_for_scenario(spec)
                    if job.name == cell.variant), None)
        if job is None:
            raise ConfigurationError(
                f"scenario {spec.scenario_id!r} has no variant "
                f"{cell.variant!r}")
        config = replace(job.config, capture_snapshot=task.snapshot,
                         capture_trace=task.trace_path())
        result = run_experiment(config, shared_searches=shared_searches)
    except Exception as exc:  # noqa: BLE001 - error accounting
        return CellResult(cell=cell,
                          error=f"{type(exc).__name__}: {exc}")
    return CellResult(cell=cell, wall_seconds=result.wall_seconds,
                      summary=summarize_result(result))


def _note(progress: Progress, result: CellResult) -> None:
    if progress is None:
        return
    label = f"{result.cell.scenario_id}/{result.cell.variant}"
    if result.error is not None:
        progress(f"{label}: FAILED ({result.error})")
    elif result.summary is not None:
        progress(f"{label}: completed={result.summary['completed']} "
                 f"failed={result.summary['failed']} "
                 f"wall={result.wall_seconds:.1f}s")
    else:
        progress(f"{label}: rendered")


# --------------------------------------------------------- the protocol
class CellExecutor(abc.ABC):
    """The cell-execution contract every surface submits through.

    ``submit`` consumes tasks and yields one :class:`CellResult` per
    cell (possibly out of order — consumers aggregate by spec variant
    order, so yield order never affects artifacts).  ``close`` releases
    whatever the executor holds (sockets, worker processes); ``cancel``
    asks it to stop handing out new cells.  Executors are context
    managers closing themselves on exit.
    """

    @abc.abstractmethod
    def submit(self, tasks: Iterable[CellTask],
               progress: Progress = None) -> Iterator[CellResult]:
        """Execute ``tasks``; yields one result per cell."""

    def close(self) -> None:
        """Release resources; further submissions are undefined."""

    def cancel(self) -> None:
        """Stop handing out new cells (in-flight cells may finish)."""

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InlineExecutor(CellExecutor):
    """Serial in-process execution — the facade's default.

    One recorded-search pool persists across every cell this executor
    runs, so repeated query texts replay instead of re-searching
    (affects wall clock only, never simulated results).
    """

    def __init__(self, share_searches: bool = True):
        self.search_pool: Optional[Dict[tuple, dict]] = \
            {} if share_searches else None
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    def submit(self, tasks: Iterable[CellTask],
               progress: Progress = None) -> Iterator[CellResult]:
        for task in tasks:
            if self._cancelled:
                return
            result = execute_cell(task, shared_searches=self.search_pool)
            if self.search_pool is not None:
                _trim_search_pool(self.search_pool)
            _note(progress, result)
            yield result


class PoolExecutor(CellExecutor):
    """Process-pool execution via the experiment engine.

    Experiment cells fan out across the engine's worker processes,
    keeping its profile-keyed search-replay sharing; monitors/trace
    cells (cheap renders) run inline, up front.  Experiment results
    are yielded in completion order as jobs finish — never held back
    until the whole batch completes — so consumers can render and
    persist incrementally.
    """

    def __init__(self, workers: int = 2, share_searches: bool = True):
        self.engine = ExperimentEngine(workers=workers,
                                       share_searches=share_searches)

    def submit(self, tasks: Iterable[CellTask],
               progress: Progress = None) -> Iterator[CellResult]:
        tasks = list(tasks)
        jobs = []
        by_key: Dict[str, CellTask] = {}
        for task in tasks:
            if task.spec.kind != "experiment":
                result = execute_cell(task)
                _note(progress, result)
                yield result
                continue
            lowered = jobs_for_task(task)
            if not lowered:
                raise ConfigurationError(
                    f"scenario {task.spec.scenario_id!r} has no variant "
                    f"{task.cell.variant!r}")
            jobs.extend(lowered)
            by_key[task.key()] = task
        for _index, name, run, error in self.engine.run_iter(
                jobs, progress=progress):
            task = by_key[name]
            if error is not None:
                yield CellResult(cell=task.cell, error=error)
            else:
                yield CellResult(cell=task.cell,
                                 wall_seconds=run.wall_seconds,
                                 summary=summarize_result(run))


def jobs_for_task(task: CellTask) -> List[ExperimentJob]:
    """Lower one experiment cell task to engine jobs (batch-unique
    names via :meth:`CellTask.key`, snapshot flag applied)."""
    from repro.scenarios.facade import jobs_for_scenario

    cell = task.cell
    jobs = []
    for job in jobs_for_scenario(task.spec):
        if job.name != cell.variant:
            continue
        config = replace(job.config, capture_snapshot=task.snapshot,
                         capture_trace=task.trace_path())
        jobs.append(ExperimentJob(
            name=f"{cell.scenario_id}/{job.name}#{cell.seed}",
            config=config))
    return jobs


class StreamExecutor(CellExecutor):
    """Serve the cell queue to workers over TCP (pull = work stealing).

    ``start()`` binds the listener (``port=0`` picks an ephemeral
    port); workers join with ``repro workers join --connect
    host:port`` — or this executor spawns ``spawn_workers`` local
    ones itself.  Each worker pulls one cell at a time, so a slow cell
    never blocks the rest of the queue, and a cell claimed by a worker
    that disconnects is re-queued for the survivors (the recovery the
    kill-one-worker test pins).
    """

    #: optional claim hook: ``on_dispatch(task)`` fires the moment a
    #: worker claims a cell (the wire-level dispatch a run journal
    #: records; see :mod:`repro.experiments.journal`)
    on_dispatch: Optional[Callable[[CellTask], None]] = None

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 spawn_workers: int = 0,
                 timeout: Optional[float] = None):
        self.host = host
        self.port = port
        self.spawn_workers = int(spawn_workers)
        self.timeout = timeout
        self._server = None
        self._spawned: List[subprocess.Popen] = []

    # -- lifecycle -------------------------------------------------------
    def start(self) -> tuple:
        """Bind the listener; returns the ``(host, port)`` address."""
        if self._server is None:
            from repro.experiments.wire import CellQueueServer

            self._server = CellQueueServer(self.host, self.port)
            self._server.start()
        return self._server.address

    @property
    def address(self) -> tuple:
        return self.start()

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        for proc in self._spawned:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._spawned:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
        self._spawned = []

    def cancel(self) -> None:
        if self._server is not None:
            self._server.cancel()

    # -- execution -------------------------------------------------------
    def submit(self, tasks: Iterable[CellTask],
               progress: Progress = None) -> Iterator[CellResult]:
        host, port = self.start()
        for _ in range(max(0, self.spawn_workers - len(self._spawned))):
            self._spawned.append(self._spawn_worker(host, port))
        for result in self._server.serve(tasks, timeout=self.timeout,
                                         liveness=self._check_spawned,
                                         on_dispatch=self.on_dispatch):
            _note(progress, result)
            yield result

    def _check_spawned(self) -> None:
        """Fail loudly when every worker we spawned has died.

        Without this, a queue whose only workers were our own
        subprocesses would block forever after they crash.  External
        joiners keep the queue alive, so only the no-workers-left
        state aborts.
        """
        if not self._spawned or self._server is None:
            return
        if self._server.active_workers > 0:
            return
        codes = [proc.poll() for proc in self._spawned]
        if all(code is not None for code in codes):
            from repro.experiments.wire import WireError

            raise WireError(
                f"all {len(self._spawned)} spawned worker(s) exited "
                f"(exit codes {codes}) with cells outstanding; see "
                f"their stderr above")

    @staticmethod
    def _spawn_worker(host: str, port: int) -> subprocess.Popen:
        # stdout is noise (per-cell progress is suppressed) but stderr
        # is kept: a crashing worker must leave a diagnosable trace
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "workers", "join",
             "--connect", f"{host}:{port}", "--quiet"],
            stdout=subprocess.DEVNULL)


# ------------------------------------------------------------- factory
#: executor names the CLI accepts
EXECUTOR_NAMES = ("inline", "pool", "stream")


def make_executor(name: Optional[str] = None, workers: int = 1,
                  bind: str = "127.0.0.1:0", stream_workers: int = 2,
                  timeout: Optional[float] = None) -> CellExecutor:
    """Build an executor from CLI-ish knobs.

    ``name=None`` picks :class:`InlineExecutor` for ``workers <= 1``
    and :class:`PoolExecutor` otherwise — exactly the pre-executor
    behaviour of every surface.
    """
    if name is None:
        name = "inline" if workers <= 1 else "pool"
    if name == "inline":
        return InlineExecutor()
    if name == "pool":
        # an explicit `--executor pool --workers 1` is honored (the
        # engine degrades to its serial path), never silently doubled
        return PoolExecutor(workers=max(1, workers))
    if name == "stream":
        from repro.experiments.wire import parse_address

        host, port = parse_address(bind)
        return StreamExecutor(host=host, port=port,
                              spawn_workers=stream_workers,
                              timeout=timeout)
    raise ConfigurationError(
        f"unknown executor {name!r}; valid executors: "
        f"{', '.join(EXECUTOR_NAMES)}")
