"""The run journal: checkpoint/restart for any cell-executing surface.

A coordinator used to be a single point of loss — kill a ``repro
workers serve`` (or a ``repro shards run``) halfway through its queue
and the whole selection re-ran from zero.  This module makes the
queue durable instead: a :class:`CellJournal` is an append-only
newline-JSON file recording every **dispatched** and **completed**
cell (the shard-document shapes again — the journal format is the
wire format is the artifact format), and a :class:`JournaledExecutor`
wraps any :class:`~repro.experiments.executors.CellExecutor` so that

* a fresh run opens the journal with the selection's fingerprint and
  records each result as it is delivered, and
* a restarted run (``--resume``) **replays** the journal's completed
  cells without re-executing them and submits only the outstanding
  ones to the wrapped executor.

Because every simulated number is a pure function of the cell's config
and seed, a replayed result is indistinguishable from a re-executed
one, so a resumed run's merged artifact is canonically byte-identical
to an uninterrupted run — pinned by tests and the ``resume-smoke`` CI
lane.

A journal is also a complete record of *what the run produced*: every
``result`` record carries the exact summary document an artifact
would, so ``repro results load`` ingests a journal into the results
warehouse (:mod:`repro.results`) interchangeably with the run's
``BENCH_*.json`` directory.

Crash tolerance: records are flushed line-by-line, and a process
killed mid-append leaves at most one truncated trailing line, which
:func:`load_journal` ignores.  A journal is bound to one selection:
the fingerprint (cells + specs + snapshot flag, order-insensitive so
``--order`` never invalidates a journal) must match on resume, and an
existing journal is never silently overwritten — pass ``--resume`` or
remove the file.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.engine import ARTIFACT_SCHEMA
from repro.experiments.executors import (
    CellExecutor,
    CellResult,
    CellTask,
    Progress,
)

# deferred at runtime (the shards module pulls in the scenario facade,
# which would re-enter this package's __init__ mid-import)
if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.shards import ShardCell

#: record ops a journal may contain (one JSON object per line):
#: ``open`` (run header: schema + selection fingerprint), ``resume``
#: (a restart appended onto an earlier run), ``dispatch`` (a cell was
#: handed to a worker/executor) and ``result`` (a cell completed,
#: carrying the full :class:`CellResult` document)
JOURNAL_OPS = ("open", "resume", "dispatch", "result")


def selection_fingerprint(tasks: Iterable[CellTask]) -> dict:
    """The order-insensitive identity of a submission.

    Cells are sorted and specs keyed by scenario id, so re-ordering
    the queue (``--order cost``) or re-resolving the same selection in
    a different order never invalidates a journal — but any change to
    what actually runs (cells, spec configuration, the ``--snapshot``
    flag) does.
    """
    tasks = list(tasks)
    specs: Dict[str, dict] = {}
    for task in tasks:
        specs.setdefault(task.spec.scenario_id, task.spec.to_dict())
    return {
        "cells": sorted(task.cell.as_doc() for task in tasks),
        "specs": [specs[scenario_id] for scenario_id in sorted(specs)],
        "snapshot": any(task.snapshot for task in tasks),
    }


# ------------------------------------------------------------- writing
class CellJournal:
    """Append-only newline-JSON journal of one run's cell progress.

    Thread-safe (the stream coordinator records dispatches from its
    connection handlers) and flushed per record, so a killed process
    loses at most the line it was writing.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        try:
            self._repair_tail(path)
            self._fh = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open journal {path!r}: {exc}") from None

    @staticmethod
    def _repair_tail(path: str) -> None:
        """Repair a newline-less trailing line before appending.

        A killed process can leave a final line without its
        terminating newline.  Appending onto it would fuse two
        records into one malformed *middle* line and make the journal
        permanently unloadable, so the tail is repaired first: a tail
        that still parses as a record (the kill landed between write
        and newline flush) gets its newline back — it is real data
        :func:`load_journal` accepts, and must not be lost — while a
        genuinely partial tail is truncated away, losing exactly what
        ``load_journal`` would have ignored anyway.
        """
        try:
            with open(path, "rb+") as fh:
                data = fh.read()
                if not data or data.endswith(b"\n"):
                    return
                tail = data[data.rfind(b"\n") + 1:]
                try:
                    doc = json.loads(tail.decode("utf-8"))
                    intact = isinstance(doc, dict) and "op" in doc
                except (UnicodeDecodeError, ValueError):
                    intact = False
                if intact:
                    fh.write(b"\n")
                else:
                    fh.truncate(data.rfind(b"\n") + 1)
        except FileNotFoundError:
            return

    def append(self, doc: dict) -> None:
        with self._lock:
            self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
            self._fh.flush()

    def open_run(self, fingerprint: dict) -> None:
        self.append({"op": "open", "schema": ARTIFACT_SCHEMA,
                     "selection": fingerprint})

    def record_resume(self, replayed: int, outstanding: int) -> None:
        self.append({"op": "resume", "replayed": replayed,
                     "outstanding": outstanding})

    def record_dispatch(self, task: CellTask) -> None:
        self.append({"op": "dispatch", "cell": task.cell.as_doc()})

    def record_result(self, result: CellResult) -> None:
        self.append({"op": "result", "result": result.to_doc()})

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


# ------------------------------------------------------------- reading
@dataclass
class JournalState:
    """Everything a journal file says about its run."""

    #: the run's selection fingerprint (``None`` for an empty journal)
    selection: Optional[dict] = None
    #: schema the journal was recorded under
    schema: Optional[int] = None
    #: completed cells, latest record wins (duplicates are harmless —
    #: results are deterministic, either copy is correct)
    results: Dict[ShardCell, CellResult] = field(default_factory=dict)
    #: every dispatch record, in journal order.  Observability: cells
    #: dispatched but never completed were in flight — or queued, for
    #: executors that take the whole batch up front (see
    #: :meth:`JournaledExecutor._run_outstanding`) — when a dead
    #: coordinator stopped writing
    dispatched: List[ShardCell] = field(default_factory=list)
    #: how many times this journal was resumed before
    resumes: int = 0

    def in_flight(self) -> List[ShardCell]:
        """Dispatched-but-never-completed cells, in dispatch order.

        Exact for streamed runs (dispatch = a worker's wire-level
        claim); an upper bound for batch executors that record the
        whole queue as dispatched at submit time.
        """
        return [cell for cell in self.dispatched
                if cell not in self.results]


def load_journal(path: str) -> JournalState:
    """Parse a journal file back into a :class:`JournalState`.

    A *truncated* trailing line — no final newline, the record a
    killed process was mid-append on — is ignored; the writer always
    terminates records with a newline, so that is the only shape a
    kill can leave.  A malformed record anywhere else (including a
    newline-terminated final line) raises :class:`ConfigurationError`
    — a journal is evidence, and evidence that does not parse must
    fail loudly, not merge silently.
    """
    from repro.experiments.shards import ShardCell

    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read journal {path!r}: {exc}") from None
    truncated_tail = bool(text) and not text.endswith("\n")
    lines = text.splitlines()
    state = JournalState()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict) or "op" not in doc:
                raise ValueError("record must be an object with an op")
        except ValueError as exc:
            if number == len(lines) and truncated_tail:
                break  # the kill interrupted this append; drop it
            raise ConfigurationError(
                f"journal {path!r} line {number} is malformed: "
                f"{exc}") from None
        op = doc["op"]
        if op == "open":
            if state.selection is not None:
                raise ConfigurationError(
                    f"journal {path!r} line {number} opens a second "
                    f"run; one journal records one selection")
            state.selection = doc.get("selection")
            state.schema = doc.get("schema")
        elif op == "resume":
            state.resumes += 1
        elif op == "dispatch":
            state.dispatched.append(ShardCell.from_doc(doc.get("cell")))
        elif op == "result":
            result = CellResult.from_doc(doc.get("result"))
            state.results[result.cell] = result
        else:
            raise ConfigurationError(
                f"journal {path!r} line {number} has unknown op "
                f"{op!r}; valid ops: {', '.join(JOURNAL_OPS)}")
    return state


def split_tasks(tasks: Iterable[CellTask], state: JournalState
                ) -> Tuple[List[CellResult], List[CellTask]]:
    """Split a submission against a journal: (replayed, outstanding).

    Only *successful* results replay; a journaled **error** result
    leaves its cell outstanding, so a resume retries it.  A
    deterministic failure just fails identically again (artifacts
    unchanged), but a transient one — a worker OOM, a killed process —
    gets the second chance that is the whole point of restarting.
    Replayed results come back in task order; outstanding tasks keep
    the submission's order (so a cost-ordered queue stays cost-ordered
    across a restart).
    """
    replayed: List[CellResult] = []
    outstanding: List[CellTask] = []
    for task in tasks:
        recorded = state.results.get(task.cell)
        if recorded is not None and recorded.ok:
            replayed.append(recorded)
        else:
            outstanding.append(task)
    return replayed, outstanding


# ------------------------------------------------------------ executor
class JournaledExecutor(CellExecutor):
    """Wrap any executor with journal recording and resume replay.

    Owns both the wrapped executor and the journal: ``close()``
    releases them in that order.  One submission per journal — the
    journal is the durable record of *one* queue.
    """

    def __init__(self, inner: CellExecutor, journal: CellJournal,
                 resume_state: Optional[JournalState] = None):
        self.inner = inner
        self.journal = journal
        self.resume_state = resume_state
        self._submitted = False

    def close(self) -> None:
        self.inner.close()
        self.journal.close()

    def cancel(self) -> None:
        self.inner.cancel()

    def submit(self, tasks: Iterable[CellTask],
               progress: Progress = None):
        tasks = list(tasks)
        if self._submitted:
            raise ConfigurationError(
                "a journaled executor accepts one submission; use a "
                "fresh journal per run")
        self._submitted = True
        fingerprint = selection_fingerprint(tasks)
        if self.resume_state is None:
            self.journal.open_run(fingerprint)
            outstanding = tasks
        else:
            self._check_resumable(fingerprint)
            replayed, outstanding = split_tasks(tasks, self.resume_state)
            self.journal.record_resume(len(replayed), len(outstanding))
            for result in replayed:
                if progress is not None:
                    progress(f"{result.cell.scenario_id}/"
                             f"{result.cell.variant}: replayed from "
                             f"journal")
                yield result
        if not outstanding:
            return
        for result in self._run_outstanding(outstanding, progress):
            self.journal.record_result(result)
            yield result

    def _run_outstanding(self, outstanding: List[CellTask],
                         progress: Progress):
        """Submit to the wrapped executor, recording dispatches.

        A stream executor reports the truthful wire-level dispatch
        (the moment a worker claims the cell) through its
        ``on_dispatch`` hook.  Other executors record a dispatch as
        they pull tasks from this generator — one at a time for the
        inline executor, but a pool executor takes the whole batch up
        front, so its dispatch records mean "queued to the executor",
        not "executing right now".
        """
        if hasattr(type(self.inner), "on_dispatch"):
            self.inner.on_dispatch = self.journal.record_dispatch
            task_source: Iterable[CellTask] = outstanding
        else:
            def dispatching() -> Iterable[CellTask]:
                for task in outstanding:
                    self.journal.record_dispatch(task)
                    yield task

            task_source = dispatching()
        return self.inner.submit(task_source, progress=progress)

    def _check_resumable(self, fingerprint: dict) -> None:
        state = self.resume_state
        if state.selection is None:
            raise ConfigurationError(
                f"journal {self.journal.path!r} has no run header; "
                f"it cannot be resumed")
        if state.schema != ARTIFACT_SCHEMA:
            raise ConfigurationError(
                f"journal {self.journal.path!r} was recorded under "
                f"artifact schema {state.schema!r}; this build resumes "
                f"schema {ARTIFACT_SCHEMA} journals only")
        if state.selection != fingerprint:
            raise ConfigurationError(
                f"journal {self.journal.path!r} was recorded for a "
                f"different selection; resume with the exact flags of "
                f"the original run (or start a fresh journal)")


def journaled_executor(inner: CellExecutor, path: str,
                       resume: bool = False) -> JournaledExecutor:
    """The CLI entry point: wrap ``inner`` with a journal at ``path``.

    Without ``resume`` the journal must not already carry records (an
    operator pointing a fresh run at an old journal gets an error, not
    a corrupted append); with ``resume`` it must exist and parse.
    """
    if resume:
        if not os.path.exists(path):
            raise ConfigurationError(
                f"cannot resume: journal {path!r} does not exist")
        state = load_journal(path)
    else:
        if os.path.exists(path) and os.path.getsize(path) > 0:
            raise ConfigurationError(
                f"journal {path!r} already exists; pass --resume to "
                f"continue that run or remove the file first")
        state = None
    return JournaledExecutor(inner, CellJournal(path), resume_state=state)
