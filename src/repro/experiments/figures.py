"""Reproduction of each figure in the paper.

* Figure 1 — the memory-monitor ladder (configuration rendering).
* Figure 2 — a three-query compilation-throttling trace with blocking
  plateaus.
* Figures 3/4/5 — throttled vs un-throttled throughput at 30/35/40
  clients.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import paper_server_config
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import ascii_chart, render_table
from repro.server.server import DatabaseServer
from repro.units import MiB, format_bytes
from repro.workload.sales import SalesWorkload


# --------------------------------------------------------------- Figure 1
def figure1_monitors(throttling: bool = True) -> str:
    """Render the monitor ladder of a freshly-booted paper server."""
    workload = SalesWorkload(scale=0.0001)
    server = DatabaseServer(paper_server_config(throttling),
                            workload.build_catalog())
    return server.governor.describe()


# --------------------------------------------------------------- Figure 2
@dataclass
class ThrottleTrace:
    """Sampled compilation-memory curves for the traced queries."""

    #: label -> [(t, bytes)] including the release-to-zero tail
    curves: Dict[str, List[Tuple[float, int]]]

    def plateau_count(self, label: str, tolerance: int = 1024) -> int:
        """Number of flat stretches (≥ 3 samples of unchanged usage at
        a non-zero level) — Figure 2's visible blocking plateaus."""
        curve = self.curves[label]
        plateaus = 0
        run = 1
        for (_, prev), (_, cur) in zip(curve, curve[1:]):
            if cur > 0 and abs(cur - prev) <= tolerance:
                run += 1
            else:
                if run >= 3 and prev > 0:
                    plateaus += 1
                run = 1
        if run >= 3 and curve and curve[-1][1] > 0:
            plateaus += 1
        return plateaus

    def chart(self) -> str:
        series = {label: [(t, float(v)) for t, v in curve]
                  for label, curve in self.curves.items()}
        return ascii_chart(series, title="Figure 2: compilation memory "
                                         "vs time (bytes)")


def figure2_trace(seed: int = 11, fast_factor: float = 4.0,
                  background: int = 24) -> ThrottleTrace:
    """Reproduce Figure 2: three staggered compilations under pressure.

    ``background`` extra clients keep the monitors occupied so the
    traced queries visibly block (the paper: "other queries … were
    consuming enough resources to induce throttling").
    """
    workload = SalesWorkload()
    catalog = workload.build_catalog()
    config = paper_server_config(throttling=True).fast(fast_factor)
    server = DatabaseServer(config, catalog)
    server.start()
    env = server.env
    rng = random.Random(seed)

    def compile_only(label: str):
        query = workload.generate(rng)
        try:
            yield from server.pipeline.compile(query.text, label)
        except Exception:
            pass

    def background_client(index: int):
        local = random.Random(f"{seed}/{index}")
        yield env.timeout(local.uniform(0.0, 30.0))
        while env.now < 900.0:
            query = workload.generate(local)
            try:
                yield from server.pipeline.compile(query.text,
                                                   f"bg{index}")
            except Exception:
                yield env.timeout(5.0)

    for index in range(background):
        env.process(background_client(index))
    traced = ["Q1", "Q2", "Q3"]
    for offset, label in zip((60.0, 63.0, 80.0), traced):
        def tracked(label=label, offset=offset):
            yield env.timeout(offset)
            yield from compile_only(label)
        env.process(tracked())

    curves: Dict[str, List[Tuple[float, int]]] = {t: [] for t in traced}

    def sampler():
        while env.now < 900.0:
            for label in traced:
                account = server.pipeline.live_accounts.get(label)
                used = account.used if account is not None else 0
                curves[label].append((env.now, used))
            yield env.timeout(2.0)

    env.process(sampler())
    env.run(until=900.0)
    return ThrottleTrace(curves=curves)


# ---------------------------------------------------------- Figures 3/4/5
@dataclass
class ThroughputComparison:
    """One throughput figure: throttled vs un-throttled at N clients."""

    clients: int
    throttled: ExperimentResult
    unthrottled: ExperimentResult

    @property
    def improvement(self) -> float:
        """Relative throughput gain of throttling (paper: ≈ +35 % at 30
        clients)."""
        base = self.unthrottled.completed
        if base == 0:
            return float("inf") if self.throttled.completed else 0.0
        return self.throttled.completed / base - 1.0

    def render(self) -> str:
        rows = []
        t_series = dict(self.throttled.throughput)
        u_series = dict(self.unthrottled.throughput)
        for t in sorted(set(t_series) | set(u_series)):
            rows.append((f"{t:.0f}", t_series.get(t, 0), u_series.get(t, 0)))
        table = render_table(
            ("time (s)", "throttled", "unthrottled"), rows)
        chart = ascii_chart(
            {"throttled": [(t, float(v)) for t, v in
                           self.throttled.throughput],
             "unthrottled": [(t, float(v)) for t, v in
                             self.unthrottled.throughput]},
            title=(f"Successful Queries/Time ({self.clients} clients) — "
                   f"completions per bucket"))
        summary = (
            f"completed: throttled={self.throttled.completed} "
            f"unthrottled={self.unthrottled.completed} "
            f"improvement={self.improvement * 100.0:+.1f}%\n"
            f"errors: throttled={self.throttled.error_counts} "
            f"unthrottled={self.unthrottled.error_counts}")
        return "\n".join((chart, "", table, "", summary))


def throughput_figure(clients: int, preset: str = "scaled",
                      seed: int = 1,
                      workload_name: str = "sales",
                      workers: int = 1) -> ThroughputComparison:
    """Reproduce one of Figures 3/4/5 (clients = 30/35/40).

    Deprecated shim: the run is now described by a declarative
    :class:`~repro.scenarios.ScenarioSpec` and executed through
    :func:`~repro.scenarios.run_scenario` (``workers=2`` still runs the
    throttled/un-throttled pair concurrently).
    """
    from repro.scenarios import run_scenario, throughput_scenario

    spec = throughput_scenario(clients, preset=preset, seed=seed,
                               workload=workload_name)
    scenario = run_scenario(spec, workers=workers)
    batch = scenario.batch
    if batch.errors:
        failures = ", ".join(f"{k}: {v}" for k, v in batch.errors.items())
        raise RuntimeError(f"throughput figure runs failed: {failures}")
    return ThroughputComparison(clients=clients,
                                throttled=batch.results["throttled"],
                                unthrottled=batch.results["unthrottled"])
