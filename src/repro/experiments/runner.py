"""Generic experiment runner.

All durations in :class:`ExperimentConfig` are expressed in *paper
seconds* (the testbed's wall clock); ``time_scale`` compresses them for
simulation and results are reported back in paper seconds, so every
harness prints series directly comparable to the figures.
"""

from __future__ import annotations

import gc
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.admission.spec import AdmissionSpec, SloSpec
from repro.config import ServerConfig, paper_server_config
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.optimizer.spec import OptimizerSpec
from repro.server.server import DatabaseServer
from repro.sim import Environment
from repro.traffic.spec import TrafficSpec
from repro.workload.base import Workload
from repro.workload.loadgen import ClientStats, LoadGenerator
from repro.workload.mixed import MixedWorkload
from repro.workload.oltp import OltpWorkload
from repro.workload.sales import SalesWorkload
from repro.workload.tpch import TpchWorkload


@dataclass(frozen=True)
class Preset:
    """A fidelity/runtime trade-off for the harness."""

    name: str
    #: warm-up excluded from measurements (paper: first 10 800 s)
    warmup: float
    #: measured window after warm-up (paper: 10 800 s → 28 800 s)
    measure: float
    #: figure bucket width (one point = completions per bucket)
    bucket: float
    #: simulation time compression
    time_scale: float
    #: optimizer effort/memory trade (ServerConfig.fast factor)
    fast_factor: float


#: fidelity presets: "paper" replays the full experiment; "scaled" keeps
#: every ratio but compresses the run for benchmarks; "smoke" is for tests
PRESETS: Dict[str, Preset] = {
    "paper": Preset("paper", warmup=10800.0, measure=18000.0,
                    bucket=600.0, time_scale=1.0, fast_factor=1.0),
    "scaled": Preset("scaled", warmup=2400.0, measure=4800.0,
                     bucket=600.0, time_scale=1.0, fast_factor=4.0),
    "smoke": Preset("smoke", warmup=1200.0, measure=1800.0,
                    bucket=600.0, time_scale=1.0, fast_factor=8.0),
}


def get_preset(name: str) -> Preset:
    """Look a preset up by name, with a helpful configuration error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; valid presets: "
            f"{', '.join(sorted(PRESETS))}") from None


@dataclass
class ExperimentConfig:
    """One fully-specified run."""

    workload: str = "sales"
    clients: int = 30
    throttling: bool = True
    preset: str = "scaled"
    seed: int = 1
    think_time: float = 15.0
    #: extra keyword arguments for the workload factory, as a sorted
    #: tuple of (name, value) pairs so configs stay hashable/picklable
    workload_params: Tuple[Tuple[str, object], ...] = ()
    #: open-loop traffic shape (arrival process or trace replay);
    #: ``None`` keeps the closed-loop think-time clients, byte-for-byte
    traffic: Optional[TrafficSpec] = None
    #: scheduler core for the simulation (``legacy`` heap or the
    #: calendar-queue ``wheel``); both pop events in the identical
    #: order, so this trades wall clock only, never simulated numbers
    kernel: str = "legacy"
    #: admission policy arbitrating the open-loop slots (``None`` =
    #: FIFO, pinned byte-identical to the pre-policy behavior); only
    #: meaningful with a ``traffic`` spec
    admission: Optional[AdmissionSpec] = None
    #: latency objectives evaluated against the ``open_loop`` facts
    #: (only meaningful with a ``traffic`` spec)
    slo: Optional[SloSpec] = None
    #: optimizer pipeline stage strategies (``None`` = the default
    #: basic/memo/cost/estimates pipeline, pinned byte-identical to
    #: the pre-pipeline optimizer)
    optimizer: Optional[OptimizerSpec] = None
    #: overrides applied to the ServerConfig after preset handling
    server_overrides: Optional[ServerConfig] = None
    #: capture a final :meth:`ServerViews.snapshot` with the result
    #: (execution metadata, not a simulation parameter: the flag never
    #: changes any simulated number)
    capture_snapshot: bool = False
    #: path to write a replayable JSONL admission trace of this run
    #: (execution metadata like ``capture_snapshot``: capturing never
    #: changes any simulated number)
    capture_trace: Optional[str] = None

    def build_server_config(self) -> ServerConfig:
        preset = get_preset(self.preset)
        base = self.server_overrides or paper_server_config()
        cfg = base.with_throttling(self.throttling)
        cfg = cfg.scaled(preset.time_scale)
        if preset.fast_factor != 1.0:
            cfg = cfg.fast(preset.fast_factor)
        if self.optimizer is not None:
            cfg = replace(cfg, optimizer=self.optimizer)
        return cfg

    def build_workload(self) -> Workload:
        return make_workload(self.workload, **dict(self.workload_params))


#: workload factories by name (the CLI and ScenarioSpec validation use
#: the key set as the list of valid workload names)
WORKLOAD_FACTORIES = {
    "sales": SalesWorkload,
    "tpch": TpchWorkload,
    "oltp": OltpWorkload,
    "mixed": MixedWorkload,
}


def make_workload(name: str, scale: float = 1.0, **params) -> Workload:
    """Instantiate a workload by name."""
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; valid workloads: "
            f"{', '.join(sorted(WORKLOAD_FACTORIES))}") from None
    try:
        return factory(scale=scale, **params)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"bad parameters for workload {name!r}: {exc}") from None


@dataclass
class ExperimentResult:
    """Everything measured in one run (times in paper seconds)."""

    config: ExperimentConfig
    #: (bucket_start, completions) covering the measured window
    throughput: List[Tuple[float, int]]
    completed: int
    failed: int
    error_counts: Dict[str, int]
    degraded: int
    retries: int
    mean_compile_time: float
    mean_execution_time: float
    #: mean memory by clerk over the measured window (bytes)
    memory_by_clerk: Dict[str, float]
    gateway_stats: List[Tuple[str, int, int, float]]
    wall_seconds: float
    #: compiles served by replaying a recorded optimizer search (varies
    #: with cache seeding/worker scheduling; never changes results)
    search_replays: int = 0
    #: broker soft-grant denials that degraded to a best-so-far plan
    soft_denials: int = 0
    #: open-loop admission facts (offered/admitted/drops/queue waits);
    #: only present for runs with a ``traffic`` spec
    open_loop: Optional[Dict[str, float]] = None
    #: SLO evaluation facts (``<target>.observed/.target/.ok`` plus
    #: ``ok``/``violations``); only present when the config declares
    #: objectives over an open-loop run
    slo: Optional[Dict[str, float]] = None
    #: end-of-run DMV snapshot (``ServerViews.snapshot()``), captured
    #: only when the config asked for one
    snapshot: Optional[Dict] = None

    @property
    def mean_per_bucket(self) -> float:
        """Mean completions per figure bucket over the measured window."""
        if not self.throughput:
            return 0.0
        return sum(c for _, c in self.throughput) / len(self.throughput)


#: short runs pause the cyclic GC; a full sweep runs every few of them
_RUNS_SINCE_GC_SWEEP = 0


def search_profile(config: ExperimentConfig,
                   server_config: ServerConfig) -> tuple:
    """The key under which runs may share recorded optimizer searches.

    A recording is only replayable where the search would have been
    recomputed identically: same catalog (workload name + parameters)
    and same optimizer/time configuration.  The best-plan flag matters
    too — recordings made without best-plan snapshots cannot serve a
    best-plan server's fallback lookups.  The optimizer pipeline spec
    is part of the key for the same reason: a ``ues`` search's steps
    cannot stand in for a ``memo`` search's.
    """
    return (
        config.workload,
        config.workload_params,
        server_config.optimizer_effort,
        server_config.optimizer_memory_multiplier,
        server_config.time_scale,
        server_config.throttle.enabled and
        server_config.throttle.best_plan_so_far,
        server_config.optimizer,
    )


def run_experiment(config: ExperimentConfig,
                   workload: Optional[Workload] = None,
                   shared_searches: Optional[Dict[tuple, dict]] = None,
                   ) -> ExperimentResult:
    """Execute one run and collect its results.

    ``workload`` can be passed pre-built so a catalog is shared between
    runs of a comparison (building it is cheap, but sharing guarantees
    identical schemas).

    ``shared_searches`` is a caller-owned ``profile -> {text:
    recording}`` pool: matching recordings seed this run's pipeline
    before it starts, and recordings completed during the run are
    merged back afterwards.  The experiment engine threads one pool
    through a whole batch so retried query texts replay across the
    worker pool.  Replays are charge-identical to live searches, so the
    pool affects wall-clock time only, never simulated results.
    """
    preset = get_preset(config.preset)
    scale = preset.time_scale
    server_config = config.build_server_config()
    workload = workload or config.build_workload()
    catalog = workload.build_catalog()

    metrics = MetricsCollector(bucket_width=preset.bucket / scale)
    env = Environment(kernel=config.kernel)
    server = DatabaseServer(server_config, catalog, env=env,
                            metrics=metrics)
    profile = None
    if shared_searches is not None:
        profile = search_profile(config, server_config)
        server.pipeline.record_all_searches = True
        server.pipeline.seed_recorded_searches(
            shared_searches.get(profile, {}))
    duration_sim = (preset.warmup + preset.measure) / scale
    if config.traffic is not None:
        from repro.traffic.openloop import OpenLoopGenerator

        generator = OpenLoopGenerator(
            server, workload, traffic=config.traffic,
            duration=duration_sim, metrics=metrics, seed=config.seed,
            clients=config.clients, admission=config.admission,
            capture=config.capture_trace is not None)
    else:
        generator = LoadGenerator(
            server, workload, clients=config.clients,
            duration=duration_sim, metrics=metrics, seed=config.seed,
            think_time=config.think_time,
            capture=config.capture_trace is not None)

    started = time.time()
    # The simulation allocates millions of small, mostly refcounted
    # objects; pausing the cyclic collector for a short run is
    # measurably faster, with leftover cycles swept every few runs.
    # Long (paper-fidelity) runs keep the collector on so their heap
    # stays bounded.
    pause_gc = (preset.warmup + preset.measure) <= 12_000 and gc.isenabled()
    if pause_gc:
        gc.disable()
    try:
        generator.run()
    finally:
        if pause_gc:
            gc.enable()
    wall = time.time() - started
    if pause_gc:
        global _RUNS_SINCE_GC_SWEEP
        _RUNS_SINCE_GC_SWEEP += 1
        if _RUNS_SINCE_GC_SWEEP >= 4:
            _RUNS_SINCE_GC_SWEEP = 0
            gc.collect()

    if shared_searches is not None:
        pool = shared_searches.setdefault(profile, {})
        pool.update(server.pipeline.export_recorded_searches())

    snapshot = None
    if config.capture_snapshot:
        from repro.server.dmv import ServerViews

        snapshot = ServerViews(server).snapshot()

    if config.capture_trace is not None:
        from repro.admission.capture import write_capture

        write_capture(config.capture_trace, generator.captured_events())

    warm_sim = preset.warmup / scale
    series = [(t * scale, count)
              for t, count in metrics.throughput_series(
                  warm_sim, duration_sim)]
    totals = generator.totals()
    memory = {clerk: trace.mean(warm_sim, duration_sim)
              for clerk, trace in metrics.memory.items()}
    gateways = [(g.name, g.stats.acquires, g.stats.timeouts,
                 g.stats.mean_wait() * scale)
                for g in server.governor.gateways]
    open_loop = (generator.facts(scale)
                 if config.traffic is not None else None)
    slo = None
    if config.slo is not None and open_loop is not None:
        from repro.admission.slo import evaluate_slo

        slo = evaluate_slo(config.slo, open_loop)
    return ExperimentResult(
        config=config,
        throughput=series,
        completed=metrics.successes(warm_sim, duration_sim),
        failed=metrics.failure_total(),
        error_counts=dict(metrics.error_counts),
        degraded=metrics.degraded_count(),
        retries=totals.retries,
        mean_compile_time=metrics.mean_compile_time() * scale,
        mean_execution_time=metrics.mean_execution_time() * scale,
        memory_by_clerk=memory,
        gateway_stats=gateways,
        wall_seconds=wall,
        search_replays=server.pipeline.search_replays,
        soft_denials=server.pipeline.soft_denials,
        open_loop=open_loop,
        slo=slo,
        snapshot=snapshot,
    )
